//! Complex objects as rooted DAGs, and the Hoare order as *simulation*.
//!
//! §3.2 of the paper notes that its containment order on complex objects
//! "coincides with the simulation relation between complex objects
//! represented as graphs" (refs \[5, 6\]: Buneman et al.). This module makes
//! that concrete:
//!
//! * [`ValueGraph`] is a hash-consed DAG representation of a value — equal
//!   subobjects share a node, so a value with heavy sharing (e.g. the result
//!   of a grouping query where many groups coincide) is stored once;
//! * [`simulates`] computes the greatest simulation between two graphs by
//!   the classical fixpoint refinement, giving an alternative decision
//!   procedure for `⊑` whose cost is bounded by `O(n·m·e)` rather than the
//!   potentially exponential naive recursion on trees *without* memoization.
//!
//! Experiment **E1** (see EXPERIMENTS.md) benchmarks the two algorithms
//! against each other and property tests assert they agree.

use std::collections::HashMap;

use co_trace::kernel::{self, Metric};

use crate::atom::{Atom, Field};
use crate::interrupt::{self, Interrupted};
use crate::value::Value;

/// Identifier of a node inside a [`ValueGraph`].
pub type NodeId = usize;

/// The kind and outgoing edges of a node.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Node {
    /// An atomic leaf.
    Atom(Atom),
    /// A record node with labeled edges, sorted by label.
    Record(Vec<(Field, NodeId)>),
    /// A set node with unlabeled edges to the (distinct) element nodes.
    Set(Vec<NodeId>),
}

/// A rooted DAG representing one complex object with maximal sharing.
#[derive(Clone, Debug)]
pub struct ValueGraph {
    nodes: Vec<Node>,
    root: NodeId,
}

impl ValueGraph {
    /// Builds the hash-consed graph of a value: structurally equal
    /// subvalues map to the same node.
    pub fn from_value(value: &Value) -> ValueGraph {
        let mut builder = Builder { nodes: Vec::new(), dedup: HashMap::new() };
        let root = builder.intern(value);
        ValueGraph { nodes: builder.nodes, root }
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of distinct nodes (a measure of sharing: always ≤ tree size).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph is empty (never true: every value has ≥1 node).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node with the given id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Reconstructs the value this graph represents (unfolds sharing).
    pub fn to_value(&self) -> Value {
        self.value_at(self.root)
    }

    fn value_at(&self, id: NodeId) -> Value {
        match &self.nodes[id] {
            Node::Atom(a) => Value::Atom(*a),
            Node::Record(fields) => {
                Value::record(fields.iter().map(|(f, n)| (*f, self.value_at(*n))).collect())
                    .expect("graph records keep distinct labels")
            }
            Node::Set(elems) => Value::set(elems.iter().map(|&n| self.value_at(n)).collect()),
        }
    }
}

struct Builder {
    nodes: Vec<Node>,
    dedup: HashMap<Node, NodeId>,
}

impl Builder {
    fn intern(&mut self, value: &Value) -> NodeId {
        let node = match value {
            Value::Atom(a) => Node::Atom(*a),
            Value::Record(r) => Node::Record(r.iter().map(|(f, v)| (*f, self.intern(v))).collect()),
            Value::Set(s) => {
                let mut elems: Vec<NodeId> = s.iter().map(|v| self.intern(v)).collect();
                elems.sort_unstable();
                elems.dedup();
                Node::Set(elems)
            }
        };
        if let Some(&id) = self.dedup.get(&node) {
            return id;
        }
        let id = self.nodes.len();
        self.nodes.push(node.clone());
        self.dedup.insert(node, id);
        id
    }
}

/// Computes whether the root of `g1` is simulated by the root of `g2`, i.e.
/// whether `g1.to_value() ⊑ g2.to_value()` in the Hoare order.
///
/// The greatest simulation `sim ⊆ N1 × N2` is the largest relation with:
/// * `sim(a, a')` for atom nodes iff they carry the same atom;
/// * `sim(r, r')` for record nodes iff same labels and children pairwise in
///   `sim`;
/// * `sim(s, s')` for set nodes iff every child of `s` is in `sim` with some
///   child of `s'`.
pub fn simulates(g1: &ValueGraph, g2: &ValueGraph) -> bool {
    let sim = greatest_simulation(g1, g2);
    sim[g1.root()][g2.root()]
}

/// Cancellable variant of [`simulates`]: polls the thread-local
/// [`crate::interrupt`] budget and aborts with [`Interrupted`] when it
/// expires. Identical to [`simulates`] when no budget is installed.
pub fn try_simulates(g1: &ValueGraph, g2: &ValueGraph) -> Result<bool, Interrupted> {
    let sim = try_greatest_simulation(g1, g2)?;
    Ok(sim[g1.root()][g2.root()])
}

/// The full greatest-simulation matrix `sim[n1][n2]` between two graphs
/// (DESIGN.md §9).
///
/// Dispatches on graph shape:
///
/// * graphs whose node ids form a topological order (children strictly
///   before parents — **always** true for [`ValueGraph::from_value`],
///   whose hash-consing interns children first) are acyclic, so the
///   simulation conditions are well-founded and a *single* bottom-up pass
///   in ascending id order computes the exact greatest fixpoint — no
///   counters, no queue, no convergence loop;
/// * anything else falls back to the general
///   [`greatest_simulation_worklist`] engine.
///
/// Both replace the naive sweep (kept as [`greatest_simulation_sweep`]),
/// which re-scans every pair `O(sweeps)` times and needs a full extra
/// sweep just to detect convergence.
pub fn greatest_simulation(g1: &ValueGraph, g2: &ValueGraph) -> Vec<Vec<bool>> {
    let matrix = if is_topological(g1) && is_topological(g2) {
        topological_impl(g1, g2, false)
    } else {
        worklist_impl(g1, g2, false)
    };
    matrix.expect("uncancellable simulation cannot be interrupted")
}

/// Cancellable variant of [`greatest_simulation`]: polls the thread-local
/// [`crate::interrupt`] budget once per node row (topological pass) or per
/// worklist pop (general engine) and aborts with [`Interrupted`] when it
/// expires. Identical to [`greatest_simulation`] when no budget is
/// installed.
pub fn try_greatest_simulation(
    g1: &ValueGraph,
    g2: &ValueGraph,
) -> Result<Vec<Vec<bool>>, Interrupted> {
    if is_topological(g1) && is_topological(g2) {
        topological_impl(g1, g2, true)
    } else {
        worklist_impl(g1, g2, true)
    }
}

/// Whether every edge points from a higher node id to a strictly lower one.
///
/// Hash consing interns children before parents, so graphs built by
/// [`ValueGraph::from_value`] always satisfy this; the check guards the
/// fast path against any future constructor that numbers nodes otherwise.
fn is_topological(g: &ValueGraph) -> bool {
    (0..g.len()).all(|p| match g.node(p) {
        Node::Atom(_) => true,
        Node::Record(fields) => fields.iter().all(|(_, c)| *c < p),
        Node::Set(elems) => elems.iter().all(|&c| c < p),
    })
}

/// Single bottom-up evaluation pass, exact when both graphs are
/// topologically ordered: when pair `(i, j)` is evaluated, every child
/// pair it depends on has strictly smaller first component and is already
/// final, so each pair is decided once.
fn topological_impl(
    g1: &ValueGraph,
    g2: &ValueGraph,
    cancellable: bool,
) -> Result<Vec<Vec<bool>>, Interrupted> {
    kernel::bump(Metric::SimTopoFastPath);
    let mut sim = kind_compatible(g1, g2);
    for i in 0..g1.len() {
        if cancellable {
            interrupt::probe()?;
        }
        for j in 0..g2.len() {
            if !sim[i][j] {
                continue;
            }
            let ok = match (g1.node(i), g2.node(j)) {
                // Kind compatibility already checked atom equality and
                // record label alignment.
                (Node::Atom(_), Node::Atom(_)) => true,
                (Node::Record(fa), Node::Record(fb)) => {
                    fa.iter().zip(fb.iter()).all(|((_, ca), (_, cb))| sim[*ca][*cb])
                }
                (Node::Set(ea), Node::Set(eb)) => {
                    ea.iter().all(|&ca| eb.iter().any(|&cb| sim[ca][cb]))
                }
                _ => false,
            };
            if !ok {
                sim[i][j] = false;
            }
        }
    }
    Ok(sim)
}

/// The general-graph engine: a Henzinger–Henzinger–Kopke-style
/// **worklist/counter** algorithm, correct on *any* node numbering
/// (DESIGN.md §9).
///
/// Starting from the kind/label-compatible relation, a pair can only ever
/// be turned *off*, and the only reason to re-examine a pair is that one of
/// its child pairs was turned off. The worklist propagates exactly those
/// events through reverse edges:
///
/// * a live **record** pair dies the moment an aligned child pair dies
///   (its condition is a conjunction — no recheck needed);
/// * a live **set** pair `(s, s')` keeps, per child `c` of `s`, a counter
///   of the children of `s'` it can still be simulated by
///   (`counter = |successors not yet known to be non-simulating|`); the
///   pair dies when some counter hits zero.
///
/// Unlike the naive sweep, no pair is revisited unless a successor actually
/// changed, bringing the cost from `O(sweeps · n1·n2·e)` down to
/// `O(n1·n2 + e1·e2)`. The initial evaluation is against a *frozen* copy of
/// the starting relation so that each later flip decrements each affected
/// counter exactly once (evaluating against the live relation while also
/// queueing the flips would double-decrement).
pub fn greatest_simulation_worklist(g1: &ValueGraph, g2: &ValueGraph) -> Vec<Vec<bool>> {
    worklist_impl(g1, g2, false).expect("uncancellable simulation cannot be interrupted")
}

fn worklist_impl(
    g1: &ValueGraph,
    g2: &ValueGraph,
    cancellable: bool,
) -> Result<Vec<Vec<bool>>, Interrupted> {
    kernel::bump(Metric::SimWorklistRuns);
    let n1 = g1.len();
    let n2 = g2.len();
    let mut sim = kind_compatible(g1, g2);

    // Reverse edges: parents of each node (a record child may repeat under
    // several labels; set children are distinct by construction).
    let parents1 = parent_lists(g1);
    let parents2 = parent_lists(g2);

    // Set-pair counters, allocated only for live set pairs:
    // counters[key(s, s')][k] = number of children of s' that the k-th
    // child of s is still (as far as we know) simulated by.
    let sets1: Vec<NodeId> = (0..n1).filter(|&i| matches!(g1.node(i), Node::Set(_))).collect();
    let sets2: Vec<NodeId> = (0..n2).filter(|&j| matches!(g2.node(j), Node::Set(_))).collect();
    let set_slot1: Vec<Option<usize>> = slot_map(n1, &sets1);
    let set_slot2: Vec<Option<usize>> = slot_map(n2, &sets2);
    let slot = |i: NodeId, j: NodeId| -> Option<usize> {
        Some(set_slot1[i]? * sets2.len() + set_slot2[j]?)
    };
    // All counters live in one flat buffer (a per-pair `Vec<Vec<u32>>` costs
    // one heap allocation per set pair, which dominates the whole solve on
    // chain-shaped graphs). Pair slot (s, s') owns the `|children(s)|`-long
    // slice starting at `base[slot]`; the slice length depends only on `s`,
    // so bases stride uniformly within a row of set pairs.
    let member_count = |i: NodeId| match g1.node(sets1[i / sets2.len().max(1)]) {
        Node::Set(elems) => elems.len(),
        _ => unreachable!("sets1 holds set nodes only"),
    };
    let mut base: Vec<u32> = Vec::with_capacity(sets1.len() * sets2.len());
    let mut total = 0u32;
    for s in 0..sets1.len() * sets2.len() {
        base.push(total);
        total += member_count(s) as u32;
    }
    let mut counters: Vec<u32> = vec![0; total as usize];

    // Initial evaluation against the *frozen* initial relation: every pair
    // whose local condition already fails is turned off and queued; set
    // counters are seeded from the same frozen relation, so each later
    // flip decrements them exactly once.
    let init = sim.clone();
    let mut queue: Vec<(NodeId, NodeId)> = Vec::new();
    for i in 0..n1 {
        if cancellable {
            interrupt::probe()?;
        }
        for j in 0..n2 {
            if !init[i][j] {
                continue;
            }
            match (g1.node(i), g2.node(j)) {
                (Node::Record(fa), Node::Record(fb))
                    if !fa.iter().zip(fb.iter()).all(|((_, ca), (_, cb))| init[*ca][*cb]) =>
                {
                    sim[i][j] = false;
                    queue.push((i, j));
                }
                (Node::Set(ea), Node::Set(eb)) => {
                    let b = base[slot(i, j).expect("set pair has a slot")] as usize;
                    let mut dead = false;
                    for (k, &ca) in ea.iter().enumerate() {
                        let c = eb.iter().filter(|&&cb| init[ca][cb]).count() as u32;
                        counters[b + k] = c;
                        dead |= c == 0;
                    }
                    if dead {
                        sim[i][j] = false;
                        queue.push((i, j));
                    }
                }
                _ => {}
            }
        }
    }

    // Propagate deaths through reverse edges until quiescence. The pop is
    // the unit of work the cooperative-cancellation budget counts.
    while let Some((a, b)) = queue.pop() {
        kernel::bump(Metric::SimWorklistPops);
        if cancellable {
            interrupt::probe()?;
        }
        for &p1 in &parents1[a] {
            for &p2 in &parents2[b] {
                if !sim[p1][p2] {
                    continue;
                }
                match (g1.node(p1), g2.node(p2)) {
                    // A record pair dies iff (a, b) sit under the same
                    // position.
                    (Node::Record(fa), Node::Record(fb))
                        if fa
                            .iter()
                            .zip(fb.iter())
                            .any(|((_, ca), (_, cb))| *ca == a && *cb == b) =>
                    {
                        sim[p1][p2] = false;
                        queue.push((p1, p2));
                    }
                    (Node::Set(ea), Node::Set(_)) => {
                        let b = base[slot(p1, p2).expect("set pair has a slot")] as usize;
                        // Set children are deduplicated, so `a` occurs once.
                        let k = ea.iter().position(|&c| c == a).expect("a is a child of p1");
                        let cnt = &mut counters[b + k];
                        kernel::bump(Metric::SimCounterUpdates);
                        *cnt -= 1;
                        if *cnt == 0 {
                            sim[p1][p2] = false;
                            queue.push((p1, p2));
                        }
                    }
                    // Kind-incompatible parents were never live.
                    _ => {}
                }
            }
        }
    }
    Ok(sim)
}

/// The naive sweep-until-stable fixpoint, retained verbatim as the
/// reference oracle for differential tests and the `co-bench perf`
/// baseline. Agrees with [`greatest_simulation`] on every input (the
/// greatest fixpoint is unique).
pub fn greatest_simulation_sweep(g1: &ValueGraph, g2: &ValueGraph) -> Vec<Vec<bool>> {
    kernel::bump(Metric::SimSweepRuns);
    let n1 = g1.len();
    let n2 = g2.len();
    let mut sim = kind_compatible(g1, g2);
    // Refine until stable. Each sweep can only turn entries off, so the
    // loop terminates after at most n1*n2 sweeps; in practice a few.
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n1 {
            for j in 0..n2 {
                if !sim[i][j] {
                    continue;
                }
                let ok = match (g1.node(i), g2.node(j)) {
                    (Node::Atom(_), Node::Atom(_)) => true,
                    (Node::Record(fa), Node::Record(fb)) => {
                        fa.iter().zip(fb.iter()).all(|((_, ca), (_, cb))| sim[*ca][*cb])
                    }
                    (Node::Set(ea), Node::Set(eb)) => {
                        ea.iter().all(|&ca| eb.iter().any(|&cb| sim[ca][cb]))
                    }
                    _ => false,
                };
                if !ok {
                    sim[i][j] = false;
                    changed = true;
                }
            }
        }
    }
    sim
}

/// The kind/label-compatible initial relation both algorithms start from.
fn kind_compatible(g1: &ValueGraph, g2: &ValueGraph) -> Vec<Vec<bool>> {
    let n1 = g1.len();
    let n2 = g2.len();
    let mut sim: Vec<Vec<bool>> = Vec::with_capacity(n1);
    for i in 0..n1 {
        let mut row = vec![false; n2];
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = match (g1.node(i), g2.node(j)) {
                (Node::Atom(a), Node::Atom(b)) => a == b,
                (Node::Record(fa), Node::Record(fb)) => {
                    fa.len() == fb.len()
                        && fa.iter().zip(fb.iter()).all(|((la, _), (lb, _))| la == lb)
                }
                (Node::Set(_), Node::Set(_)) => true,
                _ => false,
            };
        }
        sim.push(row);
    }
    sim
}

/// Deduplicated parent list per node (reverse edges).
fn parent_lists(g: &ValueGraph) -> Vec<Vec<NodeId>> {
    let mut parents: Vec<Vec<NodeId>> = vec![Vec::new(); g.len()];
    for p in 0..g.len() {
        match g.node(p) {
            Node::Atom(_) => {}
            Node::Record(fields) => {
                for (_, c) in fields {
                    parents[*c].push(p);
                }
            }
            Node::Set(elems) => {
                for &c in elems {
                    parents[c].push(p);
                }
            }
        }
    }
    for list in &mut parents {
        list.dedup(); // children were pushed in ascending parent order
    }
    parents
}

/// Maps node ids to their position in `members`, `None` for non-members.
fn slot_map(n: usize, members: &[NodeId]) -> Vec<Option<usize>> {
    let mut slots = vec![None; n];
    for (k, &id) in members.iter().enumerate() {
        slots[id] = Some(k);
    }
    slots
}

/// Decides `a ⊑ b` by building graphs and checking simulation.
///
/// Agrees with [`crate::order::hoare_leq`] (property-tested); preferable
/// when the inputs have substantial sharing or are compared repeatedly.
pub fn hoare_leq_graph(a: &Value, b: &Value) -> bool {
    simulates(&ValueGraph::from_value(a), &ValueGraph::from_value(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::hoare_leq;

    fn set(vs: Vec<Value>) -> Value {
        Value::set(vs)
    }

    #[test]
    fn graph_shares_equal_subvalues() {
        // {{1,2},{1,2},{3}} has the inner {1,2} shared.
        let inner = set(vec![Value::int(1), Value::int(2)]);
        let v = set(vec![inner.clone(), set(vec![Value::int(3)])]);
        let g = ValueGraph::from_value(&v);
        // nodes: 1, 2, 3, {1,2}, {3}, outer = 6
        assert_eq!(g.len(), 6);
        assert_eq!(g.to_value(), v);
    }

    #[test]
    fn roundtrip_preserves_value() {
        let v = Value::record(vec![
            (crate::atom::Field::new("A"), set(vec![Value::int(1), Value::int(2)])),
            (crate::atom::Field::new("B"), Value::str("x")),
        ])
        .unwrap();
        assert_eq!(ValueGraph::from_value(&v).to_value(), v);
    }

    #[test]
    fn simulation_matches_recursive_order_on_examples() {
        let cases = vec![
            (set(vec![Value::int(1)]), set(vec![Value::int(1), Value::int(2)])),
            (set(vec![Value::int(2)]), set(vec![Value::int(1)])),
            (Value::empty_set(), set(vec![Value::int(9)])),
            (
                set(vec![set(vec![Value::int(1)]), set(vec![Value::int(1), Value::int(2)])]),
                set(vec![set(vec![Value::int(1), Value::int(2)])]),
            ),
            (
                set(vec![set(vec![Value::int(1), Value::int(2)])]),
                set(vec![set(vec![Value::int(1)]), set(vec![Value::int(2)])]),
            ),
        ];
        for (a, b) in cases {
            assert_eq!(hoare_leq_graph(&a, &b), hoare_leq(&a, &b), "a={a} b={b}");
            assert_eq!(hoare_leq_graph(&b, &a), hoare_leq(&b, &a), "b={b} a={a}");
        }
    }

    #[test]
    fn try_variants_agree_and_honor_budgets() {
        let a = set(vec![set(vec![Value::int(1)]), set(vec![Value::int(1), Value::int(2)])]);
        let b = set(vec![set(vec![Value::int(1), Value::int(2)])]);
        let ga = ValueGraph::from_value(&a);
        let gb = ValueGraph::from_value(&b);
        // No budget installed: identical to the plain variant.
        assert_eq!(try_simulates(&ga, &gb), Ok(simulates(&ga, &gb)));
        assert_eq!(try_greatest_simulation(&ga, &gb), Ok(greatest_simulation(&ga, &gb)));
        // An exhausted budget interrupts the cancellable variant only.
        let _guard = interrupt::install(interrupt::Budget { deadline: None, steps: Some(0) });
        assert_eq!(try_simulates(&ga, &gb), Err(Interrupted));
        assert!(simulates(&ga, &gb));
    }

    #[test]
    fn deep_chain_simulation() {
        // Deeply nested singletons simulate iff the innermost atoms match.
        let mut a = Value::int(7);
        let mut b = Value::int(7);
        let mut c = Value::int(8);
        for _ in 0..30 {
            a = Value::singleton(a);
            b = Value::singleton(b);
            c = Value::singleton(c);
        }
        assert!(hoare_leq_graph(&a, &b));
        assert!(!hoare_leq_graph(&a, &c));
    }
}
