//! Types for complex objects.
//!
//! COQL is typed: every expression has a complex-object type built from the
//! atomic type, record types, and set types. The only wrinkle is the empty
//! set `{}`, whose element type is unconstrained; we give it the element
//! type [`Type::Bottom`], the least type, and define a least upper bound
//! ([`Type::lub`]) so that heterogeneous-looking sets such as
//! `{{}, {1}} : {{int}}` type-check exactly when they should.

use std::fmt;

use crate::atom::Field;
use crate::value::Value;

/// A complex-object type.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// The type of atomic values (`D` in the paper). COQL treats all atoms
    /// uniformly — the only operation is equality — so a single atomic type
    /// suffices.
    Atom,
    /// A record type `[A1: τ1; …; Ak: τk]`, fields sorted by label.
    Record(Vec<(Field, Type)>),
    /// A set type `{τ}`.
    Set(Box<Type>),
    /// The least type: element type of the empty set literal. `Bottom ⊑ τ`
    /// for every `τ`. No value has type `Bottom` itself.
    Bottom,
}

impl Type {
    /// Builds a record type, sorting fields by label. Panics on duplicate
    /// labels (types are built by the library, not from user data).
    pub fn record(mut fields: Vec<(Field, Type)>) -> Type {
        fields.sort_by_key(|(f, _)| *f);
        for w in fields.windows(2) {
            assert!(w[0].0 != w[1].0, "duplicate field `{}` in record type", w[0].0);
        }
        Type::Record(fields)
    }

    /// Builds a set type.
    pub fn set(elem: Type) -> Type {
        Type::Set(Box::new(elem))
    }

    /// The type of a flat relation with the given atomic attributes.
    pub fn flat_relation(attrs: &[Field]) -> Type {
        Type::set(Type::record(attrs.iter().map(|&a| (a, Type::Atom)).collect()))
    }

    /// Subtyping: `self ⊑ other` where `Bottom` is least and the relation is
    /// lifted structurally through records and sets.
    pub fn subtype_of(&self, other: &Type) -> bool {
        match (self, other) {
            (Type::Bottom, _) => true,
            (Type::Atom, Type::Atom) => true,
            (Type::Set(a), Type::Set(b)) => a.subtype_of(b),
            (Type::Record(fa), Type::Record(fb)) => {
                fa.len() == fb.len()
                    && fa
                        .iter()
                        .zip(fb.iter())
                        .all(|((la, ta), (lb, tb))| la == lb && ta.subtype_of(tb))
            }
            _ => false,
        }
    }

    /// Least upper bound, if one exists. `lub(Bottom, τ) = τ`; structural
    /// otherwise. Returns `None` for incompatible shapes (e.g. atom vs set).
    pub fn lub(&self, other: &Type) -> Option<Type> {
        match (self, other) {
            (Type::Bottom, t) | (t, Type::Bottom) => Some(t.clone()),
            (Type::Atom, Type::Atom) => Some(Type::Atom),
            (Type::Set(a), Type::Set(b)) => Some(Type::set(a.lub(b)?)),
            (Type::Record(fa), Type::Record(fb)) => {
                if fa.len() != fb.len() {
                    return None;
                }
                let mut out = Vec::with_capacity(fa.len());
                for ((la, ta), (lb, tb)) in fa.iter().zip(fb.iter()) {
                    if la != lb {
                        return None;
                    }
                    out.push((*la, ta.lub(tb)?));
                }
                Some(Type::Record(out))
            }
            _ => None,
        }
    }

    /// Whether this is a *flat relation* type: a set of records of atoms.
    /// For flat-relation results, containment in both directions implies
    /// equivalence (§3.2 of the paper).
    pub fn is_flat_relation(&self) -> bool {
        match self {
            Type::Set(elem) => match elem.as_ref() {
                Type::Record(fields) => fields.iter().all(|(_, t)| matches!(t, Type::Atom)),
                Type::Atom => true,
                _ => false,
            },
            _ => false,
        }
    }

    /// Set-nesting depth of the type (0 for set-free types).
    pub fn set_depth(&self) -> usize {
        match self {
            Type::Atom | Type::Bottom => 0,
            Type::Record(fields) => fields.iter().map(|(_, t)| t.set_depth()).max().unwrap_or(0),
            Type::Set(t) => 1 + t.set_depth(),
        }
    }

    /// Looks up a field's type in a record type.
    pub fn field(&self, field: Field) -> Option<&Type> {
        match self {
            Type::Record(fields) => {
                fields.binary_search_by_key(&field, |(f, _)| *f).ok().map(|i| &fields[i].1)
            }
            _ => None,
        }
    }

    /// The element type of a set type.
    pub fn elem(&self) -> Option<&Type> {
        match self {
            Type::Set(t) => Some(t),
            _ => None,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Atom => write!(f, "atom"),
            Type::Bottom => write!(f, "\u{22a5}"),
            Type::Set(t) => write!(f, "{{{t}}}"),
            Type::Record(fields) => {
                write!(f, "[")?;
                for (i, (name, t)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{name}: {t}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl fmt::Debug for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Error produced when a value is ill-typed (e.g. heterogeneous set).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IllTyped {
    /// Human-readable description of the offending position.
    pub message: String,
}

impl fmt::Display for IllTyped {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ill-typed value: {}", self.message)
    }
}

impl std::error::Error for IllTyped {}

/// Infers the type of a value. Sets must be homogeneous up to `lub`; the
/// empty set gets element type [`Type::Bottom`].
pub fn type_of(value: &Value) -> Result<Type, IllTyped> {
    match value {
        Value::Atom(_) => Ok(Type::Atom),
        Value::Record(r) => {
            let mut fields = Vec::with_capacity(r.len());
            for (name, v) in r.iter() {
                fields.push((*name, type_of(v)?));
            }
            Ok(Type::Record(fields))
        }
        Value::Set(s) => {
            let mut elem = Type::Bottom;
            for v in s.iter() {
                let t = type_of(v)?;
                elem = elem.lub(&t).ok_or_else(|| IllTyped {
                    message: format!("set mixes incompatible element types {elem} and {t}"),
                })?;
            }
            Ok(Type::set(elem))
        }
    }
}

/// Checks that `value` has type `ty` (up to subtyping from below, so that
/// empty sets inhabit every set type).
pub fn check_type(value: &Value, ty: &Type) -> Result<(), IllTyped> {
    let actual = type_of(value)?;
    if actual.subtype_of(ty) {
        Ok(())
    } else {
        Err(IllTyped { message: format!("value {value} has type {actual}, expected {ty}") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(name: &str) -> Field {
        Field::new(name)
    }

    #[test]
    fn atoms_and_records_infer() {
        assert_eq!(type_of(&Value::int(1)).unwrap(), Type::Atom);
        let v = Value::record(vec![(f("A"), Value::int(1))]).unwrap();
        assert_eq!(v.to_string(), "[A: 1]");
        assert_eq!(type_of(&v).unwrap(), Type::record(vec![(f("A"), Type::Atom)]));
    }

    #[test]
    fn empty_set_is_bottom_elem() {
        assert_eq!(type_of(&Value::empty_set()).unwrap(), Type::set(Type::Bottom));
        assert!(check_type(&Value::empty_set(), &Type::set(Type::Atom)).is_ok());
        assert!(check_type(&Value::empty_set(), &Type::set(Type::set(Type::Atom))).is_ok());
        assert!(check_type(&Value::empty_set(), &Type::Atom).is_err());
    }

    #[test]
    fn lub_joins_empty_and_nonempty_sets() {
        let v = Value::set(vec![Value::empty_set(), Value::singleton(Value::int(1))]);
        assert_eq!(type_of(&v).unwrap(), Type::set(Type::set(Type::Atom)));
    }

    #[test]
    fn heterogeneous_sets_rejected() {
        let v = Value::set(vec![Value::int(1), Value::singleton(Value::int(1))]);
        assert!(type_of(&v).is_err());
    }

    #[test]
    fn flat_relation_recognition() {
        let t = Type::flat_relation(&[f("A"), f("B")]);
        assert!(t.is_flat_relation());
        assert!(!Type::set(Type::set(Type::Atom)).is_flat_relation());
        assert_eq!(t.set_depth(), 1);
    }

    #[test]
    fn subtyping_is_structural() {
        let bot_set = Type::set(Type::Bottom);
        let atom_set = Type::set(Type::Atom);
        assert!(bot_set.subtype_of(&atom_set));
        assert!(!atom_set.subtype_of(&bot_set));
        assert!(atom_set.subtype_of(&atom_set));
    }

    #[test]
    fn field_and_elem_accessors() {
        let t = Type::record(vec![(f("A"), Type::Atom), (f("B"), Type::set(Type::Atom))]);
        assert_eq!(t.field(f("A")), Some(&Type::Atom));
        assert_eq!(t.field(f("Z")), None);
        assert_eq!(t.field(f("B")).unwrap().elem(), Some(&Type::Atom));
    }
}
