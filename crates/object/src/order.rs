//! The containment order `⊑` on complex objects (§3.2 of the paper).
//!
//! The paper takes the *weakest* preorder on complex objects that (a)
//! restricts to set inclusion on flat relations and (b) is preserved by the
//! record and set constructors. This is the **lower (Hoare) powerdomain
//! order** (refs \[4, 8, 22, 32\] of the paper):
//!
//! * `d ⊑ d'`  for atoms iff `d = d'`;
//! * `[A1:x1,…] ⊑ [A1:y1,…]` iff the records have the same labels and
//!   `xi ⊑ yi` componentwise;
//! * `S ⊑ S'` iff every `x ∈ S` has some `y ∈ S'` with `x ⊑ y`.
//!
//! On graphs it coincides with *simulation* (refs \[5, 6\]); the graph-based
//! algorithm lives in [`crate::graph`]. This module provides the direct
//! recursive algorithm with memoization, plus the derived equivalence
//! (`x ⊑ y ∧ y ⊑ x`, the paper's *weak equality* on objects).

use std::collections::HashMap;
use std::fmt;

use crate::value::Value;

/// Error returned by the depth-capped (`try_`) Hoare-order entry points:
/// an operand's structural depth exceeds the caller's cap, so running the
/// structural recursion could overflow the stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TooDeep {
    /// The structural depth of the deepest operand.
    pub depth: usize,
    /// The cap it exceeded.
    pub max: usize,
}

impl fmt::Display for TooDeep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "value depth {} exceeds the cap of {}", self.depth, self.max)
    }
}

impl std::error::Error for TooDeep {}

/// Decides `a ⊑ b` in the Hoare order.
///
/// Runs the structural recursion with memoization on subvalue pairs, so
/// repeated subobjects (common in query results) are compared once.
///
/// The recursion depth is bounded by the operands' structural depth; for
/// values of untrusted provenance use [`try_hoare_leq`], which refuses to
/// descend past a caller-chosen cap.
pub fn hoare_leq(a: &Value, b: &Value) -> bool {
    let mut memo = HashMap::new();
    leq_memo(a, b, &mut memo)
}

/// [`hoare_leq`] with an explicit depth cap: returns [`TooDeep`] instead
/// of recursing (and potentially overflowing the stack) when either
/// operand's [`Value::structural_depth`] exceeds `max_depth`.
///
/// The depth probe itself is iterative, so the check is safe on values of
/// any shape.
pub fn try_hoare_leq(a: &Value, b: &Value, max_depth: usize) -> Result<bool, TooDeep> {
    let depth = a.structural_depth().max(b.structural_depth());
    if depth > max_depth {
        return Err(TooDeep { depth, max: max_depth });
    }
    Ok(hoare_leq(a, b))
}

/// Decides Hoare equivalence: `a ⊑ b` and `b ⊑ a`.
///
/// This is strictly coarser than equality on nested values: for example
/// `{{1}, {1,2}}` and `{{1,2}}` are Hoare-equivalent but not equal. On flat
/// relations (and more generally on values without empty sets *and* with
/// antichain sets) it refines towards equality; the paper exploits exactly
/// this gap in distinguishing weak equivalence from equivalence.
pub fn hoare_equiv(a: &Value, b: &Value) -> bool {
    hoare_leq(a, b) && hoare_leq(b, a)
}

fn leq_memo<'v>(
    a: &'v Value,
    b: &'v Value,
    memo: &mut HashMap<(&'v Value, &'v Value), bool>,
) -> bool {
    // Cheap syntactic shortcut: equal values are always related.
    if a == b {
        return true;
    }
    if let Some(&r) = memo.get(&(a, b)) {
        return r;
    }
    // A memo miss is the unit of Hoare-order work: one subvalue pair
    // actually compared (shortcut and memoized pairs are free).
    co_trace::kernel::bump(co_trace::kernel::Metric::HoarePairs);
    let result = match (a, b) {
        (Value::Atom(x), Value::Atom(y)) => x == y,
        (Value::Record(r), Value::Record(s)) => {
            r.same_labels(s) && r.iter().zip(s.iter()).all(|((_, x), (_, y))| leq_memo(x, y, memo))
        }
        (Value::Set(s1), Value::Set(s2)) => {
            s1.iter().all(|x| s2.iter().any(|y| leq_memo(x, y, memo)))
        }
        // Mixed kinds are incomparable; the order is only defined between
        // values of the same type, and we extend it as `false` elsewhere.
        _ => false,
    };
    memo.insert((a, b), result);
    result
}

/// The *canonical representative* of a value under Hoare equivalence:
/// recursively removes set elements dominated by another element (keeps the
/// maximal antichain) after canonicalizing children.
///
/// Two values are Hoare-equivalent iff their canonical representatives are
/// related by mutual domination of maximal elements; for sets of atoms this
/// collapses to ordinary equality. Note the representative is *not* a normal
/// form for equivalence in general (Hoare equivalence classes of nested sets
/// need not have least/greatest members), but it is an effective reduction
/// that preserves the equivalence class and is idempotent.
pub fn hoare_reduce(v: &Value) -> Value {
    match v {
        Value::Atom(a) => Value::Atom(*a),
        Value::Record(r) => {
            let fields = r.iter().map(|(f, x)| (*f, hoare_reduce(x))).collect();
            Value::record(fields).expect("reduced record keeps distinct labels")
        }
        Value::Set(s) => {
            let reduced: Vec<Value> = s.iter().map(hoare_reduce).collect();
            let mut keep: Vec<Value> = Vec::with_capacity(reduced.len());
            for x in &reduced {
                // Keep x unless some *other* element strictly dominates it.
                let dominated = reduced
                    .iter()
                    .any(|y| y != x && hoare_leq(x, y) && !(hoare_leq(y, x) && y < x));
                if !dominated {
                    keep.push(x.clone());
                }
            }
            // If everything was dominated in a cycle of equivalent elements,
            // retain the set's maximal elements by falling back to the full
            // reduced set (can only happen with mutually equivalent values).
            if keep.is_empty() && !reduced.is_empty() {
                keep = reduced;
            }
            Value::set(keep)
        }
    }
}

/// [`hoare_reduce`] with an explicit depth cap: returns [`TooDeep`] when
/// the value's [`Value::structural_depth`] exceeds `max_depth`, instead of
/// recursing into a value that could overflow the stack.
pub fn try_hoare_reduce(v: &Value, max_depth: usize) -> Result<Value, TooDeep> {
    let depth = v.structural_depth();
    if depth > max_depth {
        return Err(TooDeep { depth, max: max_depth });
    }
    Ok(hoare_reduce(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Field;

    fn set(vs: Vec<Value>) -> Value {
        Value::set(vs)
    }

    fn rec(fields: Vec<(&str, Value)>) -> Value {
        Value::record(fields.into_iter().map(|(n, v)| (Field::new(n), v)).collect()).unwrap()
    }

    #[test]
    fn atoms_compare_by_equality() {
        assert!(hoare_leq(&Value::int(1), &Value::int(1)));
        assert!(!hoare_leq(&Value::int(1), &Value::int(2)));
    }

    #[test]
    fn flat_sets_are_subset_ordered() {
        let s1 = set(vec![Value::int(1)]);
        let s2 = set(vec![Value::int(1), Value::int(2)]);
        assert!(hoare_leq(&s1, &s2));
        assert!(!hoare_leq(&s2, &s1));
    }

    #[test]
    fn empty_set_is_least() {
        let s = set(vec![Value::int(1)]);
        assert!(hoare_leq(&Value::empty_set(), &s));
        assert!(hoare_leq(&Value::empty_set(), &Value::empty_set()));
        assert!(!hoare_leq(&s, &Value::empty_set()));
    }

    #[test]
    fn records_compare_componentwise() {
        let a = rec(vec![("A", Value::int(1)), ("B", set(vec![Value::int(1)]))]);
        let b = rec(vec![("A", Value::int(1)), ("B", set(vec![Value::int(1), Value::int(2)]))]);
        assert!(hoare_leq(&a, &b));
        assert!(!hoare_leq(&b, &a));
        let c = rec(vec![("A", Value::int(2)), ("B", set(vec![Value::int(1)]))]);
        assert!(!hoare_leq(&a, &c));
    }

    #[test]
    fn mismatched_labels_incomparable() {
        let a = rec(vec![("A", Value::int(1))]);
        let b = rec(vec![("B", Value::int(1))]);
        assert!(!hoare_leq(&a, &b));
    }

    #[test]
    fn nested_example_from_the_paper_setting() {
        // {{1}, {1,2}} and {{1,2}} are Hoare-equivalent but unequal:
        // the canonical witness that weak equivalence ≠ equality.
        let a = set(vec![set(vec![Value::int(1)]), set(vec![Value::int(1), Value::int(2)])]);
        let b = set(vec![set(vec![Value::int(1), Value::int(2)])]);
        assert_ne!(a, b);
        assert!(hoare_equiv(&a, &b));
    }

    #[test]
    fn empty_inner_set_breaks_reverse_direction() {
        // {{}} ⊑ {{1}} but not conversely.
        let a = set(vec![Value::empty_set()]);
        let b = set(vec![set(vec![Value::int(1)])]);
        assert!(hoare_leq(&a, &b));
        assert!(!hoare_leq(&b, &a));
    }

    #[test]
    fn mixed_kinds_are_incomparable() {
        assert!(!hoare_leq(&Value::int(1), &set(vec![Value::int(1)])));
        assert!(!hoare_leq(&set(vec![Value::int(1)]), &Value::int(1)));
    }

    #[test]
    fn reduce_removes_dominated_elements() {
        let a = set(vec![set(vec![Value::int(1)]), set(vec![Value::int(1), Value::int(2)])]);
        let r = hoare_reduce(&a);
        assert_eq!(r, set(vec![set(vec![Value::int(1), Value::int(2)])]));
        assert!(hoare_equiv(&a, &r));
        // Idempotent.
        assert_eq!(hoare_reduce(&r), r);
    }

    #[test]
    fn reduce_preserves_equivalence_class() {
        let v = set(vec![
            Value::empty_set(),
            set(vec![Value::int(3)]),
            set(vec![Value::int(3), Value::int(4)]),
        ]);
        let r = hoare_reduce(&v);
        assert!(hoare_equiv(&v, &r));
        assert_eq!(r, set(vec![set(vec![Value::int(3), Value::int(4)])]));
    }
}

/// Least upper bound of two values in the Hoare order, when one exists.
///
/// The lower powerdomain is a join-semilattice on sets: `S ⊔ S' = S ∪ S'`.
/// Records join componentwise; atoms join only when equal. Values of
/// different kinds (or records with different labels) have no join —
/// exactly the pairs that are Hoare-incomparable for structural reasons.
pub fn hoare_join(a: &Value, b: &Value) -> Option<Value> {
    match (a, b) {
        (Value::Atom(x), Value::Atom(y)) => (x == y).then_some(Value::Atom(*x)),
        (Value::Record(r), Value::Record(s)) => {
            if !r.same_labels(s) {
                return None;
            }
            let mut fields = Vec::with_capacity(r.len());
            for ((f, x), (_, y)) in r.iter().zip(s.iter()) {
                fields.push((*f, hoare_join(x, y)?));
            }
            Some(Value::record(fields).expect("joined record keeps labels"))
        }
        (Value::Set(s1), Value::Set(s2)) => Some(Value::Set(s1.union(s2))),
        _ => None,
    }
}

/// Greatest lower bound in the Hoare order, when one exists.
///
/// On sets: `S ⊓ S' = { x ⊓ y | x ∈ S, y ∈ S', x ⊓ y exists }` — the
/// standard meet of the lower powerdomain. Atoms meet when equal; records
/// componentwise (no meet when any component lacks one).
pub fn hoare_meet(a: &Value, b: &Value) -> Option<Value> {
    match (a, b) {
        (Value::Atom(x), Value::Atom(y)) => (x == y).then_some(Value::Atom(*x)),
        (Value::Record(r), Value::Record(s)) => {
            if !r.same_labels(s) {
                return None;
            }
            let mut fields = Vec::with_capacity(r.len());
            for ((f, x), (_, y)) in r.iter().zip(s.iter()) {
                fields.push((*f, hoare_meet(x, y)?));
            }
            Some(Value::record(fields).expect("met record keeps labels"))
        }
        (Value::Set(s1), Value::Set(s2)) => {
            let mut elems = Vec::new();
            for x in s1.iter() {
                for y in s2.iter() {
                    if let Some(m) = hoare_meet(x, y) {
                        elems.push(m);
                    }
                }
            }
            Some(Value::set(elems))
        }
        _ => None,
    }
}

#[cfg(test)]
mod lattice_tests {
    use super::*;

    #[test]
    fn join_is_an_upper_bound() {
        let a = Value::set(vec![Value::int(1)]);
        let b = Value::set(vec![Value::int(2)]);
        let j = hoare_join(&a, &b).unwrap();
        assert!(hoare_leq(&a, &j));
        assert!(hoare_leq(&b, &j));
        assert_eq!(j, Value::set(vec![Value::int(1), Value::int(2)]));
    }

    #[test]
    fn meet_is_a_lower_bound() {
        let a = Value::set(vec![Value::int(1), Value::int(2)]);
        let b = Value::set(vec![Value::int(2), Value::int(3)]);
        let m = hoare_meet(&a, &b).unwrap();
        assert!(hoare_leq(&m, &a));
        assert!(hoare_leq(&m, &b));
        assert_eq!(m, Value::set(vec![Value::int(2)]));
    }

    #[test]
    fn atoms_join_only_when_equal() {
        assert_eq!(hoare_join(&Value::int(1), &Value::int(1)), Some(Value::int(1)));
        assert_eq!(hoare_join(&Value::int(1), &Value::int(2)), None);
        assert_eq!(hoare_meet(&Value::int(1), &Value::int(2)), None);
    }

    #[test]
    fn nested_meet_intersects_structurally() {
        // Meet of {{1,2}} and {{2,3}} keeps the common refinements: {2}.
        let a = Value::singleton(Value::set(vec![Value::int(1), Value::int(2)]));
        let b = Value::singleton(Value::set(vec![Value::int(2), Value::int(3)]));
        let m = hoare_meet(&a, &b).unwrap();
        assert_eq!(m, Value::singleton(Value::set(vec![Value::int(2)])));
    }

    #[test]
    fn mixed_kinds_have_no_bounds() {
        assert_eq!(hoare_join(&Value::int(1), &Value::singleton(Value::int(1))), None);
        assert_eq!(hoare_meet(&Value::int(1), &Value::singleton(Value::int(1))), None);
    }

    /// Builds `{…{1}…}` nested `n` sets deep without recursion.
    fn deep_singleton(n: usize) -> Value {
        let mut v = Value::int(1);
        for _ in 0..n {
            v = Value::singleton(v);
        }
        v
    }

    #[test]
    fn try_variants_agree_under_the_cap() {
        let a = Value::set(vec![Value::int(1)]);
        let b = Value::set(vec![Value::int(1), Value::int(2)]);
        assert_eq!(try_hoare_leq(&a, &b, 16), Ok(true));
        assert_eq!(try_hoare_leq(&b, &a, 16), Ok(false));
        let v = Value::set(vec![
            Value::set(vec![Value::int(1)]),
            Value::set(vec![Value::int(1), Value::int(2)]),
        ]);
        assert_eq!(try_hoare_reduce(&v, 16).unwrap(), hoare_reduce(&v));
    }

    #[test]
    fn try_variants_refuse_hostile_depth() {
        // 50k-deep values would overflow the recursive comparison; the
        // capped entry points must reject them (and the probe itself must
        // be iterative, which this test exercises by not crashing).
        let deep = deep_singleton(50_000);
        let err = try_hoare_leq(&deep, &Value::int(1), 128).unwrap_err();
        assert_eq!(err.max, 128);
        assert!(err.depth > 128);
        assert!(try_hoare_leq(&Value::int(1), &deep, 128).is_err());
        let err = try_hoare_reduce(&deep, 128).unwrap_err();
        assert!(err.to_string().contains("exceeds the cap"));
        // The boundary is inclusive: depth == max passes.
        let shallow = deep_singleton(8);
        assert!(try_hoare_leq(&shallow, &shallow, 9).is_ok());
        assert!(try_hoare_reduce(&shallow, 9).is_ok());
    }
}
