//! Seeded random generation of complex objects.
//!
//! Used by property tests and benchmarks across the workspace. All
//! generation is driven by an explicit [`rand::rngs::StdRng`] seed so test
//! failures and benchmark workloads reproduce exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::atom::{Atom, Field};
use crate::ty::Type;
use crate::value::Value;

/// Parameters controlling random value generation.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Maximum set-nesting depth.
    pub max_depth: usize,
    /// Maximum elements per generated set.
    pub max_set_len: usize,
    /// Maximum fields per generated record.
    pub max_record_fields: usize,
    /// Number of distinct atoms drawn from (small pools make Hoare-order
    /// relationships and homomorphisms likely, which is what the tests
    /// want to exercise).
    pub atom_pool: usize,
    /// Probability (percent) that a set position is generated empty.
    pub empty_set_pct: u32,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_depth: 3,
            max_set_len: 4,
            max_record_fields: 3,
            atom_pool: 5,
            empty_set_pct: 10,
        }
    }
}

/// A seeded generator of random complex objects.
pub struct ValueGen {
    rng: StdRng,
    config: GenConfig,
    fields: Vec<Field>,
}

impl ValueGen {
    /// Creates a generator from a seed and configuration.
    pub fn new(seed: u64, config: GenConfig) -> ValueGen {
        let fields =
            (0..config.max_record_fields.max(1)).map(|i| Field::new(&format!("F{i}"))).collect();
        ValueGen { rng: StdRng::seed_from_u64(seed), config, fields }
    }

    /// Generates a random atom from the pool.
    pub fn atom(&mut self) -> Atom {
        Atom::int(self.rng.gen_range(0..self.config.atom_pool as i64))
    }

    /// Generates a random value of a random shape with depth ≤ `max_depth`.
    pub fn value(&mut self) -> Value {
        let depth = self.rng.gen_range(0..=self.config.max_depth);
        self.value_at_depth(depth)
    }

    fn value_at_depth(&mut self, depth: usize) -> Value {
        if depth == 0 {
            return Value::Atom(self.atom());
        }
        match self.rng.gen_range(0..3) {
            0 => Value::Atom(self.atom()),
            1 => {
                let n = self.rng.gen_range(1..=self.config.max_record_fields);
                let names: Vec<Field> = self.fields[..n].to_vec();
                let fields =
                    names.into_iter().map(|f| (f, self.value_at_depth(depth - 1))).collect();
                Value::record(fields).expect("generator uses distinct fields")
            }
            _ => self.set_at_depth(depth),
        }
    }

    fn set_at_depth(&mut self, depth: usize) -> Value {
        if self.rng.gen_range(0..100) < self.config.empty_set_pct {
            return Value::empty_set();
        }
        let n = self.rng.gen_range(1..=self.config.max_set_len);
        Value::set((0..n).map(|_| self.value_at_depth(depth - 1)).collect())
    }

    /// Generates a random value *of the given type*, so pairs of values are
    /// type-compatible and therefore potentially Hoare-comparable.
    pub fn value_of_type(&mut self, ty: &Type) -> Value {
        match ty {
            Type::Atom | Type::Bottom => Value::Atom(self.atom()),
            Type::Record(fields) => {
                Value::record(fields.iter().map(|(f, t)| (*f, self.value_of_type(t))).collect())
                    .expect("type has distinct fields")
            }
            Type::Set(elem) => {
                if self.rng.gen_range(0..100) < self.config.empty_set_pct {
                    return Value::empty_set();
                }
                let n = self.rng.gen_range(1..=self.config.max_set_len);
                Value::set((0..n).map(|_| self.value_of_type(elem)).collect())
            }
        }
    }

    /// Generates a random type with the given exact set-nesting depth.
    pub fn type_of_depth(&mut self, depth: usize) -> Type {
        if depth == 0 {
            return Type::Atom;
        }
        match self.rng.gen_range(0..2) {
            0 => Type::set(self.type_of_depth(depth - 1)),
            _ => {
                let n = self.rng.gen_range(1..=self.config.max_record_fields);
                let mut fields: Vec<(Field, Type)> = Vec::with_capacity(n);
                // Ensure at least one field realizes the full depth.
                fields.push((self.fields[0], Type::set(self.type_of_depth(depth - 1))));
                let rest: Vec<Field> = self.fields[1..n].to_vec();
                for f in rest {
                    let d = self.rng.gen_range(0..depth);
                    fields.push((f, self.type_of_depth(d)));
                }
                Type::record(fields)
            }
        }
    }

    /// Produces a value `w` with `v ⊑ w` by randomly *growing* `v`: adds set
    /// elements and replaces subvalues by Hoare-larger ones. Useful for
    /// generating positive test cases for the order.
    pub fn grow(&mut self, v: &Value) -> Value {
        match v {
            Value::Atom(a) => Value::Atom(*a),
            Value::Record(r) => Value::record(r.iter().map(|(f, x)| (*f, self.grow(x))).collect())
                .expect("growing keeps labels"),
            Value::Set(s) => {
                let mut elems: Vec<Value> = s.iter().map(|x| self.grow(x)).collect();
                // Occasionally add unrelated extra elements.
                let extra = self.rng.gen_range(0..=2);
                for _ in 0..extra {
                    if let Some(tmpl) = s.iter().next() {
                        let t = crate::ty::type_of(tmpl).unwrap_or(Type::Atom);
                        elems.push(self.value_of_type(&t));
                    }
                }
                Value::set(elems)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::hoare_leq;
    use crate::ty::{check_type, type_of};

    #[test]
    fn generation_is_deterministic() {
        let mut g1 = ValueGen::new(42, GenConfig::default());
        let mut g2 = ValueGen::new(42, GenConfig::default());
        for _ in 0..20 {
            assert_eq!(g1.value(), g2.value());
        }
    }

    #[test]
    fn typed_generation_matches_type() {
        let mut g = ValueGen::new(7, GenConfig::default());
        for depth in 0..4 {
            let ty = g.type_of_depth(depth);
            for _ in 0..10 {
                let v = g.value_of_type(&ty);
                check_type(&v, &ty).unwrap_or_else(|e| panic!("{v} vs {ty}: {e}"));
            }
        }
    }

    #[test]
    fn grow_produces_hoare_larger_values() {
        let mut g = ValueGen::new(11, GenConfig::default());
        for depth in 0..4 {
            let ty = g.type_of_depth(depth);
            for _ in 0..10 {
                let v = g.value_of_type(&ty);
                let w = g.grow(&v);
                assert!(hoare_leq(&v, &w), "v={v} w={w}");
            }
        }
    }

    #[test]
    fn depth_bound_respected() {
        let mut g = ValueGen::new(3, GenConfig { max_depth: 2, ..GenConfig::default() });
        for _ in 0..50 {
            let v = g.value();
            assert!(v.set_depth() <= 2, "{v}");
            assert!(type_of(&v).is_ok() || v.as_set().is_some(), "{v}");
        }
    }
}
