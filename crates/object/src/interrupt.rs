//! Cooperative interruption: thread-local wall-clock deadlines and step
//! budgets for the decision kernels.
//!
//! Containment is worst-case exponential (PAPER §4, Thm 4.1), so a serving
//! layer needs a way to abandon a decision that has outlived its request.
//! Threads are not cancellable in safe Rust; instead the kernels poll a
//! thread-local [`Budget`] at their inner-loop sites (homomorphism probes,
//! simulation worklist pops, emptiness-pattern enumeration) via [`probe`],
//! and unwind a structured [`Interrupted`] error when the budget is spent.
//!
//! The fast path is deliberately cheap: with no budget installed, [`probe`]
//! is a single thread-local `Cell` load. With one installed, a step counter
//! is decremented per call and the wall clock is consulted only every
//! [`RECHECK_EVERY`] probes, so `Instant::now` stays off the hot path.
//!
//! Expiry is *sticky*: once a budget trips, every subsequent [`probe`] on
//! the thread fails until the [`BudgetGuard`] is dropped, so a kernel that
//! swallows one `Interrupted` cannot accidentally keep running.

use std::cell::Cell;
use std::fmt;
use std::marker::PhantomData;
use std::time::Instant;

/// The installed budget (deadline or step count) was exhausted.
///
/// Kernels propagate this out of their recursions; callers map it onto a
/// domain error (`CoreError::Interrupted`, `Decision::TimedOut`, …).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interrupted;

impl fmt::Display for Interrupted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("decision interrupted: deadline or step budget exhausted")
    }
}

impl std::error::Error for Interrupted {}

/// Limits to impose on kernel work run on the current thread.
///
/// Both limits are optional and combine: the budget trips on whichever is
/// exhausted first. A default `Budget` imposes nothing (but still pays the
/// per-probe step accounting while installed).
#[derive(Clone, Copy, Debug, Default)]
pub struct Budget {
    /// Absolute wall-clock instant after which [`probe`] fails.
    pub deadline: Option<Instant>,
    /// Number of [`probe`] calls allowed before failure. One probe
    /// corresponds to one unit of kernel work (a candidate homomorphism
    /// probe, a worklist pop, an emptiness pattern).
    pub steps: Option<u64>,
}

/// How many probes may pass between wall-clock re-checks.
const RECHECK_EVERY: u32 = 64;

/// Sentinel for "no step limit" in the thread-local counter.
const UNLIMITED: u64 = u64::MAX;

struct State {
    active: Cell<bool>,
    expired: Cell<bool>,
    steps_left: Cell<u64>,
    deadline: Cell<Option<Instant>>,
    countdown: Cell<u32>,
}

thread_local! {
    static STATE: State = const {
        State {
            active: Cell::new(false),
            expired: Cell::new(false),
            steps_left: Cell::new(UNLIMITED),
            deadline: Cell::new(None),
            countdown: Cell::new(RECHECK_EVERY),
        }
    };
}

/// RAII installation of a [`Budget`] on the current thread.
///
/// Dropping the guard restores whatever budget (or absence of one) was
/// installed before, so guards nest correctly. The guard is `!Send`: it
/// must be dropped on the thread that created it.
#[must_use = "the budget is uninstalled when the guard drops"]
pub struct BudgetGuard {
    prev_active: bool,
    prev_expired: bool,
    prev_steps_left: u64,
    prev_deadline: Option<Instant>,
    prev_countdown: u32,
    _not_send: PhantomData<*const ()>,
}

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        STATE.with(|s| {
            s.active.set(self.prev_active);
            s.expired.set(self.prev_expired);
            s.steps_left.set(self.prev_steps_left);
            s.deadline.set(self.prev_deadline);
            s.countdown.set(self.prev_countdown);
        });
    }
}

/// Installs `budget` on the current thread until the returned guard drops.
pub fn install(budget: Budget) -> BudgetGuard {
    STATE.with(|s| {
        let guard = BudgetGuard {
            prev_active: s.active.get(),
            prev_expired: s.expired.get(),
            prev_steps_left: s.steps_left.get(),
            prev_deadline: s.deadline.get(),
            prev_countdown: s.countdown.get(),
            _not_send: PhantomData,
        };
        s.active.set(true);
        s.expired.set(false);
        s.steps_left.set(budget.steps.unwrap_or(UNLIMITED));
        s.deadline.set(budget.deadline);
        s.countdown.set(RECHECK_EVERY);
        guard
    })
}

/// Whether a budget is currently installed on this thread.
pub fn active() -> bool {
    STATE.with(|s| s.active.get())
}

/// Accounts one unit of kernel work against the installed budget.
///
/// Returns `Err(Interrupted)` once the step budget is spent or the deadline
/// has passed (checked every [`RECHECK_EVERY`] probes). With no budget
/// installed this is a cheap no-op that always succeeds.
#[inline]
pub fn probe() -> Result<(), Interrupted> {
    STATE.with(|s| {
        if !s.active.get() {
            return Ok(());
        }
        if s.expired.get() {
            return Err(Interrupted);
        }
        let steps = s.steps_left.get();
        if steps == 0 {
            s.expired.set(true);
            return Err(Interrupted);
        }
        if steps != UNLIMITED {
            s.steps_left.set(steps - 1);
        }
        let countdown = s.countdown.get();
        if countdown > 1 {
            s.countdown.set(countdown - 1);
            return Ok(());
        }
        s.countdown.set(RECHECK_EVERY);
        if let Some(deadline) = s.deadline.get() {
            if Instant::now() >= deadline {
                s.expired.set(true);
                return Err(Interrupted);
            }
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn probe_is_a_no_op_without_a_budget() {
        assert!(!active());
        for _ in 0..1000 {
            assert_eq!(probe(), Ok(()));
        }
    }

    #[test]
    fn step_budget_trips_after_exactly_n_probes() {
        let guard = install(Budget { deadline: None, steps: Some(3) });
        assert!(active());
        assert_eq!(probe(), Ok(()));
        assert_eq!(probe(), Ok(()));
        assert_eq!(probe(), Ok(()));
        assert_eq!(probe(), Err(Interrupted));
        // Sticky: stays expired.
        assert_eq!(probe(), Err(Interrupted));
        drop(guard);
        assert!(!active());
        assert_eq!(probe(), Ok(()));
    }

    #[test]
    fn deadline_trips_within_the_recheck_window() {
        let _guard = install(Budget {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            steps: None,
        });
        // The deadline is already past; it must be noticed within one
        // re-check window of probes.
        let tripped = (0..2 * RECHECK_EVERY).any(|_| probe().is_err());
        assert!(tripped);
    }

    #[test]
    fn guards_nest_and_restore() {
        let outer = install(Budget { deadline: None, steps: Some(1_000) });
        assert_eq!(probe(), Ok(()));
        {
            let _inner = install(Budget { deadline: None, steps: Some(1) });
            assert_eq!(probe(), Ok(()));
            assert_eq!(probe(), Err(Interrupted));
        }
        // Outer budget is live again and unexpired.
        assert_eq!(probe(), Ok(()));
        drop(outer);
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let _guard = install(Budget {
            deadline: Some(Instant::now() + Duration::from_secs(60)),
            steps: None,
        });
        for _ in 0..1000 {
            assert_eq!(probe(), Ok(()));
        }
    }
}
