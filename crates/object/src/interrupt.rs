//! Cooperative interruption: thread-local wall-clock deadlines and step
//! budgets for the decision kernels.
//!
//! Containment is worst-case exponential (PAPER §4, Thm 4.1), so a serving
//! layer needs a way to abandon a decision that has outlived its request.
//! Threads are not cancellable in safe Rust; instead the kernels poll a
//! thread-local [`Budget`] at their inner-loop sites (homomorphism probes,
//! simulation worklist pops, emptiness-pattern enumeration) via [`probe`],
//! and unwind a structured [`Interrupted`] error when the budget is spent.
//!
//! The fast path is deliberately cheap: with no budget installed, [`probe`]
//! is a single thread-local `Cell` load. With one installed, a step counter
//! is decremented per call and the wall clock is consulted only every
//! [`RECHECK_EVERY`] probes, so `Instant::now` stays off the hot path.
//!
//! Expiry is *sticky*: once a budget trips, every subsequent [`probe`] on
//! the thread fails until the [`BudgetGuard`] is dropped, so a kernel that
//! swallows one `Interrupted` cannot accidentally keep running.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The installed budget (deadline or step count) was exhausted.
///
/// Kernels propagate this out of their recursions; callers map it onto a
/// domain error (`CoreError::Interrupted`, `Decision::TimedOut`, …).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interrupted;

impl fmt::Display for Interrupted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("decision interrupted: deadline or step budget exhausted")
    }
}

impl std::error::Error for Interrupted {}

/// Limits to impose on kernel work run on the current thread.
///
/// Both limits are optional and combine: the budget trips on whichever is
/// exhausted first. A default `Budget` imposes nothing (but still pays the
/// per-probe step accounting while installed).
#[derive(Clone, Copy, Debug, Default)]
pub struct Budget {
    /// Absolute wall-clock instant after which [`probe`] fails.
    pub deadline: Option<Instant>,
    /// Number of [`probe`] calls allowed before failure. One probe
    /// corresponds to one unit of kernel work (a candidate homomorphism
    /// probe, a worklist pop, an emptiness pattern).
    pub steps: Option<u64>,
}

/// How many probes may pass between wall-clock re-checks.
const RECHECK_EVERY: u32 = 64;

/// Sentinel for "no step limit" in the thread-local counter.
const UNLIMITED: u64 = u64::MAX;

/// Steps a worker takes from a [`SharedBudget`] pool per refill, so the
/// shared atomic is touched once per slice rather than once per probe.
const SLICE: u64 = 256;

/// [`SharedBudget`] flag values: the region is live.
const FLAG_LIVE: u8 = 0;
/// The region was cancelled benignly (first success / first refutation):
/// workers must stop, but the parent budget has *not* expired.
const FLAG_CANCELLED: u8 = 1;
/// The shared budget really expired (deadline or pool exhausted).
const FLAG_EXPIRED: u8 = 2;

struct State {
    active: Cell<bool>,
    expired: Cell<bool>,
    steps_left: Cell<u64>,
    deadline: Cell<Option<Instant>>,
    countdown: Cell<u32>,
    shared: RefCell<Option<Arc<SharedBudget>>>,
}

thread_local! {
    static STATE: State = const {
        State {
            active: Cell::new(false),
            expired: Cell::new(false),
            steps_left: Cell::new(UNLIMITED),
            deadline: Cell::new(None),
            countdown: Cell::new(RECHECK_EVERY),
            shared: RefCell::new(None),
        }
    };
}

/// One budget shared by the workers of a parallel kernel region.
///
/// Created with [`SharedBudget::fork_current`] from the parent thread's
/// installed budget: the parent's remaining steps become a central atomic
/// pool that workers draw [`SLICE`]-sized refills from, and the parent's
/// deadline is checked by every worker. A three-state flag distinguishes
/// *benign* cancellation (a worker found the answer; siblings stop but the
/// request has not timed out) from *real* expiry (deadline passed or pool
/// drained on any worker — the whole request is interrupted).
///
/// After joining the workers, the parent calls [`SharedBudget::rejoin`] to
/// pull the surviving pool balance (and any expiry) back into its own
/// thread-local budget, preserving the sticky-expiry invariant.
#[derive(Debug)]
pub struct SharedBudget {
    deadline: Option<Instant>,
    pool: AtomicU64,
    flag: AtomicU8,
}

impl SharedBudget {
    /// Snapshots the current thread's installed budget as a shared pool.
    ///
    /// With no budget installed the result is inert (unlimited steps, no
    /// deadline) — workers still honor the cancellation flag. If the
    /// current budget has already expired, the fork starts expired.
    pub fn fork_current() -> Arc<SharedBudget> {
        STATE.with(|s| {
            if !s.active.get() {
                return Arc::new(SharedBudget {
                    deadline: None,
                    pool: AtomicU64::new(UNLIMITED),
                    flag: AtomicU8::new(FLAG_LIVE),
                });
            }
            let flag = if s.expired.get() { FLAG_EXPIRED } else { FLAG_LIVE };
            Arc::new(SharedBudget {
                deadline: s.deadline.get(),
                pool: AtomicU64::new(s.steps_left.get()),
                flag: AtomicU8::new(flag),
            })
        })
    }

    /// Benign cancellation: siblings stop at their next probe, but the
    /// parent budget does not expire. A no-op if already expired.
    pub fn cancel(&self) {
        let _ = self.flag.compare_exchange(
            FLAG_LIVE,
            FLAG_CANCELLED,
            Ordering::AcqRel,
            Ordering::Relaxed,
        );
    }

    /// Marks the shared budget as really expired (sticky, wins over a
    /// benign cancel for accounting purposes).
    fn expire(&self) {
        self.flag.store(FLAG_EXPIRED, Ordering::Release);
    }

    /// Whether the budget really expired (deadline or steps), as opposed
    /// to a benign cancellation.
    pub fn is_expired(&self) -> bool {
        self.flag.load(Ordering::Acquire) == FLAG_EXPIRED
    }

    /// Whether workers should stop for any reason (cancel or expiry).
    pub fn is_stopped(&self) -> bool {
        self.flag.load(Ordering::Acquire) != FLAG_LIVE
    }

    /// Takes up to [`SLICE`] steps from the pool; `None` when drained.
    fn take_slice(&self) -> Option<u64> {
        let mut current = self.pool.load(Ordering::Relaxed);
        loop {
            if current == UNLIMITED {
                return Some(UNLIMITED);
            }
            if current == 0 {
                return None;
            }
            let take = current.min(SLICE);
            match self.pool.compare_exchange_weak(
                current,
                current - take,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(take),
                Err(seen) => current = seen,
            }
        }
    }

    /// Returns `steps` to the pool (a worker's unspent slice remainder).
    fn refund(&self, steps: u64) {
        if steps == 0 || self.pool.load(Ordering::Relaxed) == UNLIMITED {
            return;
        }
        self.pool.fetch_add(steps, Ordering::AcqRel);
    }

    /// Folds the shared budget back into the parent thread's installed
    /// budget after all workers have joined: the pool balance becomes the
    /// parent's remaining steps, and a real expiry (never a benign cancel)
    /// expires the parent — preserving sticky semantics.
    pub fn rejoin(&self) {
        STATE.with(|s| {
            if !s.active.get() {
                return;
            }
            let pool = self.pool.load(Ordering::Acquire);
            if pool != UNLIMITED {
                s.steps_left.set(pool);
            }
            if self.is_expired() {
                s.expired.set(true);
            }
        });
    }
}

/// RAII installation of a [`Budget`] on the current thread.
///
/// Dropping the guard restores whatever budget (or absence of one) was
/// installed before, so guards nest correctly. The guard is `!Send`: it
/// must be dropped on the thread that created it.
#[must_use = "the budget is uninstalled when the guard drops"]
pub struct BudgetGuard {
    prev_active: bool,
    prev_expired: bool,
    prev_steps_left: u64,
    prev_deadline: Option<Instant>,
    prev_countdown: u32,
    prev_shared: Option<Arc<SharedBudget>>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        STATE.with(|s| {
            // A worker guard returns its unspent slice to the shared pool
            // so the parent's rejoin sees an accurate balance.
            if let Some(shared) = s.shared.borrow().as_ref() {
                let left = s.steps_left.get();
                if left != UNLIMITED && !s.expired.get() {
                    shared.refund(left);
                }
            }
            s.active.set(self.prev_active);
            s.expired.set(self.prev_expired);
            s.steps_left.set(self.prev_steps_left);
            s.deadline.set(self.prev_deadline);
            s.countdown.set(self.prev_countdown);
            *s.shared.borrow_mut() = self.prev_shared.take();
        });
    }
}

fn save_state(s: &State) -> BudgetGuard {
    BudgetGuard {
        prev_active: s.active.get(),
        prev_expired: s.expired.get(),
        prev_steps_left: s.steps_left.get(),
        prev_deadline: s.deadline.get(),
        prev_countdown: s.countdown.get(),
        prev_shared: s.shared.borrow_mut().take(),
        _not_send: PhantomData,
    }
}

/// Installs `budget` on the current thread until the returned guard drops.
pub fn install(budget: Budget) -> BudgetGuard {
    STATE.with(|s| {
        let guard = save_state(s);
        s.active.set(true);
        s.expired.set(false);
        s.steps_left.set(budget.steps.unwrap_or(UNLIMITED));
        s.deadline.set(budget.deadline);
        s.countdown.set(RECHECK_EVERY);
        guard
    })
}

/// Installs a worker-side view of `shared` on the current thread.
///
/// The worker starts with one step slice drawn from the pool (starting
/// expired if the pool is already drained or the region already stopped);
/// [`probe`] refills from the pool as slices run out and re-checks the
/// shared flag alongside the wall clock. Dropping the guard refunds the
/// unspent slice remainder and restores the previous thread state.
pub fn install_shared(shared: &Arc<SharedBudget>) -> BudgetGuard {
    STATE.with(|s| {
        let guard = save_state(s);
        s.active.set(true);
        s.deadline.set(shared.deadline);
        s.countdown.set(RECHECK_EVERY);
        match shared.take_slice() {
            Some(slice) if !shared.is_stopped() => {
                s.expired.set(false);
                s.steps_left.set(slice);
            }
            Some(slice) => {
                // Region already cancelled/expired: refund and start dead.
                shared.refund(if slice == UNLIMITED { 0 } else { slice });
                s.expired.set(true);
                s.steps_left.set(0);
            }
            None => {
                shared.expire();
                s.expired.set(true);
                s.steps_left.set(0);
            }
        }
        *s.shared.borrow_mut() = Some(Arc::clone(shared));
        guard
    })
}

/// Whether a budget is currently installed on this thread.
pub fn active() -> bool {
    STATE.with(|s| s.active.get())
}

/// Accounts one unit of kernel work against the installed budget.
///
/// Returns `Err(Interrupted)` once the step budget is spent or the deadline
/// has passed (checked every [`RECHECK_EVERY`] probes). With no budget
/// installed this is a cheap no-op that always succeeds.
#[inline]
pub fn probe() -> Result<(), Interrupted> {
    STATE.with(|s| {
        if !s.active.get() {
            return Ok(());
        }
        if s.expired.get() {
            return Err(Interrupted);
        }
        let mut steps = s.steps_left.get();
        if steps == 0 {
            // A worker slice ran out: refill from the shared pool if this
            // thread has one; otherwise (or on a drained pool) expire.
            let refill = s.shared.borrow().as_ref().map(|sh| sh.take_slice());
            match refill {
                Some(Some(slice)) => {
                    s.steps_left.set(slice);
                    steps = slice;
                }
                Some(None) => {
                    if let Some(sh) = s.shared.borrow().as_ref() {
                        sh.expire();
                    }
                    s.expired.set(true);
                    return Err(Interrupted);
                }
                None => {
                    s.expired.set(true);
                    return Err(Interrupted);
                }
            }
        }
        if steps != UNLIMITED {
            s.steps_left.set(steps - 1);
        }
        let countdown = s.countdown.get();
        if countdown > 1 {
            s.countdown.set(countdown - 1);
            return Ok(());
        }
        s.countdown.set(RECHECK_EVERY);
        if let Some(sh) = s.shared.borrow().as_ref() {
            if sh.is_stopped() {
                s.expired.set(true);
                return Err(Interrupted);
            }
        }
        if let Some(deadline) = s.deadline.get() {
            if Instant::now() >= deadline {
                if let Some(sh) = s.shared.borrow().as_ref() {
                    sh.expire();
                }
                s.expired.set(true);
                return Err(Interrupted);
            }
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn probe_is_a_no_op_without_a_budget() {
        assert!(!active());
        for _ in 0..1000 {
            assert_eq!(probe(), Ok(()));
        }
    }

    #[test]
    fn step_budget_trips_after_exactly_n_probes() {
        let guard = install(Budget { deadline: None, steps: Some(3) });
        assert!(active());
        assert_eq!(probe(), Ok(()));
        assert_eq!(probe(), Ok(()));
        assert_eq!(probe(), Ok(()));
        assert_eq!(probe(), Err(Interrupted));
        // Sticky: stays expired.
        assert_eq!(probe(), Err(Interrupted));
        drop(guard);
        assert!(!active());
        assert_eq!(probe(), Ok(()));
    }

    #[test]
    fn deadline_trips_within_the_recheck_window() {
        let _guard = install(Budget {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            steps: None,
        });
        // The deadline is already past; it must be noticed within one
        // re-check window of probes.
        let tripped = (0..2 * RECHECK_EVERY).any(|_| probe().is_err());
        assert!(tripped);
    }

    #[test]
    fn guards_nest_and_restore() {
        let outer = install(Budget { deadline: None, steps: Some(1_000) });
        assert_eq!(probe(), Ok(()));
        {
            let _inner = install(Budget { deadline: None, steps: Some(1) });
            assert_eq!(probe(), Ok(()));
            assert_eq!(probe(), Err(Interrupted));
        }
        // Outer budget is live again and unexpired.
        assert_eq!(probe(), Ok(()));
        drop(outer);
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let _guard = install(Budget {
            deadline: Some(Instant::now() + Duration::from_secs(60)),
            steps: None,
        });
        for _ in 0..1000 {
            assert_eq!(probe(), Ok(()));
        }
    }

    #[test]
    fn shared_budget_slices_refill_and_exhaust() {
        let parent = install(Budget { deadline: None, steps: Some(2 * SLICE + 10) });
        let shared = SharedBudget::fork_current();
        {
            let _worker = install_shared(&shared);
            // More probes than one slice: refills must kick in, and the
            // pool must drain to expiry after exactly the parent's steps.
            let mut ok = 0u64;
            while probe().is_ok() {
                ok += 1;
                assert!(ok < 10 * SLICE, "budget never tripped");
            }
            assert_eq!(ok, 2 * SLICE + 10);
            assert!(shared.is_expired());
        }
        shared.rejoin();
        // Real expiry propagates to the parent (sticky).
        assert_eq!(probe(), Err(Interrupted));
        drop(parent);
    }

    #[test]
    fn benign_cancel_stops_workers_without_expiring_parent() {
        let parent = install(Budget { deadline: None, steps: Some(100_000) });
        let shared = SharedBudget::fork_current();
        shared.cancel();
        {
            let _worker = install_shared(&shared);
            // Cancelled region: the worker must stop promptly.
            let tripped = (0..2 * RECHECK_EVERY as usize + 1).any(|_| probe().is_err());
            assert!(tripped);
        }
        assert!(!shared.is_expired());
        shared.rejoin();
        // Benign cancel does not expire the parent budget.
        assert_eq!(probe(), Ok(()));
        drop(parent);
    }

    #[test]
    fn unspent_slices_are_refunded_on_rejoin() {
        let parent = install(Budget { deadline: None, steps: Some(10 * SLICE) });
        let shared = SharedBudget::fork_current();
        {
            let _worker = install_shared(&shared);
            for _ in 0..10 {
                assert_eq!(probe(), Ok(()));
            }
        }
        shared.rejoin();
        // Parent keeps everything except the 10 probes actually spent.
        let mut ok = 0u64;
        while probe().is_ok() {
            ok += 1;
            assert!(ok <= 10 * SLICE);
        }
        assert_eq!(ok, 10 * SLICE - 10);
        drop(parent);
    }

    #[test]
    fn fork_without_a_budget_is_inert_but_cancellable() {
        assert!(!active());
        let shared = SharedBudget::fork_current();
        {
            let _worker = install_shared(&shared);
            for _ in 0..1000 {
                assert_eq!(probe(), Ok(()));
            }
        }
        shared.cancel();
        {
            let _worker = install_shared(&shared);
            assert_eq!(probe(), Err(Interrupted));
        }
        shared.rejoin();
        assert!(!active());
        assert_eq!(probe(), Ok(()));
    }

    #[test]
    fn shared_budget_works_across_real_threads() {
        let parent = install(Budget { deadline: None, steps: Some(4 * SLICE) });
        let shared = SharedBudget::fork_current();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let shared = &shared;
                scope.spawn(move || {
                    let _worker = install_shared(shared);
                    while probe().is_ok() {}
                });
            }
        });
        assert!(shared.is_expired());
        shared.rejoin();
        assert_eq!(probe(), Err(Interrupted));
        drop(parent);
        assert_eq!(probe(), Ok(()));
    }
}
