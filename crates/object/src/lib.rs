//! # co-object — complex objects and their containment order
//!
//! The data-model substrate for the reproduction of *Levy & Suciu, "Deciding
//! Containment for Queries with Complex Objects", PODS 1997*.
//!
//! A **complex object** (§3.1 of the paper) is built from atomic values,
//! records, and finite sets. The crate provides:
//!
//! * [`Atom`], [`Field`] — interned atomic values and record labels;
//! * [`Value`] — complex objects in canonical form (`==` is semantic
//!   equality);
//! * [`Type`] and type inference/checking;
//! * the **Hoare (lower powerdomain) order** `⊑` of §3.2 — the weakest
//!   preorder consistent with relational containment and preserved by the
//!   constructors — via both structural recursion ([`hoare_leq`]) and graph
//!   simulation ([`graph::hoare_leq_graph`]);
//! * a literal parser and seeded random generators.
//!
//! ```
//! use co_object::{parse_value, hoare_leq};
//!
//! let small = parse_value("{[name: ann, kids: {bo}]}").unwrap();
//! let big   = parse_value("{[name: ann, kids: {bo, cy}], [name: dee, kids: {}]}").unwrap();
//! assert!(hoare_leq(&small, &big));
//! assert!(!hoare_leq(&big, &small));
//! ```

#![warn(missing_docs)]

pub mod atom;
pub mod generate;
pub mod graph;
pub mod interrupt;
pub mod order;
pub mod par;
pub mod parse;
pub mod ty;
pub mod value;

pub use atom::{Atom, Field};
pub use graph::{
    greatest_simulation, greatest_simulation_sweep, greatest_simulation_worklist, hoare_leq_graph,
    simulates, try_greatest_simulation, try_simulates, ValueGraph,
};
pub use interrupt::Interrupted;
pub use order::{
    hoare_equiv, hoare_join, hoare_leq, hoare_meet, hoare_reduce, try_hoare_leq, try_hoare_reduce,
    TooDeep,
};
pub use parse::{parse_value, parse_value_with_depth, ParseError, ParseErrorKind};
pub use ty::{check_type, type_of, IllTyped, Type};
pub use value::{DuplicateField, RecordValue, SetValue, Value};
