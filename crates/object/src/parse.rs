//! A small parser for complex-object literals.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! value  ::= atom | record | set
//! atom   ::= integer | identifier | 'quoted string'
//! record ::= '[' (field ':' value) (',' field ':' value)* ']' | '[' ']'
//! set    ::= '{' value (',' value)* '}' | '{' '}'
//! field  ::= identifier
//! ```
//!
//! The printer in [`crate::value`] produces exactly this syntax, so
//! `parse(v.to_string()) == v` for every value (property-tested).
//!
//! The parser tracks its recursion depth explicitly: input nested deeper
//! than the cap (default [`DEFAULT_MAX_DEPTH`]) is rejected with a
//! structured [`ParseErrorKind::TooDeep`] error instead of overflowing the
//! stack — a `{{{{…}}}}` line from an untrusted source must never abort
//! the process.

use std::fmt;

use crate::atom::{Atom, Field};
use crate::value::Value;

/// Default nesting cap for [`parse_value`]. Deep enough for any sane
/// literal, shallow enough that the parser's recursion (and dropping the
/// partially-built value) stays far from the stack limit — 128 keeps even
/// debug builds comfortably inside a 2 MiB thread stack.
pub const DEFAULT_MAX_DEPTH: usize = 128;

/// What category of failure a [`ParseError`] reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Malformed input (the ordinary case).
    Syntax,
    /// Input nested deeper than the parser's depth cap. The input may be
    /// grammatically fine; it is rejected as a resource bound.
    TooDeep,
}

/// A parse error with byte position and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the error was detected.
    pub position: usize,
    /// What went wrong.
    pub message: String,
    /// Structured failure category (syntax vs. depth cap).
    pub kind: ParseErrorKind,
}

impl ParseError {
    /// Whether this error is the depth-cap rejection.
    pub fn is_too_deep(&self) -> bool {
        self.kind == ParseErrorKind::TooDeep
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complex-object literal under the default depth cap.
pub fn parse_value(input: &str) -> Result<Value, ParseError> {
    parse_value_with_depth(input, DEFAULT_MAX_DEPTH)
}

/// Parses a complex-object literal, rejecting nesting deeper than
/// `max_depth` with [`ParseErrorKind::TooDeep`].
pub fn parse_value_with_depth(input: &str, max_depth: usize) -> Result<Value, ParseError> {
    let mut p = Parser { input: input.as_bytes(), pos: 0, depth: 0, max_depth };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.err("trailing input after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    depth: usize,
    max_depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            position: self.pos,
            message: message.to_string(),
            kind: ParseErrorKind::Syntax,
        }
    }

    fn too_deep(&self) -> ParseError {
        ParseError {
            position: self.pos,
            message: format!("value nested deeper than {} levels", self.max_depth),
            kind: ParseErrorKind::TooDeep,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        if self.depth >= self.max_depth {
            return Err(self.too_deep());
        }
        self.depth += 1;
        let v = self.value_inner();
        self.depth -= 1;
        v
    }

    fn value_inner(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'[') => self.record(),
            Some(b'{') => self.set(),
            Some(b'\'') => self.quoted(),
            Some(c) if c.is_ascii_digit() || c == b'-' => self.integer(),
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => self.bare(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn record(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        self.skip_ws();
        let mut fields = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Value::record(fields).map_err(|e| self.err(&e.to_string()));
        }
        loop {
            self.skip_ws();
            let name = self.ident()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((Field::new(&name), v));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => break,
                _ => return Err(self.err("expected `,` or `]` in record")),
            }
        }
        Value::record(fields).map_err(|e| self.err(&e.to_string()))
    }

    fn set(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        self.skip_ws();
        let mut elems = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::set(elems));
        }
        loop {
            self.skip_ws();
            elems.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => return Err(self.err("expected `,` or `}` in set")),
            }
        }
        Ok(Value::set(elems))
    }

    fn quoted(&mut self) -> Result<Value, ParseError> {
        self.expect(b'\'')?;
        let mut bytes = Vec::new();
        loop {
            match self.bump() {
                Some(b'\\') => match self.bump() {
                    Some(c) => bytes.push(c),
                    None => return Err(self.err("unterminated escape")),
                },
                Some(b'\'') => break,
                Some(c) => bytes.push(c),
                None => return Err(self.err("unterminated string")),
            }
        }
        let s = String::from_utf8(bytes).map_err(|_| self.err("invalid UTF-8 in string"))?;
        Ok(Value::Atom(Atom::str(&s)))
    }

    fn integer(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.input[start..self.pos]).expect("ascii digits");
        let n: i64 = text.parse().map_err(|_| self.err("invalid integer"))?;
        Ok(Value::Atom(Atom::int(n)))
    }

    fn bare(&mut self) -> Result<Value, ParseError> {
        let name = self.ident()?;
        Ok(Value::Atom(Atom::str(&name)))
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        if !self.peek().is_some_and(|c| c.is_ascii_alphabetic() || c == b'_') {
            return Err(self.err("expected identifier"));
        }
        while self.peek().is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_') {
            self.pos += 1;
        }
        Ok(std::str::from_utf8(&self.input[start..self.pos]).expect("ascii ident").to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_atoms() {
        assert_eq!(parse_value("42").unwrap(), Value::int(42));
        assert_eq!(parse_value("-7").unwrap(), Value::int(-7));
        assert_eq!(parse_value("paris").unwrap(), Value::str("paris"));
        assert_eq!(parse_value("'two words'").unwrap(), Value::str("two words"));
    }

    #[test]
    fn parses_collections() {
        assert_eq!(parse_value("{}").unwrap(), Value::empty_set());
        assert_eq!(
            parse_value("{1, 2, 1}").unwrap(),
            Value::set(vec![Value::int(1), Value::int(2)])
        );
        let v = parse_value("[A: 1, B: {x, y}]").unwrap();
        assert_eq!(v.to_string(), "[A: 1, B: {x, y}]");
    }

    #[test]
    fn nested_roundtrip() {
        let src = "{[name: ann, kids: {bo, cy}], [name: dee, kids: {}]}";
        let v = parse_value(src).unwrap();
        assert_eq!(parse_value(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn errors_are_positioned() {
        let e = parse_value("{1,").unwrap_err();
        assert!(e.position >= 3, "{e}");
        assert!(parse_value("[A 1]").is_err());
        assert!(parse_value("{1} x").is_err());
        assert!(parse_value("[A: 1, A: 2]").is_err());
    }

    #[test]
    fn escaped_quotes() {
        assert_eq!(parse_value("'a\\'b'").unwrap(), Value::str("a'b"));
    }

    #[test]
    fn depth_cap_is_a_structured_error() {
        // 100k-deep hostile nesting: must return TooDeep, not overflow.
        for open in ["{", "[a: "] {
            let hostile = open.repeat(100_000);
            let e = parse_value(&hostile).unwrap_err();
            assert!(e.is_too_deep(), "{e}");
            assert_eq!(e.kind, ParseErrorKind::TooDeep);
        }
        // The cap is configurable and exact: depth == cap is fine.
        let nested = format!("{}1{}", "{".repeat(8), "}".repeat(8));
        assert!(parse_value_with_depth(&nested, 9).is_ok());
        let e = parse_value_with_depth(&nested, 8).unwrap_err();
        assert!(e.is_too_deep(), "{e}");
        // Ordinary syntax errors stay classified as Syntax.
        assert_eq!(parse_value("{1,").unwrap_err().kind, ParseErrorKind::Syntax);
    }
}
