//! Interned atomic values and field names.
//!
//! The paper's domain `D` is an infinite set of atomic values. We represent
//! an atomic value as a small copyable handle ([`Atom`]) into a global
//! interner, so that equality tests — the only operation COQL may perform on
//! atoms — are integer comparisons, and tuples of atoms pack densely.
//!
//! Two kinds of payload are supported: symbolic names (strings) and 64-bit
//! integers. Integers intern to themselves conceptually; they are stored in
//! the same table so every atom is a uniform `u32` handle.
//!
//! Field names of records ([`Field`]) are interned separately: they belong
//! to the schema layer, not to the data domain, and keeping the two handle
//! types distinct prevents accidentally using a field label as a data value.

use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// Payload of an interned atom.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum AtomData {
    /// A symbolic constant such as `'paris'`.
    Str(String),
    /// An integer constant such as `42`.
    Int(i64),
}

struct Interner {
    map: HashMap<AtomData, u32>,
    items: Vec<AtomData>,
    /// Counter used by [`Atom::fresh`] to mint atoms outside any user
    /// namespace (used for indexes and frozen variables).
    fresh: u64,
}

impl Interner {
    fn new() -> Self {
        Interner { map: HashMap::new(), items: Vec::new(), fresh: 0 }
    }

    fn intern(&mut self, data: AtomData) -> u32 {
        if let Some(&id) = self.map.get(&data) {
            return id;
        }
        let id = u32::try_from(self.items.len()).expect("atom interner overflow");
        self.items.push(data.clone());
        self.map.insert(data, id);
        id
    }
}

fn global() -> &'static RwLock<Interner> {
    static GLOBAL: OnceLock<RwLock<Interner>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(Interner::new()))
}

/// An atomic value from the paper's infinite domain `D`.
///
/// Atoms are cheap to copy, compare, and hash. The total order compares the
/// interned payloads (integers before strings, each ordered naturally); it
/// exists only to keep set values in canonical, deterministic form and
/// carries no semantic meaning — COQL can only test atoms for equality.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Atom(u32);

impl PartialOrd for Atom {
    fn partial_cmp(&self, other: &Atom) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Atom {
    fn cmp(&self, other: &Atom) -> Ordering {
        if self.0 == other.0 {
            return Ordering::Equal;
        }
        let g = global().read().unwrap();
        let a = &g.items[self.0 as usize];
        let b = &g.items[other.0 as usize];
        match (a, b) {
            (AtomData::Int(x), AtomData::Int(y)) => x.cmp(y),
            (AtomData::Int(_), AtomData::Str(_)) => Ordering::Less,
            (AtomData::Str(_), AtomData::Int(_)) => Ordering::Greater,
            (AtomData::Str(x), AtomData::Str(y)) => x.cmp(y),
        }
    }
}

impl Atom {
    /// Interns a string constant.
    pub fn str(s: &str) -> Atom {
        Atom(global().write().unwrap().intern(AtomData::Str(s.to_string())))
    }

    /// Interns an integer constant.
    pub fn int(i: i64) -> Atom {
        Atom(global().write().unwrap().intern(AtomData::Int(i)))
    }

    /// Mints a globally fresh atom, guaranteed distinct from every atom
    /// interned so far and from every other fresh atom.
    ///
    /// Fresh atoms are the *indexes* of the paper's §5.1 and the frozen
    /// constants of canonical databases. The `tag` is only for display.
    pub fn fresh(tag: &str) -> Atom {
        let mut g = global().write().unwrap();
        let n = g.fresh;
        g.fresh += 1;
        let id = g.intern(AtomData::Str(format!("\u{27e8}{tag}#{n}\u{27e9}")));
        Atom(id)
    }

    /// The raw interner id; stable within a process run.
    pub fn id(self) -> u32 {
        self.0
    }

    /// Returns the string payload, if this atom was interned from a string.
    pub fn as_str(self) -> Option<String> {
        match &global().read().unwrap().items[self.0 as usize] {
            AtomData::Str(s) => Some(s.clone()),
            AtomData::Int(_) => None,
        }
    }

    /// Returns the integer payload, if this atom was interned from an integer.
    pub fn as_int(self) -> Option<i64> {
        match &global().read().unwrap().items[self.0 as usize] {
            AtomData::Int(i) => Some(*i),
            AtomData::Str(_) => None,
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &global().read().unwrap().items[self.0 as usize] {
            AtomData::Str(s) => {
                if is_bare(s) {
                    write!(f, "{s}")
                } else {
                    write!(f, "'{}'", s.replace('\'', "\\'"))
                }
            }
            AtomData::Int(i) => write!(f, "{i}"),
        }
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Whether a string can be printed without quotes.
fn is_bare(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == '\u{27e8}')
        && s.chars().all(|c| {
            c.is_ascii_alphanumeric() || c == '_' || c == '#' || c == '\u{27e8}' || c == '\u{27e9}'
        })
}

/// An interned record field label (`A`, `B`, … in the paper's
/// `[A1: x1; …; Ak: xk]` notation).
///
/// Ordered alphabetically by label; record fields are kept sorted by this
/// order so records compare structurally — and print deterministically —
/// regardless of the order fields were written or interned.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Field(u32);

impl PartialOrd for Field {
    fn partial_cmp(&self, other: &Field) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Field {
    fn cmp(&self, other: &Field) -> Ordering {
        if self.0 == other.0 {
            return Ordering::Equal;
        }
        let g = field_global().read().unwrap();
        g.items[self.0 as usize].cmp(&g.items[other.0 as usize])
    }
}

fn field_global() -> &'static RwLock<Interner> {
    static GLOBAL: OnceLock<RwLock<Interner>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(Interner::new()))
}

impl Field {
    /// Interns a field label.
    pub fn new(name: &str) -> Field {
        Field(field_global().write().unwrap().intern(AtomData::Str(name.to_string())))
    }

    /// The label this field was interned from.
    pub fn name(self) -> String {
        match &field_global().read().unwrap().items[self.0 as usize] {
            AtomData::Str(s) => s.clone(),
            AtomData::Int(i) => i.to_string(),
        }
    }

    /// The raw interner id.
    pub fn id(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl fmt::Debug for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        assert_eq!(Atom::str("a"), Atom::str("a"));
        assert_eq!(Atom::int(7), Atom::int(7));
        assert_ne!(Atom::str("a"), Atom::str("b"));
        assert_ne!(Atom::str("7"), Atom::int(7));
    }

    #[test]
    fn fresh_atoms_are_distinct() {
        let a = Atom::fresh("i");
        let b = Atom::fresh("i");
        assert_ne!(a, b);
        assert_ne!(a, Atom::str("i#0"));
    }

    #[test]
    fn payload_roundtrip() {
        assert_eq!(Atom::str("hello").as_str().as_deref(), Some("hello"));
        assert_eq!(Atom::int(-3).as_int(), Some(-3));
        assert_eq!(Atom::int(-3).as_str(), None);
        assert_eq!(Atom::str("x").as_int(), None);
    }

    #[test]
    fn display_quotes_non_bare_strings() {
        assert_eq!(Atom::str("abc").to_string(), "abc");
        assert_eq!(Atom::str("two words").to_string(), "'two words'");
        assert_eq!(Atom::int(42).to_string(), "42");
    }

    #[test]
    fn fields_intern_and_display() {
        let f = Field::new("Addr");
        assert_eq!(f, Field::new("Addr"));
        assert_ne!(f, Field::new("addr"));
        assert_eq!(f.to_string(), "Addr");
    }
}
