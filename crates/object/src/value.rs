//! Complex-object values.
//!
//! Following §3.1 of the paper (and refs \[1, 7\] therein), a *complex object*
//! is defined recursively as:
//!
//! 1. an atomic value `d` from an infinite domain `D`, or
//! 2. a record `[A1: x1; …; Ak: xk]` whose components are complex objects, or
//! 3. a finite set `{x1, …, xn}` of complex objects.
//!
//! [`Value`] keeps both records and sets in *canonical form* — fields sorted
//! by label, set elements sorted and deduplicated — so that structural
//! equality (`==`) coincides with semantic equality of complex objects.

use std::fmt;

use crate::atom::{Atom, Field};

/// A complex-object value in canonical form.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// An atomic value from the domain `D`.
    Atom(Atom),
    /// A record `[A1: x1; …; Ak: xk]`.
    Record(RecordValue),
    /// A finite set `{x1, …, xn}`.
    Set(SetValue),
}

impl Value {
    /// Convenience constructor for an atomic string value.
    pub fn str(s: &str) -> Value {
        Value::Atom(Atom::str(s))
    }

    /// Convenience constructor for an atomic integer value.
    pub fn int(i: i64) -> Value {
        Value::Atom(Atom::int(i))
    }

    /// Builds a record value; fields are sorted by label.
    ///
    /// Returns an error if a field label occurs twice.
    pub fn record(fields: Vec<(Field, Value)>) -> Result<Value, DuplicateField> {
        Ok(Value::Record(RecordValue::new(fields)?))
    }

    /// Builds a set value; elements are sorted and deduplicated.
    pub fn set(elems: Vec<Value>) -> Value {
        Value::Set(SetValue::new(elems))
    }

    /// The empty set `{}`.
    pub fn empty_set() -> Value {
        Value::Set(SetValue::new(Vec::new()))
    }

    /// The singleton set `{v}`.
    pub fn singleton(v: Value) -> Value {
        Value::Set(SetValue::new(vec![v]))
    }

    /// Returns the atom if this is an atomic value.
    pub fn as_atom(&self) -> Option<Atom> {
        match self {
            Value::Atom(a) => Some(*a),
            _ => None,
        }
    }

    /// Returns the record view if this is a record.
    pub fn as_record(&self) -> Option<&RecordValue> {
        match self {
            Value::Record(r) => Some(r),
            _ => None,
        }
    }

    /// Returns the set view if this is a set.
    pub fn as_set(&self) -> Option<&SetValue> {
        match self {
            Value::Set(s) => Some(s),
            _ => None,
        }
    }

    /// Whether any set occurring anywhere inside this value (including the
    /// value itself) is empty.
    ///
    /// The paper's equivalence results hinge on this property: when the
    /// answers of two queries are guaranteed not to contain empty sets, weak
    /// equivalence coincides with equivalence (§4).
    ///
    /// Iterative (explicit worklist), so it is safe on arbitrarily deep
    /// values — these walks are reachable from parsed (untrusted) input.
    pub fn contains_empty_set(&self) -> bool {
        let mut stack = vec![self];
        while let Some(v) = stack.pop() {
            match v {
                Value::Atom(_) => {}
                Value::Record(r) => stack.extend(r.iter().map(|(_, v)| v)),
                Value::Set(s) => {
                    if s.is_empty() {
                        return true;
                    }
                    stack.extend(s.iter());
                }
            }
        }
        false
    }

    /// The set-nesting depth: 0 for values with no sets, and the maximum
    /// number of set constructors on any root-to-leaf path otherwise.
    /// Iterative; safe on arbitrarily deep values.
    pub fn set_depth(&self) -> usize {
        let mut max = 0;
        let mut stack = vec![(self, 0usize)];
        while let Some((v, sets_above)) = stack.pop() {
            match v {
                Value::Atom(_) => {}
                Value::Record(r) => stack.extend(r.iter().map(|(_, v)| (v, sets_above))),
                Value::Set(s) => {
                    max = max.max(sets_above + 1);
                    stack.extend(s.iter().map(|v| (v, sets_above + 1)));
                }
            }
        }
        max
    }

    /// The structural depth of the value tree: 1 for an atom, 1 + the
    /// deepest child for records and sets. This bounds the recursion depth
    /// of every structural walk over the value (the recursive Hoare-order
    /// algorithms in [`crate::order`] check it before descending).
    /// Iterative; safe on arbitrarily deep values.
    pub fn structural_depth(&self) -> usize {
        let mut max = 1;
        let mut stack = vec![(self, 1usize)];
        while let Some((v, depth)) = stack.pop() {
            max = max.max(depth);
            match v {
                Value::Atom(_) => {}
                Value::Record(r) => stack.extend(r.iter().map(|(_, v)| (v, depth + 1))),
                Value::Set(s) => stack.extend(s.iter().map(|v| (v, depth + 1))),
            }
        }
        max
    }

    /// Total number of nodes (atoms, records, sets) in the value tree.
    /// Iterative; safe on arbitrarily deep values.
    pub fn size(&self) -> usize {
        let mut count = 0;
        let mut stack = vec![self];
        while let Some(v) = stack.pop() {
            count += 1;
            match v {
                Value::Atom(_) => {}
                Value::Record(r) => stack.extend(r.iter().map(|(_, v)| v)),
                Value::Set(s) => stack.extend(s.iter()),
            }
        }
        count
    }
}

/// Drains a value tree iteratively so dropping a deeply nested value never
/// recurses (the derived drop glue would overflow the stack on hostile
/// depths). Children are detached onto an explicit stack; each detached
/// node's own drop then sees only empty children.
fn drain_value_tree(mut stack: Vec<Value>) {
    while let Some(v) = stack.pop() {
        match v {
            Value::Atom(_) => {}
            Value::Record(mut r) => {
                stack.extend(std::mem::take(&mut r.fields).into_iter().map(|(_, v)| v))
            }
            Value::Set(mut s) => stack.extend(std::mem::take(&mut s.elems)),
        }
    }
}

impl Drop for RecordValue {
    fn drop(&mut self) {
        if self.fields.iter().any(|(_, v)| !matches!(v, Value::Atom(_))) {
            drain_value_tree(
                std::mem::take(&mut self.fields).into_iter().map(|(_, v)| v).collect(),
            );
        }
    }
}

impl Drop for SetValue {
    fn drop(&mut self) {
        if self.elems.iter().any(|v| !matches!(v, Value::Atom(_))) {
            drain_value_tree(std::mem::take(&mut self.elems));
        }
    }
}

/// Error returned when constructing a record with a repeated field label.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DuplicateField(pub Field);

impl fmt::Display for DuplicateField {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "duplicate record field `{}`", self.0)
    }
}

impl std::error::Error for DuplicateField {}

/// A record value: fields sorted by label, labels unique.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordValue {
    fields: Vec<(Field, Value)>,
}

impl RecordValue {
    /// Builds a record, sorting fields by label.
    pub fn new(mut fields: Vec<(Field, Value)>) -> Result<RecordValue, DuplicateField> {
        fields.sort_by_key(|(f, _)| *f);
        for w in fields.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(DuplicateField(w[0].0));
            }
        }
        Ok(RecordValue { fields })
    }

    /// Looks up a field by label.
    pub fn get(&self, field: Field) -> Option<&Value> {
        self.fields.binary_search_by_key(&field, |(f, _)| *f).ok().map(|i| &self.fields[i].1)
    }

    /// Iterates over `(label, value)` pairs in label order.
    pub fn iter(&self) -> impl Iterator<Item = &(Field, Value)> {
        self.fields.iter()
    }

    /// The sorted list of field labels.
    pub fn labels(&self) -> impl Iterator<Item = Field> + '_ {
        self.fields.iter().map(|(f, _)| *f)
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the record has no fields (the unit record `[]`).
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Whether `other` has exactly the same field labels.
    pub fn same_labels(&self, other: &RecordValue) -> bool {
        self.len() == other.len() && self.labels().zip(other.labels()).all(|(a, b)| a == b)
    }
}

/// A set value: elements sorted and deduplicated, so `==` is set equality.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SetValue {
    elems: Vec<Value>,
}

impl SetValue {
    /// Builds a set, sorting and deduplicating the elements.
    pub fn new(mut elems: Vec<Value>) -> SetValue {
        elems.sort();
        elems.dedup();
        SetValue { elems }
    }

    /// Iterates over the elements in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &Value> {
        self.elems.iter()
    }

    /// Number of (distinct) elements.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Membership test (binary search over the canonical order).
    pub fn contains(&self, v: &Value) -> bool {
        self.elems.binary_search(v).is_ok()
    }

    /// Subset test under *equality* (not the Hoare order).
    pub fn is_subset(&self, other: &SetValue) -> bool {
        self.elems.iter().all(|e| other.contains(e))
    }

    /// Union of two sets.
    pub fn union(&self, other: &SetValue) -> SetValue {
        let mut elems = self.elems.clone();
        elems.extend(other.elems.iter().cloned());
        SetValue::new(elems)
    }

    /// Consumes the set, returning its canonical element vector.
    pub fn into_elems(mut self) -> Vec<Value> {
        std::mem::take(&mut self.elems)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Atom(a) => write!(f, "{a}"),
            Value::Record(r) => {
                write!(f, "[")?;
                for (i, (name, v)) in r.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{name}: {v}")?;
                }
                write!(f, "]")
            }
            Value::Set(s) => {
                write!(f, "{{")?;
                for (i, v) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(name: &str) -> Field {
        Field::new(name)
    }

    #[test]
    fn sets_are_canonical() {
        let a = Value::set(vec![Value::int(2), Value::int(1), Value::int(2)]);
        let b = Value::set(vec![Value::int(1), Value::int(2)]);
        assert_eq!(a, b);
        assert_eq!(a.as_set().unwrap().len(), 2);
    }

    #[test]
    fn records_sort_fields() {
        let r1 = Value::record(vec![(f("B"), Value::int(2)), (f("A"), Value::int(1))]).unwrap();
        let r2 = Value::record(vec![(f("A"), Value::int(1)), (f("B"), Value::int(2))]).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn duplicate_fields_rejected() {
        let err = Value::record(vec![(f("A"), Value::int(1)), (f("A"), Value::int(2))]);
        assert_eq!(err.unwrap_err(), DuplicateField(f("A")));
    }

    #[test]
    fn record_lookup() {
        let r = Value::record(vec![(f("A"), Value::int(1)), (f("B"), Value::str("x"))]).unwrap();
        let r = r.as_record().unwrap();
        assert_eq!(r.get(f("A")), Some(&Value::int(1)));
        assert_eq!(r.get(f("C")), None);
    }

    #[test]
    fn empty_set_detection_is_deep() {
        let v = Value::set(vec![Value::record(vec![(f("A"), Value::empty_set())]).unwrap()]);
        assert!(v.contains_empty_set());
        let w = Value::set(vec![
            Value::record(vec![(f("A"), Value::singleton(Value::int(1)))]).unwrap()
        ]);
        assert!(!w.contains_empty_set());
        assert!(Value::empty_set().contains_empty_set());
    }

    #[test]
    fn set_depth_counts_nesting() {
        assert_eq!(Value::int(1).set_depth(), 0);
        assert_eq!(Value::singleton(Value::int(1)).set_depth(), 1);
        let nested = Value::singleton(Value::singleton(Value::int(1)));
        assert_eq!(nested.set_depth(), 2);
        let rec =
            Value::record(vec![(f("A"), Value::int(1)), (f("B"), Value::singleton(Value::int(2)))])
                .unwrap();
        assert_eq!(rec.set_depth(), 1);
    }

    #[test]
    fn subset_and_union() {
        let s1 = SetValue::new(vec![Value::int(1)]);
        let s2 = SetValue::new(vec![Value::int(1), Value::int(2)]);
        assert!(s1.is_subset(&s2));
        assert!(!s2.is_subset(&s1));
        assert_eq!(s1.union(&s2), s2);
    }

    #[test]
    fn display_is_readable() {
        let v = Value::record(vec![
            (f("name"), Value::str("ann")),
            (f("kids"), Value::set(vec![Value::str("bo")])),
        ])
        .unwrap();
        assert_eq!(v.to_string(), "[kids: {bo}, name: ann]");
    }

    #[test]
    fn structural_depth_counts_every_constructor() {
        assert_eq!(Value::int(1).structural_depth(), 1);
        assert_eq!(Value::singleton(Value::int(1)).structural_depth(), 2);
        let rec = Value::record(vec![(f("A"), Value::singleton(Value::int(1)))]).unwrap();
        assert_eq!(rec.structural_depth(), 3);
        assert_eq!(Value::empty_set().structural_depth(), 1);
    }

    #[test]
    fn deep_values_walk_and_drop_without_recursion() {
        // 200k alternating set/record constructors: every structural walk
        // and the drop itself must be iterative, or this test aborts with
        // a stack overflow.
        let mut v = Value::int(7);
        for i in 0..200_000 {
            v = if i % 2 == 0 {
                Value::singleton(v)
            } else {
                Value::record(vec![(f("A"), v)]).unwrap()
            };
        }
        assert_eq!(v.structural_depth(), 200_001);
        assert_eq!(v.size(), 200_001);
        assert_eq!(v.set_depth(), 100_000);
        assert!(!v.contains_empty_set());
        drop(v);
    }
}
