//! Intra-request parallelism: a small std-only work-stealing pool for the
//! decision kernels (DESIGN.md §14).
//!
//! The kernels are worst-case exponential, so one hard instance can pin a
//! core while the rest of the machine idles. This module lets a kernel
//! split its *top-level* branch points — the MRV root atom's candidate
//! list in the homomorphism search, the 2^m emptiness patterns in tree
//! containment — across a scoped pool of workers:
//!
//! * work is dealt round-robin into per-worker chunked deques; an idle
//!   worker pops its own queue from the front and steals from a sibling's
//!   back, so chunks stay contiguous per worker and steals are rare;
//! * [`Feeder::stop`] drains every queue at once (first-success or
//!   first-refutation cancellation);
//! * workers run inside [`std::thread::scope`], so they are structurally
//!   joined before the kernel returns — no detached threads, ever;
//! * nested parallelism is suppressed: code running on a pool worker sees
//!   [`in_worker`] and must keep its own sub-searches sequential.
//!
//! The pool size is process-global ([`set_kernel_threads`]; `0` = auto)
//! and auto mode is capped at half the machine so intra-request
//! parallelism never starves a serving layer's connection worker pool.

use std::cell::Cell;
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Hard cap on kernel threads, even when configured explicitly.
pub const MAX_KERNEL_THREADS: usize = 64;

/// Process-global kernel thread count; `0` means auto.
static KERNEL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set while the current thread is a pool worker (suppresses nesting).
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
    /// High-water mark of threads engaged by kernels on this thread since
    /// the last [`take_engaged`] (feeds `explain.kernel.threads_used`).
    static ENGAGED: Cell<usize> = const { Cell::new(0) };
}

/// Sets the process-global kernel thread count (`0` = auto).
pub fn set_kernel_threads(n: usize) {
    KERNEL_THREADS.store(n.min(MAX_KERNEL_THREADS), Ordering::Relaxed);
}

/// The configured kernel thread count (`0` = auto).
pub fn kernel_threads() -> usize {
    KERNEL_THREADS.load(Ordering::Relaxed)
}

/// The number of threads a kernel should actually use right now.
///
/// Returns `1` on a pool worker (no nested fan-out). In auto mode, uses
/// half the available parallelism, clamped to `1..=8`, so the serving
/// layer's connection workers keep cores of their own.
pub fn effective_threads() -> usize {
    if in_worker() {
        return 1;
    }
    let configured = kernel_threads();
    if configured != 0 {
        return configured.clamp(1, MAX_KERNEL_THREADS);
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    (cores / 2).clamp(1, 8)
}

/// Whether the current thread is a pool worker.
pub fn in_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// Records that a kernel on this thread engaged `n` threads (high-water).
pub fn note_engaged(n: usize) {
    ENGAGED.with(|e| e.set(e.get().max(n)));
}

/// Reads and resets this thread's engaged-threads high-water mark.
pub fn take_engaged() -> usize {
    ENGAGED.with(|e| e.replace(0))
}

/// Aggregate statistics of one [`run_workers`] invocation.
#[derive(Clone, Copy, Debug, Default)]
pub struct ParStats {
    /// Chunks of the item space dispatched to workers.
    pub branches: u64,
    /// Chunks obtained by stealing from a sibling's deque.
    pub steals: u64,
    /// Number of workers that ran.
    pub threads: usize,
}

/// The shared work source of one parallel region: per-worker chunked
/// deques over an item index space, plus a cooperative stop flag.
pub struct Feeder {
    queues: Vec<Mutex<VecDeque<Range<usize>>>>,
    stop: AtomicBool,
    steals: AtomicU64,
    branches: AtomicU64,
}

impl Feeder {
    fn new(threads: usize, items: usize, chunk: usize) -> Feeder {
        let chunk = chunk.max(1);
        let mut queues: Vec<VecDeque<Range<usize>>> =
            (0..threads).map(|_| VecDeque::new()).collect();
        let mut start = 0;
        let mut turn = 0;
        while start < items {
            let end = (start + chunk).min(items);
            queues[turn % threads].push_back(start..end);
            start = end;
            turn += 1;
        }
        Feeder {
            queues: queues.into_iter().map(Mutex::new).collect(),
            stop: AtomicBool::new(false),
            steals: AtomicU64::new(0),
            branches: AtomicU64::new(0),
        }
    }

    /// The next chunk for worker `me`: its own deque front first, then a
    /// steal from a sibling's back. `None` once the space is drained or
    /// [`Feeder::stop`] was called.
    pub fn next(&self, me: usize) -> Option<Range<usize>> {
        if self.stopped() {
            return None;
        }
        let own = self.queues[me].lock().expect("feeder queue poisoned").pop_front();
        if let Some(r) = own {
            self.branches.fetch_add(1, Ordering::Relaxed);
            return Some(r);
        }
        let n = self.queues.len();
        for offset in 1..n {
            let victim = (me + offset) % n;
            let stolen = self.queues[victim].lock().expect("feeder queue poisoned").pop_back();
            if let Some(r) = stolen {
                self.steals.fetch_add(1, Ordering::Relaxed);
                self.branches.fetch_add(1, Ordering::Relaxed);
                return Some(r);
            }
        }
        None
    }

    /// Drains all remaining work (cooperative cancellation of siblings).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Whether [`Feeder::stop`] has been called.
    pub fn stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }
}

/// Runs `threads` scoped workers over the item space `0..items`, dealt in
/// chunks of `chunk`. Each worker repeatedly calls [`Feeder::next`] with
/// its own index and processes the ranges it receives; its return value is
/// collected in worker order.
///
/// The calling thread only coordinates (it spawns and joins; it does not
/// take work), so kernel counters and budget state on the caller are
/// untouched while the region runs. Workers are flagged with
/// [`in_worker`], and the scope guarantees every worker has joined before
/// this returns — a panicking worker is resumed on the caller.
pub fn run_workers<R, F>(
    threads: usize,
    items: usize,
    chunk: usize,
    worker: F,
) -> (Vec<R>, ParStats)
where
    R: Send,
    F: Fn(usize, &Feeder) -> R + Sync,
{
    let threads = threads.max(1);
    let feeder = Feeder::new(threads, items, chunk);
    let mut results = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let feeder = &feeder;
        let worker = &worker;
        let handles: Vec<_> = (0..threads)
            .map(|me| {
                scope.spawn(move || {
                    IN_WORKER.with(|w| w.set(true));
                    worker(me, feeder)
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(r) => results.push(r),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    let stats = ParStats {
        branches: feeder.branches.load(Ordering::Relaxed),
        steals: feeder.steals.load(Ordering::Relaxed),
        threads,
    };
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn all_items_are_processed_exactly_once() {
        let seen = AtomicUsize::new(0);
        let (results, stats) = run_workers(4, 1000, 7, |me, feeder| {
            let mut mine = 0usize;
            while let Some(range) = feeder.next(me) {
                mine += range.len();
            }
            seen.fetch_add(mine, Ordering::Relaxed);
            mine
        });
        assert_eq!(seen.load(Ordering::Relaxed), 1000);
        assert_eq!(results.iter().sum::<usize>(), 1000);
        assert_eq!(stats.threads, 4);
        assert!(stats.branches >= 1000 / 7);
    }

    #[test]
    fn stop_drains_remaining_work() {
        let (results, _) = run_workers(2, 100_000, 1, |me, feeder| {
            let mut mine = 0usize;
            while let Some(range) = feeder.next(me) {
                mine += range.len();
                feeder.stop();
            }
            mine
        });
        let total: usize = results.iter().sum();
        assert!(total < 100_000, "stop did not cancel remaining chunks");
        assert!(total >= 1);
    }

    #[test]
    fn workers_see_in_worker_and_parent_does_not() {
        assert!(!in_worker());
        let (results, stats) = run_workers(3, 3, 1, |me, feeder| {
            while feeder.next(me).is_some() {}
            in_worker()
        });
        assert!(results.iter().all(|&w| w));
        assert!(!in_worker());
        assert_eq!(stats.threads, 3);
        assert_eq!(stats.branches, 3);
    }

    #[test]
    fn engaged_high_water_round_trips() {
        let _ = take_engaged();
        note_engaged(3);
        note_engaged(2);
        assert_eq!(take_engaged(), 3);
        assert_eq!(take_engaged(), 0);
    }

    #[test]
    fn configured_threads_round_trip() {
        let prev = kernel_threads();
        set_kernel_threads(5);
        assert_eq!(kernel_threads(), 5);
        assert_eq!(effective_threads(), 5);
        set_kernel_threads(0);
        assert!(effective_threads() >= 1);
        set_kernel_threads(prev);
    }
}
