//! Type checking for COQL.
//!
//! COQL is typed over complex-object types. A [`CoqlSchema`] declares the
//! (set) type of every input relation; [`type_check`] computes an
//! expression's type or reports a positioned error. Equality conditions are
//! restricted to atomic types — the paper's crucial restriction that keeps
//! the language conjunctive (set equality would express difference \[7\]).

use std::collections::BTreeMap;
use std::fmt;

use co_cq::{RelName, Schema, Var};
use co_object::Type;

use crate::ast::Expr;

/// Relation name → (set) type of the relation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CoqlSchema {
    relations: BTreeMap<RelName, Type>,
}

impl CoqlSchema {
    /// The empty schema.
    pub fn new() -> CoqlSchema {
        CoqlSchema::default()
    }

    /// Declares a relation; its type must be a set type.
    pub fn add(&mut self, name: &str, ty: Type) {
        assert!(matches!(ty, Type::Set(_)), "relation `{name}` must have a set type");
        self.relations.insert(RelName::new(name), ty);
    }

    /// Builder-style [`CoqlSchema::add`].
    pub fn with(mut self, name: &str, ty: Type) -> CoqlSchema {
        self.add(name, ty);
        self
    }

    /// Imports a flat relational schema: every relation becomes a set of
    /// records of atoms.
    pub fn from_flat(schema: &Schema) -> CoqlSchema {
        let mut s = CoqlSchema::new();
        for rel in schema.iter() {
            s.relations.insert(rel.name, Type::flat_relation(&rel.attrs));
        }
        s
    }

    /// The type of a relation.
    pub fn relation(&self, name: RelName) -> Option<&Type> {
        self.relations.get(&name)
    }

    /// Whether every declared relation is flat (§5's standing assumption
    /// for the containment algorithm).
    pub fn is_flat(&self) -> bool {
        self.relations.values().all(Type::is_flat_relation)
    }

    /// Iterates over declared relations in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&RelName, &Type)> {
        self.relations.iter()
    }
}

/// A COQL type error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TypeError {
    /// Human-readable description.
    pub message: String,
}

impl TypeError {
    fn new(message: impl Into<String>) -> TypeError {
        TypeError { message: message.into() }
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error: {}", self.message)
    }
}

impl std::error::Error for TypeError {}

/// Computes the type of a closed COQL expression.
pub fn type_check(expr: &Expr, schema: &CoqlSchema) -> Result<Type, TypeError> {
    infer(expr, schema, &BTreeMap::new())
}

/// Computes the type of an expression under a variable typing environment
/// (used by the algebra translations, whose bodies have free variables).
pub fn type_check_with_env(
    expr: &Expr,
    schema: &CoqlSchema,
    env: &BTreeMap<Var, Type>,
) -> Result<Type, TypeError> {
    infer(expr, schema, env)
}

fn infer(expr: &Expr, schema: &CoqlSchema, env: &BTreeMap<Var, Type>) -> Result<Type, TypeError> {
    match expr {
        Expr::Const(_) => Ok(Type::Atom),
        Expr::Var(v) => {
            env.get(v).cloned().ok_or_else(|| TypeError::new(format!("unbound variable `{v}`")))
        }
        Expr::Rel(r) => schema
            .relation(*r)
            .cloned()
            .ok_or_else(|| TypeError::new(format!("unknown relation `{r}`"))),
        Expr::Record(fields) => {
            let mut out = Vec::with_capacity(fields.len());
            for (name, e) in fields {
                out.push((*name, infer(e, schema, env)?));
            }
            let mut sorted = out.clone();
            sorted.sort_by_key(|(f, _)| *f);
            for w in sorted.windows(2) {
                if w[0].0 == w[1].0 {
                    return Err(TypeError::new(format!("duplicate record field `{}`", w[0].0)));
                }
            }
            Ok(Type::Record(sorted))
        }
        Expr::Proj(e, field) => {
            let t = infer(e, schema, env)?;
            t.field(*field)
                .cloned()
                .ok_or_else(|| TypeError::new(format!("no field `{field}` in type {t}")))
        }
        Expr::Singleton(e) => Ok(Type::set(infer(e, schema, env)?)),
        Expr::EmptySet(elem) => Ok(Type::set(elem.clone())),
        Expr::Flatten(e) => {
            let t = infer(e, schema, env)?;
            match t {
                Type::Set(inner) => match *inner {
                    Type::Set(elem) => Ok(Type::Set(elem)),
                    Type::Bottom => Ok(Type::set(Type::Bottom)),
                    other => Err(TypeError::new(format!(
                        "flatten expects a set of sets, found {{{other}}}"
                    ))),
                },
                other => Err(TypeError::new(format!("flatten expects a set, found {other}"))),
            }
        }
        Expr::Select { head, bindings, conds } => {
            let mut env = env.clone();
            for (v, e) in bindings {
                let t = infer(e, schema, &env)?;
                match t {
                    Type::Set(elem) => {
                        env.insert(*v, *elem);
                    }
                    other => {
                        return Err(TypeError::new(format!(
                            "generator `{v}` ranges over non-set type {other}"
                        )))
                    }
                }
            }
            for (a, b) in conds {
                let ta = infer(a, schema, &env)?;
                let tb = infer(b, schema, &env)?;
                let atomic = |t: &Type| matches!(t, Type::Atom | Type::Bottom);
                if !atomic(&ta) || !atomic(&tb) {
                    return Err(TypeError::new(format!(
                        "equality over non-atomic types {ta} = {tb} (COQL restricts \
                         conditions to atomic equalities)"
                    )));
                }
            }
            Ok(Type::set(infer(head, schema, &env)?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_object::Field;

    fn schema() -> CoqlSchema {
        CoqlSchema::new()
            .with("R", Type::flat_relation(&[Field::new("A"), Field::new("B")]))
            .with("S", Type::set(Type::Atom))
    }

    #[test]
    fn select_types_head_under_bindings() {
        let e = Expr::Select {
            head: Box::new(Expr::var("x").proj("A")),
            bindings: vec![(Var::new("x"), Expr::rel("R"))],
            conds: vec![],
        };
        assert_eq!(type_check(&e, &schema()).unwrap(), Type::set(Type::Atom));
    }

    #[test]
    fn nested_select_produces_nested_type() {
        let inner = Expr::Select {
            head: Box::new(Expr::var("y").proj("B")),
            bindings: vec![(Var::new("y"), Expr::rel("R"))],
            conds: vec![(Expr::var("y").proj("A"), Expr::var("x").proj("A"))],
        };
        let outer = Expr::Select {
            head: Box::new(Expr::record(vec![("a", Expr::var("x").proj("A")), ("g", inner)])),
            bindings: vec![(Var::new("x"), Expr::rel("R"))],
            conds: vec![],
        };
        let t = type_check(&outer, &schema()).unwrap();
        assert_eq!(t.set_depth(), 2);
    }

    #[test]
    fn set_equality_is_rejected() {
        // where x = S  (set-typed equality) must be a type error.
        let e = Expr::Select {
            head: Box::new(Expr::var("x")),
            bindings: vec![(Var::new("x"), Expr::rel("S"))],
            conds: vec![(Expr::rel("S"), Expr::rel("S"))],
        };
        let err = type_check(&e, &schema()).unwrap_err();
        assert!(err.message.contains("atomic"), "{err}");
    }

    #[test]
    fn generator_over_non_set_rejected() {
        let e = Expr::Select {
            head: Box::new(Expr::var("x")),
            bindings: vec![(Var::new("x"), Expr::int(3))],
            conds: vec![],
        };
        assert!(type_check(&e, &schema()).is_err());
    }

    #[test]
    fn unbound_and_unknown_are_errors() {
        assert!(type_check(&Expr::var("nope"), &schema()).is_err());
        assert!(type_check(&Expr::rel("T"), &schema()).is_err());
        let e = Expr::var("x").proj("Z");
        assert!(type_check(&e, &schema()).is_err());
    }

    #[test]
    fn flatten_typing() {
        let e = Expr::rel("R").singleton().flatten();
        assert_eq!(
            type_check(&e, &schema()).unwrap(),
            schema().relation(RelName::new("R")).unwrap().clone()
        );
        assert!(type_check(&Expr::rel("S").flatten(), &schema()).is_err());
        // flatten({}) is the (bottom-element) empty set of sets.
        let t = type_check(&Expr::EmptySet(Type::Bottom).flatten(), &schema()).unwrap();
        assert_eq!(t, Type::set(Type::Bottom));
    }

    #[test]
    fn flat_schema_import() {
        let flat = Schema::with_relations(&[("R", &["A", "B"])]);
        let s = CoqlSchema::from_flat(&flat);
        assert!(s.is_flat());
        assert!(s.relation(RelName::new("R")).is_some());
    }
}
