//! Static empty-set-freedom analysis.
//!
//! §4 of the paper: when the answers of two queries are *guaranteed not to
//! contain empty sets*, weak equivalence coincides with equivalence and the
//! exponential component of the containment procedure disappears (both
//! containment and equivalence become NP-complete). This module provides
//! the conservative syntactic check that licenses those fast paths.
//!
//! A normal-form set node can produce an empty set at runtime when its
//! comprehension can have no satisfying rows for some ambient binding — in
//! particular any *inner* comprehension that adds generators or conditions
//! beyond its parent's. The analysis is conservative: [`EmptySetStatus::Free`]
//! is a guarantee; [`EmptySetStatus::MayContain`] only means we could not
//! prove freedom.

use crate::normalize::{Comprehension, NormalValue};

/// Result of the analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EmptySetStatus {
    /// No database can make any set inside the answer empty — the paper's
    /// §4 hypothesis holds (`nest`-style queries are the canonical case).
    Free,
    /// An inner set may be empty on some database (or the analysis could
    /// not prove otherwise).
    MayContain,
}

/// Analyzes a normal-form query.
///
/// The root set itself is allowed to be empty — the paper's condition is
/// about empty sets *contained in* the answer, i.e. inner set values.
pub fn empty_set_status(root: &Comprehension) -> EmptySetStatus {
    if inner_sets_free(&root.head, root) {
        EmptySetStatus::Free
    } else {
        EmptySetStatus::MayContain
    }
}

/// Whether every set node inside `nv` is provably non-empty whenever its
/// ambient element exists.
fn inner_sets_free(nv: &NormalValue, parent: &Comprehension) -> bool {
    match nv {
        NormalValue::Atom(_) => true,
        NormalValue::Record(fields) => fields.iter().all(|(_, v)| inner_sets_free(v, parent)),
        NormalValue::Set(c) => {
            if c.unsat {
                // A statically-empty inner set is an empty set in every
                // answer element: definitely not free.
                return false;
            }
            // The inner comprehension is guaranteed non-empty iff it is
            // *implied* by the ambient context: no generators or conditions
            // of its own beyond the parent's. Two sound cases:
            //  (1) no own generators and no own conditions (a singleton);
            //  (2) its generators and conditions are syntactically a subset
            //      of the parent's (the nest-translation shape: the inner
            //      select re-ranges over the parent's generators with the
            //      parent's conditions plus equalities already implied by a
            //      shared binding — here we accept only the exact-subset
            //      case, which the `nest` translation produces via the
            //      self-join trick with the parent's own row as witness).
            let own_gens_implied =
                c.gens.is_empty() || c.gens.iter().all(|g| parent.gens.contains(g));
            let own_conds_implied = c.conds.iter().all(|eq| parent.conds.contains(eq));
            let self_ok = own_gens_implied && own_conds_implied;
            // Witness case for the nest shape: the inner comprehension has
            // exactly one generator over a relation that some parent
            // generator also ranges over, and every condition equates an
            // inner column with a parent column of the same attribute
            // (so the parent's own row always witnesses membership).
            let nest_ok = !self_ok && nest_shape_witnessed(c, parent);
            (self_ok || nest_ok) && inner_sets_free(&c.head, c)
        }
    }
}

/// Recognizes the `nest` translation shape: inner generators each range
/// over a relation some parent generator uses, and each condition is
/// `inner.col = outer.col` on the same attribute for a matched pair.
fn nest_shape_witnessed(c: &Comprehension, parent: &Comprehension) -> bool {
    use crate::normalize::AtomTerm;
    // Try to match each inner generator to a parent generator over the
    // same relation (injectively, greedy by order).
    let mut matched: Vec<(co_cq::Var, co_cq::Var)> = Vec::new();
    let mut used = vec![false; parent.gens.len()];
    for (iv, ir) in &c.gens {
        let Some(pos) =
            parent.gens.iter().enumerate().position(|(i, (_, pr))| !used[i] && pr == ir)
        else {
            return false;
        };
        used[pos] = true;
        matched.push((*iv, parent.gens[pos].0));
    }
    // Every condition must be `inner.f = outer-term` where substituting the
    // matched parent variable for the inner variable makes it a tautology
    // or a parent condition.
    c.conds.iter().all(|(a, b)| {
        let subst = |t: &AtomTerm| match t {
            AtomTerm::Col { var, field } => match matched.iter().find(|(iv, _)| iv == var) {
                Some((_, pv)) => AtomTerm::Col { var: *pv, field: *field },
                None => t.clone(),
            },
            AtomTerm::Const(x) => AtomTerm::Const(*x),
        };
        let sa = subst(a);
        let sb = subst(b);
        sa == sb
            || parent.conds.contains(&(sa.clone(), sb.clone()))
            || parent.conds.contains(&(sb, sa))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::normalize;
    use crate::parse::parse_coql;
    use crate::types::CoqlSchema;
    use co_cq::Schema;

    fn schema() -> CoqlSchema {
        CoqlSchema::from_flat(&Schema::with_relations(&[("R", &["A", "B"]), ("S", &["C"])]))
    }

    fn status(src: &str) -> EmptySetStatus {
        let e = parse_coql(src).unwrap();
        let c = normalize(&e, &schema()).unwrap();
        empty_set_status(&c)
    }

    #[test]
    fn flat_queries_are_free() {
        assert_eq!(status("select x.B from x in R"), EmptySetStatus::Free);
        assert_eq!(status("select [a: x.A] from x in R where x.A = 1"), EmptySetStatus::Free);
    }

    #[test]
    fn singleton_heads_are_free() {
        assert_eq!(status("select {x.A} from x in R"), EmptySetStatus::Free);
    }

    #[test]
    fn literal_empty_set_is_flagged() {
        assert_eq!(status("select [g: {}] from x in R"), EmptySetStatus::MayContain);
    }

    #[test]
    fn nest_translation_is_free() {
        // The nest shape: group by x.A with x itself witnessing membership.
        let src = "select [a: x.A, g: (select y.B from y in R where y.A = x.A)] from x in R";
        assert_eq!(status(src), EmptySetStatus::Free);
    }

    #[test]
    fn outernest_with_foreign_filter_may_contain() {
        // Inner select joins against a different relation: can be empty.
        let src = "select [a: x.A, g: (select y.C from y in S where y.C = x.B)] from x in R";
        assert_eq!(status(src), EmptySetStatus::MayContain);
    }
}
