//! # co-lang — COQL, the conjunctive query language for complex objects
//!
//! §3.1 and Appendix A of *Levy & Suciu, PODS 1997*: **COQL** (conjunctive
//! idealized OQL) is the fragment of OQL with `select‥from‥where` over
//! atomic equalities, `flatten`, singletons `{E}`, and the empty set `{}`.
//! It is the complex-object analogue of conjunctive queries: a conservative
//! extension of them \[43\], and equivalent to natural fragments of the
//! Abiteboul–Beeri and Thomas–Fischer algebras (see `co-algebra`).
//!
//! This crate provides the language end to end:
//!
//! * [`Expr`] — the AST, with builders and a pretty-printer;
//! * [`parse_coql`] — a concrete syntax;
//! * [`type_check`] over a [`CoqlSchema`] of complex-object relation types;
//! * [`evaluate`] — the reference comprehension semantics over a
//!   [`CoDatabase`] of complex objects;
//! * [`normalize()`] — rewriting into comprehension normal form (one
//!   conjunctive query per set node), the first half of the paper's §5
//!   flattening, with [`eval_comprehension`] as its semantic cross-check.
//!
//! ```
//! use co_lang::{parse_coql, evaluate, CoDatabase};
//! use co_object::parse_value;
//!
//! let db = CoDatabase::new()
//!     .with("R", parse_value("{[A: 1, B: 10], [A: 1, B: 11], [A: 2, B: 20]}").unwrap());
//! let q = parse_coql(
//!     "select [a: x.A, g: (select y.B from y in R where y.A = x.A)] from x in R",
//! ).unwrap();
//! let result = evaluate(&q, &db).unwrap();
//! assert_eq!(result.to_string(), "{[a: 1, g: {10, 11}], [a: 2, g: {20}]}");
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod canon;
pub mod emptiness;
pub mod eval;
pub mod normalize;
pub mod parse;
pub mod types;

pub use ast::Expr;
pub use canon::canonical_query;
pub use emptiness::{empty_set_status, EmptySetStatus};
pub use eval::{evaluate, evaluate_with_env, CoDatabase, EvalError};
pub use normalize::{
    eval_comprehension, normalize, AtomTerm, Comprehension, NormError, NormalValue,
};
pub use parse::{
    parse_coql, parse_coql_with_depth, parse_union_coql, parse_union_coql_with_depth, ParseError,
    ParseErrorKind, MAX_UNION_DISJUNCTS,
};
pub use types::{type_check, type_check_with_env, CoqlSchema, TypeError};
