//! Canonical serialization of comprehension normal forms.
//!
//! Two COQL queries that differ only in bound-variable names, in the order
//! of independent `from` bindings, or in the order (or duplication) of
//! `where` conjuncts have the same meaning — and, after [`normalize`], the
//! same normal form up to α-renaming and generator/condition permutation.
//! [`canonical_query`] maps a [`Comprehension`] to a string that is
//! invariant under exactly those presentational differences, so it can be
//! hashed into a cache key: syntactically distinct but trivially-equivalent
//! requests then share one memo entry (the `co-service` crate's
//! fingerprints are hashes of this string).
//!
//! The walk is purely syntactic: equal canonical strings imply equivalent
//! queries, but equivalent queries may canonicalize differently (the full
//! equivalence problem is what the decision procedures are for).
//!
//! ## How generators are ordered
//!
//! Generator variables are the only binding construct in normal form, so
//! canonicalization reduces to choosing a canonical *order* for each
//! comprehension's generators, then numbering all generators `$0, $1, …`
//! in that order. The order is chosen by **signature refinement** (a
//! Weisfeiler–Leman-style color refinement on the query's join graph):
//! each generator starts with its relation name as its signature, and each
//! round folds in the multiset of constraints it participates in —
//! condition occurrences (with the other side's current signature) and
//! head occurrences (with their structural path). Generators left tied
//! after refinement are either genuinely symmetric (any order yields the
//! same string) or pathological self-join twins, where we fall back to
//! source order and may miss a cache hit — never produce a false merge,
//! since the serialization always records the full structure.

use std::collections::BTreeMap;

use co_cq::Var;

use crate::normalize::{AtomTerm, Comprehension, NormalValue};

/// Canonical serialization of a normal form: α-renaming of generators,
/// reordering of independent generators, and reordering or duplication of
/// conditions all map to the same string. See the module docs for scope.
pub fn canonical_query(c: &Comprehension) -> String {
    let mut out = String::new();
    let mut counter = 0usize;
    ser_comp(c, &BTreeMap::new(), &mut counter, &mut out);
    out
}

/// How a variable occurrence is bound at a point in the walk.
#[derive(Clone, Debug)]
enum Binding {
    /// Bound by the comprehension currently being canonicalized.
    Local,
    /// Bound by an enclosing comprehension, already named canonically.
    Ambient(String),
    /// Bound by a nested comprehension (not yet canonicalized); carries
    /// the relation name, which is all its signature contributes.
    Inner(String),
}

/// One occurrence of a local generator in a condition.
struct CondOcc {
    /// Structural path of the comprehension holding the condition.
    path: u64,
    /// The field projected from the local generator on this side.
    my_field: Option<String>,
    /// The other side of the equality, abstracted for signatures.
    other: OtherSide,
}

enum OtherSide {
    Const(String),
    Col { var: Var, field: Option<String> },
}

/// One occurrence of a local generator in a head position.
struct HeadOcc {
    path: u64,
    field: Option<String>,
}

/// FNV-1a over a byte slice, the signature mixing primitive.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn mix(h: u64, more: u64) -> u64 {
    let mut x = h ^ more.wrapping_mul(0x9e3779b97f4a7c15);
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51afd7ed558ccd);
    x ^ (x >> 29)
}

fn field_str(f: &Option<String>) -> &str {
    f.as_deref().unwrap_or("")
}

/// Collects every condition and head occurrence of the given comprehension's
/// *local* generators across the whole subtree, tracking shadowing: a
/// nested comprehension rebinding the same `Var` hides the outer generator
/// inside its scope.
fn collect_occurrences(
    c: &Comprehension,
    binds: &BTreeMap<Var, Binding>,
    path: u64,
    conds: &mut BTreeMap<Var, Vec<CondOcc>>,
    heads: &mut BTreeMap<Var, Vec<HeadOcc>>,
) {
    for (a, b) in &c.conds {
        for (mine, other) in [(a, b), (b, a)] {
            let AtomTerm::Col { var, field } = mine else { continue };
            if !matches!(binds.get(var), Some(Binding::Local)) {
                continue;
            }
            let other = match other {
                AtomTerm::Const(atom) => OtherSide::Const(atom.to_string()),
                AtomTerm::Col { var, field } => {
                    OtherSide::Col { var: *var, field: field.map(|f| f.name()) }
                }
            };
            conds.entry(*var).or_default().push(CondOcc {
                path,
                my_field: field.map(|f| f.name()),
                other,
            });
        }
    }
    collect_head(&c.head, binds, mix(path, fnv64(b"head")), conds, heads);
}

fn collect_head(
    nv: &NormalValue,
    binds: &BTreeMap<Var, Binding>,
    path: u64,
    conds: &mut BTreeMap<Var, Vec<CondOcc>>,
    heads: &mut BTreeMap<Var, Vec<HeadOcc>>,
) {
    match nv {
        NormalValue::Atom(AtomTerm::Const(_)) => {}
        NormalValue::Atom(AtomTerm::Col { var, field }) => {
            if matches!(binds.get(var), Some(Binding::Local)) {
                heads
                    .entry(*var)
                    .or_default()
                    .push(HeadOcc { path, field: field.map(|f| f.name()) });
            }
        }
        NormalValue::Record(fields) => {
            for (f, v) in fields {
                let p = mix(path, fnv64(f.name().as_bytes()));
                collect_head(v, binds, p, conds, heads);
            }
        }
        NormalValue::Set(inner) => {
            // The nested comprehension's generators shadow outer bindings.
            let mut binds = binds.clone();
            for (v, r) in &inner.gens {
                binds.insert(*v, Binding::Inner(r.name()));
            }
            collect_occurrences(inner, &binds, mix(path, fnv64(b"set")), conds, heads);
        }
    }
}

/// Chooses the canonical generator order for one comprehension by
/// signature refinement, returning the generator indices in order.
fn canonical_gen_order(c: &Comprehension, ambient: &BTreeMap<Var, String>) -> Vec<usize> {
    let mut binds: BTreeMap<Var, Binding> =
        ambient.iter().map(|(v, name)| (*v, Binding::Ambient(name.clone()))).collect();
    for (v, _) in &c.gens {
        binds.insert(*v, Binding::Local);
    }
    let mut conds: BTreeMap<Var, Vec<CondOcc>> = BTreeMap::new();
    let mut heads: BTreeMap<Var, Vec<HeadOcc>> = BTreeMap::new();
    collect_occurrences(c, &binds, 0, &mut conds, &mut heads);

    // Round 0: the relation generated over.
    let mut sig: BTreeMap<Var, u64> =
        c.gens.iter().map(|(v, r)| (*v, fnv64(r.name().as_bytes()))).collect();

    let rounds = c.gens.len().clamp(1, 4);
    for _ in 0..rounds {
        let prev = sig.clone();
        for (v, s) in sig.iter_mut() {
            let mut items: Vec<u64> = Vec::new();
            for occ in conds.get(v).map(Vec::as_slice).unwrap_or(&[]) {
                let other_sig = match &occ.other {
                    OtherSide::Const(text) => mix(1, fnv64(text.as_bytes())),
                    OtherSide::Col { var, field } => {
                        let base = match binds.get(var) {
                            Some(Binding::Local) => {
                                if var == v {
                                    mix(2, 0) // self-equality marker
                                } else {
                                    mix(3, prev[var])
                                }
                            }
                            Some(Binding::Ambient(name)) => mix(4, fnv64(name.as_bytes())),
                            Some(Binding::Inner(rel)) => mix(5, fnv64(rel.as_bytes())),
                            None => mix(6, 0),
                        };
                        mix(base, fnv64(field_str(field).as_bytes()))
                    }
                };
                let mine = fnv64(field_str(&occ.my_field).as_bytes());
                items.push(mix(mix(occ.path, mine), other_sig));
            }
            for occ in heads.get(v).map(Vec::as_slice).unwrap_or(&[]) {
                let mine = fnv64(field_str(&occ.field).as_bytes());
                items.push(mix(mix(occ.path, mine), 7));
            }
            items.sort_unstable();
            let mut h = *s;
            for item in items {
                h = mix(h, item);
            }
            *s = h;
        }
    }

    let mut order: Vec<usize> = (0..c.gens.len()).collect();
    // Relation name first so the serialized generator list reads naturally;
    // the refined signature second; source position as the last-resort
    // tie-break (ties at this point are symmetric or pathological — see
    // module docs).
    order.sort_by(|&i, &j| {
        let (vi, ri) = &c.gens[i];
        let (vj, rj) = &c.gens[j];
        ri.name().cmp(&rj.name()).then_with(|| sig[vi].cmp(&sig[vj])).then(i.cmp(&j))
    });
    order
}

fn ser_comp(
    c: &Comprehension,
    ambient: &BTreeMap<Var, String>,
    counter: &mut usize,
    out: &mut String,
) {
    if c.unsat {
        // A statically-empty comprehension denotes ∅ whatever its body;
        // only the element shape (result type skeleton) matters.
        out.push_str("empty");
        ser_shape(&c.head, out);
        return;
    }
    let order = canonical_gen_order(c, ambient);
    let mut binds = ambient.clone();
    let mut gen_names: Vec<(String, String)> = Vec::with_capacity(order.len());
    for &i in &order {
        let (v, r) = &c.gens[i];
        let name = format!("${}", *counter);
        *counter += 1;
        binds.insert(*v, name.clone());
        gen_names.push((name, r.name()));
    }
    out.push_str("set{g=[");
    for (k, (name, rel)) in gen_names.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        out.push_str(name);
        out.push(':');
        out.push_str(rel);
    }
    out.push_str("];c=[");
    let mut conds: Vec<String> = c
        .conds
        .iter()
        .map(|(a, b)| {
            let (sa, sb) = (ser_term(a, &binds), ser_term(b, &binds));
            if sa <= sb {
                format!("{sa}={sb}")
            } else {
                format!("{sb}={sa}")
            }
        })
        .collect();
    conds.sort_unstable();
    conds.dedup();
    out.push_str(&conds.join(","));
    out.push_str("];h=");
    ser_value(&c.head, &binds, counter, out);
    out.push('}');
}

fn ser_term(t: &AtomTerm, binds: &BTreeMap<Var, String>) -> String {
    match t {
        AtomTerm::Const(a) => format!("#{a}"),
        AtomTerm::Col { var, field } => {
            // Unbound variables cannot be produced by `normalize`, but keep
            // the serialization total rather than panicking on hand-built
            // normal forms.
            let name = binds.get(var).cloned().unwrap_or_else(|| format!("?{var}"));
            match field {
                Some(f) => format!("{name}.{f}"),
                None => name,
            }
        }
    }
}

fn ser_value(
    nv: &NormalValue,
    binds: &BTreeMap<Var, String>,
    counter: &mut usize,
    out: &mut String,
) {
    match nv {
        NormalValue::Atom(t) => out.push_str(&ser_term(t, binds)),
        NormalValue::Record(fields) => {
            // Sort by label *name* (the normal form already sorts by the
            // interned `Field` order, which is also alphabetical; sorting
            // here keeps canonicity independent of that invariant).
            let mut sorted: Vec<&(co_object::Field, NormalValue)> = fields.iter().collect();
            sorted.sort_by_key(|(f, _)| f.name());
            out.push('[');
            for (k, (f, v)) in sorted.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                out.push_str(&f.name());
                out.push(':');
                ser_value(v, binds, counter, out);
            }
            out.push(']');
        }
        NormalValue::Set(c) => ser_comp(c, binds, counter, out),
    }
}

/// Serializes only the structural shape of a normal value (the result-type
/// skeleton), used for statically-empty comprehensions.
fn ser_shape(nv: &NormalValue, out: &mut String) {
    match nv {
        NormalValue::Atom(_) => out.push('a'),
        NormalValue::Record(fields) => {
            let mut sorted: Vec<&(co_object::Field, NormalValue)> = fields.iter().collect();
            sorted.sort_by_key(|(f, _)| f.name());
            out.push('[');
            for (k, (f, v)) in sorted.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                out.push_str(&f.name());
                out.push(':');
                ser_shape(v, out);
            }
            out.push(']');
        }
        NormalValue::Set(c) => {
            out.push('{');
            ser_shape(&c.head, out);
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::normalize;
    use crate::parse::parse_coql;
    use crate::types::CoqlSchema;
    use co_cq::Schema;

    fn canon(src: &str) -> String {
        let schema =
            CoqlSchema::from_flat(&Schema::with_relations(&[("R", &["A", "B"]), ("S", &["C"])]));
        let e = parse_coql(src).unwrap();
        canonical_query(&normalize(&e, &schema).unwrap())
    }

    #[test]
    fn alpha_renaming_is_invisible() {
        assert_eq!(
            canon("select x.B from x in R where x.A = 1"),
            canon("select longer_name.B from longer_name in R where longer_name.A = 1"),
        );
    }

    #[test]
    fn conjunct_order_and_duplication_are_invisible() {
        assert_eq!(
            canon("select x.B from x in R where x.A = 1 and x.B = 2"),
            canon("select x.B from x in R where x.B = 2 and x.A = 1"),
        );
        assert_eq!(
            canon("select x.B from x in R where x.A = 1"),
            canon("select x.B from x in R where x.A = 1 and 1 = x.A"),
        );
    }

    #[test]
    fn independent_generator_order_is_invisible() {
        assert_eq!(
            canon("select [l: x.A, r: y.C] from x in R, y in S"),
            canon("select [l: x.A, r: y.C] from y in S, x in R"),
        );
        // Same-relation generators distinguished by their constraints.
        assert_eq!(
            canon("select [l: x.A, r: y.B] from x in R, y in R where x.A = 1"),
            canon("select [l: y.A, r: x.B] from x in R, y in R where y.A = 1"),
        );
    }

    #[test]
    fn different_queries_differ() {
        assert_ne!(canon("select x.B from x in R"), canon("select x.A from x in R"));
        assert_ne!(canon("select x.B from x in R"), canon("select x.B from x in R where x.A = 1"),);
        assert_ne!(
            canon("select [a: x.A, g: (select y.B from y in R where y.A = x.A)] from x in R"),
            canon("select [a: x.A, g: (select y.B from y in R)] from x in R"),
        );
    }

    #[test]
    fn nested_scopes_rename_consistently() {
        assert_eq!(
            canon("select [a: x.A, g: (select y.B from y in R where y.A = x.A)] from x in R"),
            canon("select [a: u.A, g: (select v.B from v in R where v.A = u.A)] from u in R"),
        );
        // Shadowing: the inner `x` is a different binder than the outer.
        assert_eq!(
            canon("select [a: x.A, g: (select x.B from x in R)] from x in R"),
            canon("select [a: x.A, g: (select z.B from z in R)] from x in R"),
        );
    }

    #[test]
    fn empty_sets_canonicalize_by_shape() {
        assert_eq!(canon("select z from z in {}"), canon("flatten({})"));
    }
}
