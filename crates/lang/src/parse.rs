//! Parser for the COQL concrete syntax.
//!
//! ```text
//! select [a: x.A, g: (select y.B from y in R where y.A = x.A)]
//! from x in R
//! where x.A = 'c' and x.B = 3
//! ```
//!
//! Conventions:
//! * identifiers starting with an **uppercase** letter are relation names
//!   (OQL style: `R`, `Emp`); lowercase identifiers are variables;
//! * constants are integers or `'quoted strings'`;
//! * `{E}` is a singleton, `{}` the empty set, `flatten(E)` flattening;
//! * `where` takes `and`-separated atomic equalities.

use std::fmt;

use co_cq::Var;
use co_object::{Atom, Field, Type};

use crate::ast::Expr;

/// A parse error with byte position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub position: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "COQL parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a COQL expression.
pub fn parse_coql(input: &str) -> Result<Expr, ParseError> {
    let mut p = P { s: input.as_bytes(), pos: 0 };
    p.ws();
    let e = p.expr()?;
    p.ws();
    if p.pos != p.s.len() {
        return Err(p.err("trailing input"));
    }
    Ok(e)
}

struct P<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> P<'a> {
    fn err(&self, m: &str) -> ParseError {
        ParseError { position: self.pos, message: m.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.pos).copied()
    }

    fn ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    /// Consumes a keyword if present at a word boundary.
    fn keyword(&mut self, word: &str) -> bool {
        let bytes = word.as_bytes();
        if !self.s[self.pos..].starts_with(bytes) {
            return false;
        }
        let after = self.s.get(self.pos + bytes.len()).copied();
        if after.is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_') {
            return false;
        }
        self.pos += bytes.len();
        true
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        if !self.peek().is_some_and(|c| c.is_ascii_alphabetic() || c == b'_') {
            return Err(self.err("expected identifier"));
        }
        while self.peek().is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_') {
            self.pos += 1;
        }
        Ok(std::str::from_utf8(&self.s[start..self.pos]).expect("ascii").to_string())
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.ws();
        if self.keyword("select") {
            return self.select();
        }
        if self.keyword("flatten") {
            self.ws();
            self.expect(b'(')?;
            let e = self.expr()?;
            self.ws();
            self.expect(b')')?;
            return Ok(e.flatten());
        }
        self.postfix()
    }

    fn select(&mut self) -> Result<Expr, ParseError> {
        let head = self.expr()?;
        self.ws();
        if !self.keyword("from") {
            return Err(self.err("expected `from`"));
        }
        let mut bindings = Vec::new();
        loop {
            self.ws();
            let name = self.ident()?;
            self.ws();
            if !self.keyword("in") {
                return Err(self.err("expected `in`"));
            }
            let gen = self.expr()?;
            bindings.push((Var::new(&name), gen));
            self.ws();
            if self.peek() == Some(b',') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let mut conds = Vec::new();
        self.ws();
        if self.keyword("where") {
            loop {
                let lhs = self.expr()?;
                self.ws();
                self.expect(b'=')?;
                let rhs = self.expr()?;
                conds.push((lhs, rhs));
                self.ws();
                if !self.keyword("and") {
                    break;
                }
            }
        }
        Ok(Expr::Select { head: Box::new(head), bindings, conds })
    }

    /// Primary expression followed by `.field` projections.
    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            if self.peek() == Some(b'.') {
                self.pos += 1;
                let field = self.ident()?;
                e = Expr::Proj(Box::new(e), Field::new(&field));
            } else {
                return Ok(e);
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        self.ws();
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                let e = self.expr()?;
                self.ws();
                self.expect(b')')?;
                Ok(e)
            }
            Some(b'[') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Expr::Record(fields));
                }
                loop {
                    self.ws();
                    let name = self.ident()?;
                    self.ws();
                    self.expect(b':')?;
                    let e = self.expr()?;
                    fields.push((Field::new(&name), e));
                    self.ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            break;
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
                Ok(Expr::Record(fields))
            }
            Some(b'{') => {
                self.pos += 1;
                self.ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Expr::EmptySet(Type::Bottom));
                }
                let e = self.expr()?;
                self.ws();
                self.expect(b'}')?;
                Ok(e.singleton())
            }
            Some(b'\'') => {
                self.pos += 1;
                let mut bytes = Vec::new();
                loop {
                    match self.peek() {
                        Some(b'\'') => {
                            self.pos += 1;
                            break;
                        }
                        Some(c) => {
                            bytes.push(c);
                            self.pos += 1;
                        }
                        None => return Err(self.err("unterminated string")),
                    }
                }
                let out =
                    String::from_utf8(bytes).map_err(|_| self.err("invalid UTF-8 in string"))?;
                Ok(Expr::Const(Atom::str(&out)))
            }
            Some(c) if c.is_ascii_digit() || c == b'-' => {
                let start = self.pos;
                if c == b'-' {
                    self.pos += 1;
                }
                while self.peek().is_some_and(|d| d.is_ascii_digit()) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.s[start..self.pos]).expect("ascii");
                let n: i64 = text.parse().map_err(|_| self.err("invalid integer"))?;
                Ok(Expr::Const(Atom::int(n)))
            }
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                let name = self.ident()?;
                let first = name.chars().next().expect("non-empty");
                if first.is_ascii_uppercase() {
                    Ok(Expr::Rel(co_cq::RelName::new(&name)))
                } else {
                    Ok(Expr::Var(Var::new(&name)))
                }
            }
            _ => Err(self.err("expected an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_headline_example() {
        let src = "select [a: x.A, g: (select y.B from y in R where y.A = x.A)] \
                   from x in R where x.A = 'c' and x.B = 3";
        let e = parse_coql(src).unwrap();
        match &e {
            Expr::Select { bindings, conds, .. } => {
                assert_eq!(bindings.len(), 1);
                assert_eq!(conds.len(), 2);
            }
            other => panic!("expected select, got {other}"),
        }
    }

    #[test]
    fn case_determines_relation_vs_variable() {
        assert!(matches!(parse_coql("R").unwrap(), Expr::Rel(_)));
        assert!(matches!(parse_coql("x").unwrap(), Expr::Var(_)));
    }

    #[test]
    fn sets_and_flatten() {
        assert!(matches!(parse_coql("{}").unwrap(), Expr::EmptySet(_)));
        assert!(matches!(parse_coql("{1}").unwrap(), Expr::Singleton(_)));
        assert!(matches!(parse_coql("flatten({R})").unwrap(), Expr::Flatten(_)));
    }

    #[test]
    fn projections_chain() {
        let e = parse_coql("x.A.B").unwrap();
        assert_eq!(e.to_string(), "x.A.B");
    }

    #[test]
    fn keywords_need_boundaries() {
        // `selector` is an identifier, not `select` + `or`.
        assert!(matches!(parse_coql("selector").unwrap(), Expr::Var(_)));
        // `fromage` inside a select must not terminate the head.
        let e = parse_coql("select fromage from x in R");
        assert!(e.is_ok());
    }

    #[test]
    fn display_parse_roundtrip() {
        let sources = [
            "select [a: x.A] from x in R where x.B = 1",
            "select y.B from y in R, z in S where y.A = z.A",
            "flatten(select {x.A} from x in R)",
            "{[a: 1, b: {2}]}",
        ];
        for src in sources {
            let e = parse_coql(src).unwrap();
            let e2 = parse_coql(&e.to_string()).unwrap();
            assert_eq!(e, e2, "{src}");
        }
    }

    #[test]
    fn errors_are_positioned() {
        assert!(parse_coql("select x from").is_err());
        assert!(parse_coql("select x from x R").is_err());
        assert!(parse_coql("[a 1]").is_err());
        assert!(parse_coql("x.").is_err());
        assert!(parse_coql("{1, 2}").is_err(), "multi-element sets are not COQL");
    }
}
