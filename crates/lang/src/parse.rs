//! Parser for the COQL concrete syntax.
//!
//! ```text
//! select [a: x.A, g: (select y.B from y in R where y.A = x.A)]
//! from x in R
//! where x.A = 'c' and x.B = 3
//! ```
//!
//! Conventions:
//! * identifiers starting with an **uppercase** letter are relation names
//!   (OQL style: `R`, `Emp`); lowercase identifiers are variables;
//! * constants are integers or `'quoted strings'`;
//! * `{E}` is a singleton, `{}` the empty set, `flatten(E)` flattening;
//! * `where` takes `and`-separated atomic equalities.

use std::fmt;

use co_cq::Var;
use co_object::{Atom, Field, Type};

use crate::ast::Expr;

/// Default nesting cap for [`parse_coql`]. Far deeper than any realistic
/// query, far shallower than the stack limit — hostile `{{{{…}}}}` input
/// (e.g. over the `coqld` TCP protocol) is rejected with a structured
/// [`ParseErrorKind::TooDeep`] error instead of overflowing the stack.
/// 128 leaves ample headroom even for debug builds on a 2 MiB thread
/// stack, where each level costs several sizeable frames.
pub const DEFAULT_MAX_DEPTH: usize = 128;

/// What category of failure a [`ParseError`] reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Malformed input (the ordinary case).
    Syntax,
    /// Input nested deeper than the parser's depth cap. The input may be
    /// grammatically fine; it is rejected as a resource bound.
    TooDeep,
}

/// A parse error with byte position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub position: usize,
    /// Description.
    pub message: String,
    /// Structured failure category (syntax vs. depth cap).
    pub kind: ParseErrorKind,
}

impl ParseError {
    /// Whether this error is the depth-cap rejection.
    pub fn is_too_deep(&self) -> bool {
        self.kind == ParseErrorKind::TooDeep
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "COQL parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Hard cap on the number of `or`-separated disjuncts a union query may
/// carry. Unions fan work out per disjunct downstream (one containment
/// kernel call per pair of disjuncts), so this bounds hostile
/// `q or q or q or …` input the same way [`DEFAULT_MAX_DEPTH`] bounds
/// hostile nesting.
pub const MAX_UNION_DISJUNCTS: usize = 64;

/// Parses a COQL expression under the default depth cap.
pub fn parse_coql(input: &str) -> Result<Expr, ParseError> {
    parse_coql_with_depth(input, DEFAULT_MAX_DEPTH)
}

/// Parses a top-level union query `expr (or expr)*` under the default
/// depth cap. A single expression is the degenerate one-disjunct union,
/// so every plain COQL query is also a valid union query.
pub fn parse_union_coql(input: &str) -> Result<Vec<Expr>, ParseError> {
    parse_union_coql_with_depth(input, DEFAULT_MAX_DEPTH)
}

/// Parses a top-level union query, rejecting nesting deeper than
/// `max_depth` and more than [`MAX_UNION_DISJUNCTS`] disjuncts.
///
/// `or` binds loosest: each disjunct is a full COQL expression, and the
/// keyword is only recognized at a word boundary (so `selector` stays an
/// identifier). Disjunction is **not** part of the conjunctive [`Expr`]
/// AST — the union is returned as the list of its disjuncts, in source
/// order.
pub fn parse_union_coql_with_depth(
    input: &str,
    max_depth: usize,
) -> Result<Vec<Expr>, ParseError> {
    let mut p = P { s: input.as_bytes(), pos: 0, depth: 0, max_depth };
    let mut disjuncts = Vec::new();
    loop {
        p.ws();
        disjuncts.push(p.expr()?);
        p.ws();
        if !p.keyword("or") {
            break;
        }
        if disjuncts.len() >= MAX_UNION_DISJUNCTS {
            return Err(p.err(&format!("union has more than {MAX_UNION_DISJUNCTS} disjuncts")));
        }
    }
    if p.pos != p.s.len() {
        return Err(p.err("trailing input"));
    }
    Ok(disjuncts)
}

/// Parses a COQL expression, rejecting nesting deeper than `max_depth`
/// with [`ParseErrorKind::TooDeep`].
pub fn parse_coql_with_depth(input: &str, max_depth: usize) -> Result<Expr, ParseError> {
    let mut p = P { s: input.as_bytes(), pos: 0, depth: 0, max_depth };
    p.ws();
    let e = p.expr()?;
    p.ws();
    if p.pos != p.s.len() {
        return Err(p.err("trailing input"));
    }
    Ok(e)
}

struct P<'a> {
    s: &'a [u8],
    pos: usize,
    depth: usize,
    max_depth: usize,
}

impl<'a> P<'a> {
    fn err(&self, m: &str) -> ParseError {
        ParseError { position: self.pos, message: m.to_string(), kind: ParseErrorKind::Syntax }
    }

    fn too_deep(&self) -> ParseError {
        ParseError {
            position: self.pos,
            message: format!("expression nested deeper than {} levels", self.max_depth),
            kind: ParseErrorKind::TooDeep,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.pos).copied()
    }

    fn ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    /// Consumes a keyword if present at a word boundary.
    fn keyword(&mut self, word: &str) -> bool {
        let bytes = word.as_bytes();
        if !self.s[self.pos..].starts_with(bytes) {
            return false;
        }
        let after = self.s.get(self.pos + bytes.len()).copied();
        if after.is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_') {
            return false;
        }
        self.pos += bytes.len();
        true
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        if !self.peek().is_some_and(|c| c.is_ascii_alphabetic() || c == b'_') {
            return Err(self.err("expected identifier"));
        }
        while self.peek().is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_') {
            self.pos += 1;
        }
        Ok(std::str::from_utf8(&self.s[start..self.pos]).expect("ascii").to_string())
    }

    /// Every recursive production funnels through here, so one depth
    /// counter bounds the whole parse (select heads, generators,
    /// conditions, records, sets, parens, flatten).
    fn expr(&mut self) -> Result<Expr, ParseError> {
        if self.depth >= self.max_depth {
            return Err(self.too_deep());
        }
        self.depth += 1;
        let e = self.expr_inner();
        self.depth -= 1;
        e
    }

    fn expr_inner(&mut self) -> Result<Expr, ParseError> {
        self.ws();
        if self.keyword("select") {
            return self.select();
        }
        if self.keyword("flatten") {
            self.ws();
            self.expect(b'(')?;
            let e = self.expr()?;
            self.ws();
            self.expect(b')')?;
            return Ok(e.flatten());
        }
        self.postfix()
    }

    fn select(&mut self) -> Result<Expr, ParseError> {
        let head = self.expr()?;
        self.ws();
        if !self.keyword("from") {
            return Err(self.err("expected `from`"));
        }
        let mut bindings = Vec::new();
        loop {
            self.ws();
            let name = self.ident()?;
            self.ws();
            if !self.keyword("in") {
                return Err(self.err("expected `in`"));
            }
            let gen = self.expr()?;
            bindings.push((Var::new(&name), gen));
            self.ws();
            if self.peek() == Some(b',') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let mut conds = Vec::new();
        self.ws();
        if self.keyword("where") {
            loop {
                let lhs = self.expr()?;
                self.ws();
                self.expect(b'=')?;
                let rhs = self.expr()?;
                conds.push((lhs, rhs));
                self.ws();
                if !self.keyword("and") {
                    break;
                }
            }
        }
        Ok(Expr::Select { head: Box::new(head), bindings, conds })
    }

    /// Primary expression followed by `.field` projections.
    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            if self.peek() == Some(b'.') {
                self.pos += 1;
                let field = self.ident()?;
                e = Expr::Proj(Box::new(e), Field::new(&field));
            } else {
                return Ok(e);
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        self.ws();
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                let e = self.expr()?;
                self.ws();
                self.expect(b')')?;
                Ok(e)
            }
            Some(b'[') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Expr::Record(fields));
                }
                loop {
                    self.ws();
                    let name = self.ident()?;
                    self.ws();
                    self.expect(b':')?;
                    let e = self.expr()?;
                    fields.push((Field::new(&name), e));
                    self.ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            break;
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
                Ok(Expr::Record(fields))
            }
            Some(b'{') => {
                self.pos += 1;
                self.ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Expr::EmptySet(Type::Bottom));
                }
                let e = self.expr()?;
                self.ws();
                self.expect(b'}')?;
                Ok(e.singleton())
            }
            Some(b'\'') => {
                self.pos += 1;
                let mut bytes = Vec::new();
                loop {
                    match self.peek() {
                        Some(b'\'') => {
                            self.pos += 1;
                            break;
                        }
                        Some(c) => {
                            bytes.push(c);
                            self.pos += 1;
                        }
                        None => return Err(self.err("unterminated string")),
                    }
                }
                let out =
                    String::from_utf8(bytes).map_err(|_| self.err("invalid UTF-8 in string"))?;
                Ok(Expr::Const(Atom::str(&out)))
            }
            Some(c) if c.is_ascii_digit() || c == b'-' => {
                let start = self.pos;
                if c == b'-' {
                    self.pos += 1;
                }
                while self.peek().is_some_and(|d| d.is_ascii_digit()) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.s[start..self.pos]).expect("ascii");
                let n: i64 = text.parse().map_err(|_| self.err("invalid integer"))?;
                Ok(Expr::Const(Atom::int(n)))
            }
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                let name = self.ident()?;
                let first = name.chars().next().expect("non-empty");
                if first.is_ascii_uppercase() {
                    Ok(Expr::Rel(co_cq::RelName::new(&name)))
                } else {
                    Ok(Expr::Var(Var::new(&name)))
                }
            }
            _ => Err(self.err("expected an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_headline_example() {
        let src = "select [a: x.A, g: (select y.B from y in R where y.A = x.A)] \
                   from x in R where x.A = 'c' and x.B = 3";
        let e = parse_coql(src).unwrap();
        match &e {
            Expr::Select { bindings, conds, .. } => {
                assert_eq!(bindings.len(), 1);
                assert_eq!(conds.len(), 2);
            }
            other => panic!("expected select, got {other}"),
        }
    }

    #[test]
    fn case_determines_relation_vs_variable() {
        assert!(matches!(parse_coql("R").unwrap(), Expr::Rel(_)));
        assert!(matches!(parse_coql("x").unwrap(), Expr::Var(_)));
    }

    #[test]
    fn sets_and_flatten() {
        assert!(matches!(parse_coql("{}").unwrap(), Expr::EmptySet(_)));
        assert!(matches!(parse_coql("{1}").unwrap(), Expr::Singleton(_)));
        assert!(matches!(parse_coql("flatten({R})").unwrap(), Expr::Flatten(_)));
    }

    #[test]
    fn projections_chain() {
        let e = parse_coql("x.A.B").unwrap();
        assert_eq!(e.to_string(), "x.A.B");
    }

    #[test]
    fn keywords_need_boundaries() {
        // `selector` is an identifier, not `select` + `or`.
        assert!(matches!(parse_coql("selector").unwrap(), Expr::Var(_)));
        // `fromage` inside a select must not terminate the head.
        let e = parse_coql("select fromage from x in R");
        assert!(e.is_ok());
    }

    #[test]
    fn display_parse_roundtrip() {
        let sources = [
            "select [a: x.A] from x in R where x.B = 1",
            "select y.B from y in R, z in S where y.A = z.A",
            "flatten(select {x.A} from x in R)",
            "{[a: 1, b: {2}]}",
        ];
        for src in sources {
            let e = parse_coql(src).unwrap();
            let e2 = parse_coql(&e.to_string()).unwrap();
            assert_eq!(e, e2, "{src}");
        }
    }

    #[test]
    fn errors_are_positioned() {
        assert!(parse_coql("select x from").is_err());
        assert!(parse_coql("select x from x R").is_err());
        assert!(parse_coql("[a 1]").is_err());
        assert!(parse_coql("x.").is_err());
        assert!(parse_coql("{1, 2}").is_err(), "multi-element sets are not COQL");
    }

    #[test]
    fn unions_split_on_or_at_word_boundaries() {
        let ds = parse_union_coql(
            "select x.A from x in R or select y.A from y in R where y.B = 1 or select z.C from z in S",
        )
        .unwrap();
        assert_eq!(ds.len(), 3);
        // A single expression is the degenerate one-disjunct union.
        assert_eq!(parse_union_coql("select x.A from x in R").unwrap().len(), 1);
        // `or` needs a word boundary: `selector` is one identifier…
        assert_eq!(parse_union_coql("selector").unwrap().len(), 1);
        // …and `orb` after a disjunct is trailing input, not `or` + `b`.
        assert!(parse_union_coql("x orb").is_err());
        // A trailing `or` with nothing after it is a syntax error.
        assert!(parse_union_coql("x or").is_err());
    }

    #[test]
    fn union_caps_are_enforced() {
        let at_cap = vec!["R"; MAX_UNION_DISJUNCTS].join(" or ");
        assert_eq!(parse_union_coql(&at_cap).unwrap().len(), MAX_UNION_DISJUNCTS);
        let over = vec!["R"; MAX_UNION_DISJUNCTS + 1].join(" or ");
        let e = parse_union_coql(&over).unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::Syntax);
        assert!(e.message.contains("disjuncts"), "{e}");
        // The depth cap applies inside each disjunct.
        let nested = format!("R or {}1{}", "{".repeat(16), "}".repeat(16));
        assert!(parse_union_coql_with_depth(&nested, 17).is_ok());
        assert!(parse_union_coql_with_depth(&nested, 8).unwrap_err().is_too_deep());
    }

    #[test]
    fn depth_cap_is_a_structured_error() {
        // Hostile 100k-deep nesting in each recursive production: the
        // parser must answer TooDeep, never overflow the stack — this is
        // the text a TCP client can feed coqld.
        for open in ["{", "(", "[a: ", "flatten("] {
            let hostile = open.repeat(100_000);
            let e = parse_coql(&hostile).unwrap_err();
            assert!(e.is_too_deep(), "`{open}`×100k → {e}");
        }
        // Nested selects recurse through the same guard.
        let selects = "select (".repeat(100_000);
        assert!(parse_coql(&selects).unwrap_err().is_too_deep());
        // The cap is configurable; legitimate nesting under it still parses.
        let nested = format!("{}1{}", "{".repeat(16), "}".repeat(16));
        assert!(parse_coql_with_depth(&nested, 17).is_ok());
        assert!(parse_coql_with_depth(&nested, 8).unwrap_err().is_too_deep());
        // Ordinary failures stay classified as Syntax.
        assert_eq!(parse_coql("select x from").unwrap_err().kind, ParseErrorKind::Syntax);
    }
}
