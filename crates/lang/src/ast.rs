//! The COQL abstract syntax.
//!
//! COQL — *conjunctive idealized OQL* — is the paper's query language for
//! complex objects (§3.1, Appendix A): the fragment of OQL restricted to
//!
//! * `select E from x1 in E1, …, xn in En where cond` with `cond` a
//!   conjunction of **equalities over atomic values only**,
//! * `flatten(E)`,
//! * the singleton constructor `{E}` and the empty set `{}`,
//! * record formation `[A1: E1, …, Ak: Ek]` and field projection `E.A`,
//! * relation names and constants.
//!
//! Set difference (`except`), general set-equality conditions, unions, and
//! multi-element set constructors are deliberately absent — the paper
//! explains each restriction (allowing set equalities or `{E1, E2}` would
//! smuggle in difference or union and break conjunctivity). COQL is a
//! conservative extension of conjunctive queries \[43\] and equals natural
//! fragments of the Abiteboul–Beeri and Thomas–Fischer algebras (see
//! `co-algebra`).

use std::fmt;

use co_cq::{RelName, Var};
use co_object::{Atom, Field, Type};

/// A COQL expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// A bound variable.
    Var(Var),
    /// An atomic constant.
    Const(Atom),
    /// An input relation by name.
    Rel(RelName),
    /// Record formation `[A1: E1, …]`.
    Record(Vec<(Field, Expr)>),
    /// Field projection `E.A`.
    Proj(Box<Expr>, Field),
    /// Singleton set `{E}`.
    Singleton(Box<Expr>),
    /// The empty set `{}` with its element type (use [`Type::Bottom`] when
    /// unknown; flattening requires a concrete shape).
    EmptySet(Type),
    /// `flatten(E)`: turns a set of sets into a set.
    Flatten(Box<Expr>),
    /// `select head from bindings where conds`.
    Select {
        /// The head expression (may reference all bound variables).
        head: Box<Expr>,
        /// Generators, evaluated left to right; each may reference earlier
        /// bindings.
        bindings: Vec<(Var, Expr)>,
        /// Conjunction of atomic equalities.
        conds: Vec<(Expr, Expr)>,
    },
}

impl Expr {
    /// Convenience: a variable by name.
    pub fn var(name: &str) -> Expr {
        Expr::Var(Var::new(name))
    }

    /// Convenience: a relation by name.
    pub fn rel(name: &str) -> Expr {
        Expr::Rel(RelName::new(name))
    }

    /// Convenience: an integer constant.
    pub fn int(i: i64) -> Expr {
        Expr::Const(Atom::int(i))
    }

    /// Convenience: a string constant.
    pub fn str(s: &str) -> Expr {
        Expr::Const(Atom::str(s))
    }

    /// Convenience: projection.
    pub fn proj(self, field: &str) -> Expr {
        Expr::Proj(Box::new(self), Field::new(field))
    }

    /// Convenience: singleton.
    pub fn singleton(self) -> Expr {
        Expr::Singleton(Box::new(self))
    }

    /// Convenience: flatten.
    pub fn flatten(self) -> Expr {
        Expr::Flatten(Box::new(self))
    }

    /// Convenience: record formation.
    pub fn record(fields: Vec<(&str, Expr)>) -> Expr {
        Expr::Record(fields.into_iter().map(|(n, e)| (Field::new(n), e)).collect())
    }

    /// The relation names referenced by the expression.
    pub fn relations(&self) -> Vec<RelName> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Rel(r) = e {
                out.push(*r);
            }
        });
        out.sort();
        out.dedup();
        out
    }

    /// Visits every subexpression.
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Var(_) | Expr::Const(_) | Expr::Rel(_) | Expr::EmptySet(_) => {}
            Expr::Record(fields) => {
                for (_, e) in fields {
                    e.walk(f);
                }
            }
            Expr::Proj(e, _) | Expr::Singleton(e) | Expr::Flatten(e) => e.walk(f),
            Expr::Select { head, bindings, conds } => {
                head.walk(f);
                for (_, e) in bindings {
                    e.walk(f);
                }
                for (a, b) in conds {
                    a.walk(f);
                    b.walk(f);
                }
            }
        }
    }

    /// Size of the expression tree (node count).
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |_| n += 1);
        n
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Const(a) => write!(f, "{a}"),
            Expr::Rel(r) => write!(f, "{r}"),
            Expr::Record(fields) => {
                write!(f, "[")?;
                for (i, (name, e)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match e {
                        Expr::Select { .. } => write!(f, "{name}: ({e})")?,
                        _ => write!(f, "{name}: {e}")?,
                    }
                }
                write!(f, "]")
            }
            Expr::Proj(e, field) => match e.as_ref() {
                Expr::Var(_) | Expr::Proj(..) => write!(f, "{e}.{field}"),
                _ => write!(f, "({e}).{field}"),
            },
            Expr::Singleton(e) => write!(f, "{{{e}}}"),
            Expr::EmptySet(_) => write!(f, "{{}}"),
            Expr::Flatten(e) => write!(f, "flatten({e})"),
            Expr::Select { head, bindings, conds } => {
                write!(f, "select {head} from ")?;
                for (i, (v, e)) in bindings.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match e {
                        Expr::Select { .. } => write!(f, "{v} in ({e})")?,
                        _ => write!(f, "{v} in {e}")?,
                    }
                }
                if !conds.is_empty() {
                    write!(f, " where ")?;
                    for (i, (a, b)) in conds.iter().enumerate() {
                        if i > 0 {
                            write!(f, " and ")?;
                        }
                        write!(f, "{a} = {b}")?;
                    }
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let e = Expr::Select {
            head: Box::new(Expr::record(vec![("a", Expr::var("x").proj("A"))])),
            bindings: vec![(Var::new("x"), Expr::rel("R"))],
            conds: vec![(Expr::var("x").proj("B"), Expr::int(1))],
        };
        assert_eq!(e.to_string(), "select [a: x.A] from x in R where x.B = 1");
        assert_eq!(e.relations(), vec![RelName::new("R")]);
    }

    #[test]
    fn walk_visits_nested_selects() {
        let inner = Expr::Select {
            head: Box::new(Expr::var("y").proj("B")),
            bindings: vec![(Var::new("y"), Expr::rel("S"))],
            conds: vec![],
        };
        let outer = Expr::Select {
            head: Box::new(inner.clone().singleton().flatten()),
            bindings: vec![(Var::new("x"), Expr::rel("R"))],
            conds: vec![],
        };
        assert_eq!(outer.relations().len(), 2);
        assert!(outer.size() > inner.size());
    }

    #[test]
    fn display_parenthesizes_select_generators() {
        let e = Expr::Select {
            head: Box::new(Expr::var("y")),
            bindings: vec![(
                Var::new("y"),
                Expr::Select {
                    head: Box::new(Expr::var("x")),
                    bindings: vec![(Var::new("x"), Expr::rel("R"))],
                    conds: vec![],
                },
            )],
            conds: vec![],
        };
        assert_eq!(e.to_string(), "select y from y in (select x from x in R)");
    }
}
