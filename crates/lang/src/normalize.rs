//! Normalization of COQL into comprehension normal form.
//!
//! The paper's flattening (§5.2) — "each COQL query Q can be encoded as m
//! conjunctive queries Q1,…,Qm" — first rewrites the query so that every
//! generator ranges *directly over an input relation*. This is the standard
//! normalization underlying conservativity (Wong \[43\], Paredaens & Van
//! Gucht \[34\]); the rewrite rules are the set-monad laws:
//!
//! ```text
//! select H from …, x in (select H' from ḡ where C'), … where C
//!   ⟶ select H[x↦H'] from …, ḡ, … where C' ∧ C[x↦H']
//! select H from …, x in {E}, … where C        ⟶ inline x := E
//! select H from …, x in {}, …  where C        ⟶ statically empty
//! x in flatten(E)                              ⟶ two generator layers
//! [A1:E1,…].Ai                                 ⟶ Ei
//! ```
//!
//! The result ([`NormalValue`]) is a tree of [`Comprehension`]s: each set
//! level is a comprehension whose generators are input relations and whose
//! conditions are atomic equalities — precisely one conjunctive query per
//! set node of the output type, ready for `co-encode` to turn into a
//! `co_sim::QueryTree`.
//!
//! Normalization requires **flat input relations**, matching the paper's
//! §5 assumption ("we will assume from now on that all input relations are
//! flat"); nested inputs are first encoded by `co-encode`.

use std::collections::BTreeMap;
use std::fmt;

use co_cq::{Database, RelName, Var};
use co_object::{Atom, Field, Type, Value};

use crate::ast::Expr;
use crate::types::CoqlSchema;

/// An atomic-valued term in normal form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AtomTerm {
    /// A constant.
    Const(Atom),
    /// Column `field` of generator `var`; `field = None` when the
    /// generator's relation is a set of bare atoms.
    Col {
        /// The generator variable.
        var: Var,
        /// The projected attribute, if the elements are records.
        field: Option<Field>,
    },
}

impl fmt::Display for AtomTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtomTerm::Const(a) => write!(f, "{a}"),
            AtomTerm::Col { var, field: Some(fl) } => write!(f, "{var}.{fl}"),
            AtomTerm::Col { var, field: None } => write!(f, "{var}"),
        }
    }
}

/// A normal-form value: how one element of the result is assembled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NormalValue {
    /// An atomic component.
    Atom(AtomTerm),
    /// A record of normal values (fields sorted by label).
    Record(Vec<(Field, NormalValue)>),
    /// A nested set, produced by a comprehension over the ambient bindings.
    Set(Comprehension),
}

/// One set level: generators over input relations, atomic equalities, and
/// a head normal value (which may reference ambient generators).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Comprehension {
    /// Generators `(x, R)`: `x` ranges over the tuples of relation `R`.
    pub gens: Vec<(Var, RelName)>,
    /// Atomic equality conditions.
    pub conds: Vec<(AtomTerm, AtomTerm)>,
    /// Statically empty (a `{}` generator was inlined).
    pub unsat: bool,
    /// How each element is assembled.
    pub head: Box<NormalValue>,
}

/// A normalization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NormError {
    /// Description.
    pub message: String,
}

impl NormError {
    fn new(message: impl Into<String>) -> NormError {
        NormError { message: message.into() }
    }
}

impl fmt::Display for NormError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "normalization error: {}", self.message)
    }
}

impl std::error::Error for NormError {}

/// Normalizes a closed, set-typed COQL expression over a **flat** schema.
pub fn normalize(expr: &Expr, schema: &CoqlSchema) -> Result<Comprehension, NormError> {
    if !schema.is_flat() {
        return Err(NormError::new(
            "normalization requires flat input relations (encode nested inputs first, §5.1)",
        ));
    }
    match norm(expr, schema, &BTreeMap::new())? {
        NormalValue::Set(c) => Ok(c),
        other => Err(NormError::new(format!("query must be set-typed, normal form was {other:?}"))),
    }
}

fn norm(
    expr: &Expr,
    schema: &CoqlSchema,
    env: &BTreeMap<Var, NormalValue>,
) -> Result<NormalValue, NormError> {
    match expr {
        Expr::Const(a) => Ok(NormalValue::Atom(AtomTerm::Const(*a))),
        Expr::Var(v) => {
            env.get(v).cloned().ok_or_else(|| NormError::new(format!("unbound variable `{v}`")))
        }
        Expr::Rel(r) => {
            let ty = schema
                .relation(*r)
                .ok_or_else(|| NormError::new(format!("unknown relation `{r}`")))?;
            let fresh = Var::fresh(&format!("g_{r}"));
            let head = element_value(fresh, ty)?;
            Ok(NormalValue::Set(Comprehension {
                gens: vec![(fresh, *r)],
                conds: vec![],
                unsat: false,
                head: Box::new(head),
            }))
        }
        Expr::Record(fields) => {
            let mut out = Vec::with_capacity(fields.len());
            for (name, e) in fields {
                out.push((*name, norm(e, schema, env)?));
            }
            out.sort_by_key(|(f, _)| *f);
            Ok(NormalValue::Record(out))
        }
        Expr::Proj(e, field) => match norm(e, schema, env)? {
            NormalValue::Record(fields) => fields
                .iter()
                .find(|(f, _)| f == field)
                .map(|(_, v)| v.clone())
                .ok_or_else(|| NormError::new(format!("no field `{field}`"))),
            other => Err(NormError::new(format!(
                "projection `.{field}` of non-record normal form {other:?}"
            ))),
        },
        Expr::Singleton(e) => Ok(NormalValue::Set(Comprehension {
            gens: vec![],
            conds: vec![],
            unsat: false,
            head: Box::new(norm(e, schema, env)?),
        })),
        Expr::EmptySet(elem_ty) => Ok(NormalValue::Set(Comprehension {
            gens: vec![],
            conds: vec![],
            unsat: true,
            head: Box::new(skeleton(elem_ty)),
        })),
        Expr::Flatten(e) => {
            let c1 = norm_set(e, schema, env)?;
            match *c1.head {
                NormalValue::Set(c2) => Ok(NormalValue::Set(Comprehension {
                    gens: c1.gens.into_iter().chain(c2.gens).collect(),
                    conds: c1.conds.into_iter().chain(c2.conds).collect(),
                    unsat: c1.unsat || c2.unsat,
                    head: c2.head,
                })),
                // flatten({}) and friends: statically empty of unknown shape.
                ref other if c1.unsat => Ok(NormalValue::Set(Comprehension {
                    gens: vec![],
                    conds: vec![],
                    unsat: true,
                    head: Box::new(other.clone()),
                })),
                other => Err(NormError::new(format!("flatten of a set of non-sets: {other:?}"))),
            }
        }
        Expr::Select { head, bindings, conds } => {
            let mut env = env.clone();
            let mut gens = Vec::new();
            let mut out_conds = Vec::new();
            let mut unsat = false;
            for (v, gen_expr) in bindings {
                let c = norm_set(gen_expr, schema, &env)?;
                gens.extend(c.gens);
                out_conds.extend(c.conds);
                unsat |= c.unsat;
                env.insert(*v, *c.head);
            }
            for (a, b) in conds {
                let na = norm(a, schema, &env)?;
                let nb = norm(b, schema, &env)?;
                match (na, nb) {
                    (NormalValue::Atom(ta), NormalValue::Atom(tb)) => {
                        out_conds.push((ta, tb));
                    }
                    (na, nb) => {
                        return Err(NormError::new(format!("non-atomic equality {na:?} = {nb:?}")))
                    }
                }
            }
            let head_nv = norm(head, schema, &env)?;
            Ok(NormalValue::Set(Comprehension {
                gens,
                conds: out_conds,
                unsat,
                head: Box::new(head_nv),
            }))
        }
    }
}

fn norm_set(
    expr: &Expr,
    schema: &CoqlSchema,
    env: &BTreeMap<Var, NormalValue>,
) -> Result<Comprehension, NormError> {
    match norm(expr, schema, env)? {
        NormalValue::Set(c) => Ok(c),
        other => Err(NormError::new(format!("expected a set, normal form was {other:?}"))),
    }
}

/// The normal value describing one element of a flat relation bound to a
/// fresh generator variable.
fn element_value(var: Var, rel_ty: &Type) -> Result<NormalValue, NormError> {
    match rel_ty {
        Type::Set(elem) => match elem.as_ref() {
            Type::Atom => Ok(NormalValue::Atom(AtomTerm::Col { var, field: None })),
            Type::Record(fields) => {
                let mut out = Vec::with_capacity(fields.len());
                for (f, t) in fields {
                    if !matches!(t, Type::Atom) {
                        return Err(NormError::new(format!(
                            "relation element field `{f}` is not atomic (input not flat)"
                        )));
                    }
                    out.push((*f, NormalValue::Atom(AtomTerm::Col { var, field: Some(*f) })));
                }
                Ok(NormalValue::Record(out))
            }
            other => Err(NormError::new(format!("non-flat relation element type {other}"))),
        },
        other => Err(NormError::new(format!("relation type is not a set: {other}"))),
    }
}

/// A placeholder normal value of a given type, used as the head of
/// statically-empty comprehensions (never evaluated).
fn skeleton(ty: &Type) -> NormalValue {
    match ty {
        Type::Atom | Type::Bottom => NormalValue::Atom(AtomTerm::Const(Atom::str("\u{22a5}"))),
        Type::Record(fields) => {
            NormalValue::Record(fields.iter().map(|(f, t)| (*f, skeleton(t))).collect())
        }
        Type::Set(elem) => NormalValue::Set(Comprehension {
            gens: vec![],
            conds: vec![],
            unsat: true,
            head: Box::new(skeleton(elem)),
        }),
    }
}

/// Direct evaluation of a comprehension over a flat relational database —
/// the reference for "normalization preserves semantics" (property-tested
/// against [`crate::eval::evaluate`]).
///
/// Columns are resolved *positionally* through the flat [`co_cq::Schema`], since
/// relation tuples are positional while normal-form terms name attributes.
pub fn eval_comprehension(
    c: &Comprehension,
    db: &Database,
    schema: &co_cq::Schema,
) -> Result<Value, NormError> {
    eval_comp_in(c, db, schema, &BTreeMap::new())
}

/// Ambient bindings: generator variable → (its relation, its tuple).
type CompEnv = BTreeMap<Var, (RelName, Vec<Atom>)>;

fn eval_comp_in(
    c: &Comprehension,
    db: &Database,
    schema: &co_cq::Schema,
    env: &CompEnv,
) -> Result<Value, NormError> {
    if c.unsat {
        return Ok(Value::empty_set());
    }
    let mut elems = Vec::new();
    eval_gens(c, &c.gens, db, schema, env.clone(), &mut elems)?;
    Ok(Value::set(elems))
}

fn eval_gens(
    c: &Comprehension,
    remaining: &[(Var, RelName)],
    db: &Database,
    schema: &co_cq::Schema,
    env: CompEnv,
    out: &mut Vec<Value>,
) -> Result<(), NormError> {
    match remaining.split_first() {
        None => {
            for (a, b) in &c.conds {
                if atom_of(a, schema, &env)? != atom_of(b, schema, &env)? {
                    return Ok(());
                }
            }
            out.push(eval_head(&c.head, db, schema, &env)?);
            Ok(())
        }
        Some((&(gvar, rel), rest)) => {
            let relation = db.relation(rel);
            for tuple in relation.iter_sorted() {
                let mut env2 = env.clone();
                env2.insert(gvar, (rel, tuple.clone()));
                eval_gens(c, rest, db, schema, env2, out)?;
            }
            Ok(())
        }
    }
}

fn atom_of(t: &AtomTerm, schema: &co_cq::Schema, env: &CompEnv) -> Result<Atom, NormError> {
    match t {
        AtomTerm::Const(a) => Ok(*a),
        AtomTerm::Col { var, field } => {
            let (rel, tuple) =
                env.get(var).ok_or_else(|| NormError::new(format!("unbound generator `{var}`")))?;
            let pos = match field {
                None => 0,
                Some(f) => schema
                    .relation(*rel)
                    .and_then(|rs| rs.position(*f))
                    .ok_or_else(|| NormError::new(format!("no column `{f}` in `{rel}`")))?,
            };
            tuple
                .get(pos)
                .copied()
                .ok_or_else(|| NormError::new(format!("column {pos} out of range in `{rel}`")))
        }
    }
}

fn eval_head(
    head: &NormalValue,
    db: &Database,
    schema: &co_cq::Schema,
    env: &CompEnv,
) -> Result<Value, NormError> {
    match head {
        NormalValue::Atom(t) => Ok(Value::Atom(atom_of(t, schema, env)?)),
        NormalValue::Record(fields) => {
            let mut out = Vec::with_capacity(fields.len());
            for (f, v) in fields {
                out.push((*f, eval_head(v, db, schema, env)?));
            }
            Value::record(out).map_err(|e| NormError::new(e.to_string()))
        }
        NormalValue::Set(c) => eval_comp_in(c, db, schema, env),
    }
}

impl Comprehension {
    /// Total number of set nodes (comprehensions) in this normal form —
    /// the paper's `m` in "encoded as m conjunctive queries".
    pub fn set_node_count(&self) -> usize {
        fn count_nv(nv: &NormalValue) -> usize {
            match nv {
                NormalValue::Atom(_) => 0,
                NormalValue::Record(fields) => fields.iter().map(|(_, v)| count_nv(v)).sum(),
                NormalValue::Set(c) => c.set_node_count(),
            }
        }
        1 + count_nv(&self.head)
    }

    /// Set-nesting depth of the normal form.
    pub fn depth(&self) -> usize {
        fn depth_nv(nv: &NormalValue) -> usize {
            match nv {
                NormalValue::Atom(_) => 0,
                NormalValue::Record(fields) => {
                    fields.iter().map(|(_, v)| depth_nv(v)).max().unwrap_or(0)
                }
                NormalValue::Set(c) => c.depth(),
            }
        }
        1 + depth_nv(&self.head)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{evaluate, CoDatabase};
    use crate::parse::parse_coql;
    use co_cq::Schema;

    fn setup() -> (CoqlSchema, co_cq::Schema, Database) {
        let flat = Schema::with_relations(&[("R", &["A", "B"]), ("S", &["C"])]);
        let coql = CoqlSchema::from_flat(&flat);
        let db =
            Database::from_ints(&[("R", &[&[1, 10], &[1, 11], &[2, 20]]), ("S", &[&[10], &[20]])]);
        (coql, flat, db)
    }

    fn check(src: &str) {
        let (coql_schema, flat_schema, db) = setup();
        let e = parse_coql(src).unwrap();
        let c = normalize(&e, &coql_schema).unwrap();
        let direct = evaluate(&e, &CoDatabase::from_flat(&db, &flat_schema)).unwrap();
        let via_nf = eval_comprehension(&c, &db, &flat_schema).unwrap();
        assert_eq!(direct, via_nf, "{src}:\n direct {direct}\n normal {via_nf}");
    }

    #[test]
    fn flat_select_normalizes() {
        check("select x.B from x in R where x.A = 1");
    }

    #[test]
    fn nested_generator_unfolds() {
        check("select y from y in (select x.B from x in R)");
    }

    #[test]
    fn nested_set_in_head_stays_nested() {
        check("select [a: x.A, g: (select y.B from y in R where y.A = x.A)] from x in R");
    }

    #[test]
    fn flatten_merges_layers() {
        check("flatten(select (select y.C from y in S where y.C = x.B) from x in R)");
    }

    #[test]
    fn singleton_and_empty_normalize() {
        check("{3}");
        check("select {x.A} from x in R");
        check("select z from z in {}");
        check("flatten({})");
    }

    #[test]
    fn empty_generator_makes_unsat() {
        let (coql_schema, _, _) = setup();
        let e = parse_coql("select z from z in {}").unwrap();
        let c = normalize(&e, &coql_schema).unwrap();
        assert!(c.unsat);
    }

    #[test]
    fn depth_and_node_count() {
        let (coql_schema, _, _) = setup();
        let e =
            parse_coql("select [a: x.A, g: (select y.B from y in R where y.A = x.A)] from x in R")
                .unwrap();
        let c = normalize(&e, &coql_schema).unwrap();
        assert_eq!(c.depth(), 2);
        assert_eq!(c.set_node_count(), 2);
    }

    #[test]
    fn product_of_relations() {
        check("select [l: x.A, r: y.C] from x in R, y in S");
        check("select [l: x.A, r: y.C] from x in R, y in S where x.B = y.C");
    }

    #[test]
    fn constants_in_heads_and_conds() {
        check("select [k: 7, v: x.A] from x in R where x.A = 1");
        check("select x.A from x in R where 1 = 1");
        check("select x.A from x in R where 1 = 2");
    }
}
