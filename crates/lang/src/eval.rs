//! The COQL evaluator (comprehension semantics of \[7\]).
//!
//! Evaluation is over a [`CoDatabase`] — relation names bound to
//! complex-object values. The semantics is the standard set-monad
//! comprehension semantics: `select H from x in E where C` is
//! `{ H(x) | x ∈ E, C(x) }`. This evaluator is the *reference semantics*
//! against which normalization, flattening, and the containment deciders
//! are validated.

use std::collections::BTreeMap;
use std::fmt;

use co_cq::{Database, RelName, Schema, Var};
use co_object::Value;

use crate::ast::Expr;

/// A database of complex objects: relation name → (set) value.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CoDatabase {
    relations: BTreeMap<RelName, Value>,
}

impl CoDatabase {
    /// The empty database.
    pub fn new() -> CoDatabase {
        CoDatabase::default()
    }

    /// Binds a relation name to a set value.
    pub fn insert(&mut self, name: &str, value: Value) {
        assert!(value.as_set().is_some(), "relation `{name}` must be a set value");
        self.relations.insert(RelName::new(name), value);
    }

    /// Builder-style [`CoDatabase::insert`].
    pub fn with(mut self, name: &str, value: Value) -> CoDatabase {
        self.insert(name, value);
        self
    }

    /// Reads a relation; absent relations read as the empty set.
    pub fn relation(&self, name: RelName) -> Value {
        self.relations.get(&name).cloned().unwrap_or_else(Value::empty_set)
    }

    /// Imports a flat relational database under a flat schema.
    pub fn from_flat(db: &Database, schema: &Schema) -> CoDatabase {
        let mut out = CoDatabase::new();
        for rel in schema.iter() {
            if let Some(v) = db.relation_as_value(schema, rel.name) {
                out.relations.insert(rel.name, v);
            }
        }
        out
    }

    /// Iterates over relations in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&RelName, &Value)> {
        self.relations.iter()
    }
}

/// A runtime evaluation error (ill-typed program reaching the evaluator).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvalError {
    /// Description of the failure.
    pub message: String,
}

impl EvalError {
    fn new(message: impl Into<String>) -> EvalError {
        EvalError { message: message.into() }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "evaluation error: {}", self.message)
    }
}

impl std::error::Error for EvalError {}

/// Evaluates a closed COQL expression.
pub fn evaluate(expr: &Expr, db: &CoDatabase) -> Result<Value, EvalError> {
    eval(expr, db, &BTreeMap::new())
}

/// Evaluates an expression under an initial variable environment (used by
/// the algebra `map` operator, whose body has one free variable).
pub fn evaluate_with_env(
    expr: &Expr,
    db: &CoDatabase,
    env: &BTreeMap<Var, Value>,
) -> Result<Value, EvalError> {
    eval(expr, db, env)
}

fn eval(expr: &Expr, db: &CoDatabase, env: &BTreeMap<Var, Value>) -> Result<Value, EvalError> {
    match expr {
        Expr::Const(a) => Ok(Value::Atom(*a)),
        Expr::Var(v) => {
            env.get(v).cloned().ok_or_else(|| EvalError::new(format!("unbound variable `{v}`")))
        }
        Expr::Rel(r) => Ok(db.relation(*r)),
        Expr::Record(fields) => {
            let mut out = Vec::with_capacity(fields.len());
            for (name, e) in fields {
                out.push((*name, eval(e, db, env)?));
            }
            Value::record(out).map_err(|e| EvalError::new(e.to_string()))
        }
        Expr::Proj(e, field) => {
            let v = eval(e, db, env)?;
            v.as_record()
                .and_then(|r| r.get(*field).cloned())
                .ok_or_else(|| EvalError::new(format!("no field `{field}` in {v}")))
        }
        Expr::Singleton(e) => Ok(Value::singleton(eval(e, db, env)?)),
        Expr::EmptySet(_) => Ok(Value::empty_set()),
        Expr::Flatten(e) => {
            let v = eval(e, db, env)?;
            let outer =
                v.as_set().ok_or_else(|| EvalError::new(format!("flatten of non-set {v}")))?;
            let mut elems = Vec::new();
            for inner in outer.iter() {
                let s = inner
                    .as_set()
                    .ok_or_else(|| EvalError::new(format!("flatten of set of non-sets {v}")))?;
                elems.extend(s.iter().cloned());
            }
            Ok(Value::set(elems))
        }
        Expr::Select { head, bindings, conds } => {
            let mut results = Vec::new();
            select_rec(head, bindings, conds, db, env.clone(), &mut results)?;
            Ok(Value::set(results))
        }
    }
}

fn select_rec(
    head: &Expr,
    bindings: &[(Var, Expr)],
    conds: &[(Expr, Expr)],
    db: &CoDatabase,
    env: BTreeMap<Var, Value>,
    out: &mut Vec<Value>,
) -> Result<(), EvalError> {
    match bindings.split_first() {
        None => {
            for (a, b) in conds {
                let va = eval(a, db, &env)?;
                let vb = eval(b, db, &env)?;
                if va.as_atom().is_none() || vb.as_atom().is_none() {
                    return Err(EvalError::new(format!(
                        "non-atomic equality {va} = {vb} (ill-typed query)"
                    )));
                }
                if va != vb {
                    return Ok(());
                }
            }
            out.push(eval(head, db, &env)?);
            Ok(())
        }
        Some(((v, gen), rest)) => {
            let set = eval(gen, db, &env)?;
            let set = set
                .as_set()
                .ok_or_else(|| EvalError::new(format!("generator `{v}` over non-set")))?;
            for elem in set.iter() {
                let mut env2 = env.clone();
                env2.insert(*v, elem.clone());
                select_rec(head, rest, conds, db, env2, out)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_object::parse_value;

    fn db() -> CoDatabase {
        CoDatabase::new()
            .with("R", parse_value("{[A: 1, B: 10], [A: 1, B: 11], [A: 2, B: 20]}").unwrap())
            .with("S", parse_value("{10, 11}").unwrap())
    }

    #[test]
    fn select_projects_and_filters() {
        let e = Expr::Select {
            head: Box::new(Expr::var("x").proj("B")),
            bindings: vec![(Var::new("x"), Expr::rel("R"))],
            conds: vec![(Expr::var("x").proj("A"), Expr::int(1))],
        };
        assert_eq!(evaluate(&e, &db()).unwrap().to_string(), "{10, 11}");
    }

    #[test]
    fn nested_select_builds_groups() {
        // select [a: x.A, g: (select y.B from y in R where y.A = x.A)] from x in R
        let inner = Expr::Select {
            head: Box::new(Expr::var("y").proj("B")),
            bindings: vec![(Var::new("y"), Expr::rel("R"))],
            conds: vec![(Expr::var("y").proj("A"), Expr::var("x").proj("A"))],
        };
        let outer = Expr::Select {
            head: Box::new(Expr::record(vec![("a", Expr::var("x").proj("A")), ("g", inner)])),
            bindings: vec![(Var::new("x"), Expr::rel("R"))],
            conds: vec![],
        };
        let v = evaluate(&outer, &db()).unwrap();
        assert_eq!(v.to_string(), "{[a: 1, g: {10, 11}], [a: 2, g: {20}]}");
    }

    #[test]
    fn cartesian_product_via_two_generators() {
        let e = Expr::Select {
            head: Box::new(Expr::record(vec![
                ("l", Expr::var("x").proj("A")),
                ("r", Expr::var("s")),
            ])),
            bindings: vec![(Var::new("x"), Expr::rel("R")), (Var::new("s"), Expr::rel("S"))],
            conds: vec![],
        };
        let v = evaluate(&e, &db()).unwrap();
        // 2 distinct A values × 2 S atoms = 4 records.
        assert_eq!(v.as_set().unwrap().len(), 4);
    }

    #[test]
    fn empty_generator_gives_empty_result() {
        let e = Expr::Select {
            head: Box::new(Expr::var("x")),
            bindings: vec![(Var::new("x"), Expr::rel("Missing"))],
            conds: vec![],
        };
        assert_eq!(evaluate(&e, &db()).unwrap(), Value::empty_set());
    }

    #[test]
    fn flatten_and_singleton() {
        let e = Expr::rel("S").singleton().flatten();
        assert_eq!(evaluate(&e, &db()).unwrap().to_string(), "{10, 11}");
        let e2 = Expr::int(5).singleton();
        assert_eq!(evaluate(&e2, &db()).unwrap().to_string(), "{5}");
        assert_eq!(
            evaluate(&Expr::EmptySet(co_object::Type::Bottom), &db()).unwrap(),
            Value::empty_set()
        );
    }

    #[test]
    fn later_generators_see_earlier_bindings() {
        // select y from x in {S}, y in x  — x is bound to the set S itself.
        let e = Expr::Select {
            head: Box::new(Expr::var("y")),
            bindings: vec![
                (Var::new("x"), Expr::rel("S").singleton()),
                (Var::new("y"), Expr::var("x")),
            ],
            conds: vec![],
        };
        assert_eq!(evaluate(&e, &db()).unwrap().to_string(), "{10, 11}");
    }

    #[test]
    fn flat_import_matches_relational_view() {
        let schema = Schema::with_relations(&[("T", &["A"])]);
        let flat = Database::from_ints(&[("T", &[&[7], &[8]])]);
        let codb = CoDatabase::from_flat(&flat, &schema);
        assert_eq!(codb.relation(RelName::new("T")).to_string(), "{[A: 7], [A: 8]}");
    }

    #[test]
    fn evaluation_errors_are_reported() {
        let e = Expr::var("free");
        assert!(evaluate(&e, &db()).is_err());
        let e2 = Expr::int(1).flatten();
        assert!(evaluate(&e2, &db()).is_err());
        let e3 = Expr::int(1).proj("A");
        assert!(evaluate(&e3, &db()).is_err());
    }
}
