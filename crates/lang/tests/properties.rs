//! Property tests for COQL: type soundness, normalization correctness,
//! and parser round-trips, over randomly generated expressions.

use std::collections::BTreeMap;

use co_cq::{Database, Schema, Var};
use co_lang::{
    eval_comprehension, evaluate, normalize, parse_coql, type_check, CoDatabase, CoqlSchema, Expr,
};
use co_object::check_type;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn flat_schema() -> Schema {
    Schema::with_relations(&[("R", &["A", "B"]), ("S", &["C"])])
}

/// A random well-typed COQL query over the fixed flat schema. Generates
/// selects with 1–2 generators, equality conditions, and with probability
/// a nested select / singleton / empty set in the head.
fn random_expr(seed: u64) -> Expr {
    let mut rng = StdRng::seed_from_u64(seed);
    let x = Var::new("x");
    let y = Var::new("y");

    let mut bindings = vec![(x, Expr::rel("R"))];
    let mut conds = Vec::new();
    if rng.gen_bool(0.4) {
        bindings.push((y, Expr::rel("S")));
        if rng.gen_bool(0.6) {
            conds.push((Expr::var("y").proj("C"), Expr::var("x").proj("B")));
        }
    }
    if rng.gen_bool(0.3) {
        conds.push((Expr::var("x").proj("A"), Expr::int(rng.gen_range(0..3))));
    }

    let atom_head =
        if rng.gen_bool(0.5) { Expr::var("x").proj("A") } else { Expr::var("x").proj("B") };
    let head = match rng.gen_range(0..5) {
        0 => atom_head,
        1 => Expr::record(vec![("a", atom_head), ("b", Expr::var("x").proj("B"))]),
        2 => Expr::record(vec![("a", atom_head.clone()), ("s", atom_head.singleton())]),
        3 => {
            let z = Var::new("z");
            let inner = Expr::Select {
                head: Box::new(Expr::var("z").proj("C")),
                bindings: vec![(z, Expr::rel("S"))],
                conds: if rng.gen_bool(0.7) {
                    vec![(Expr::var("z").proj("C"), Expr::var("x").proj("B"))]
                } else {
                    vec![]
                },
            };
            Expr::record(vec![("a", atom_head), ("g", inner)])
        }
        _ => Expr::record(vec![("a", atom_head), ("e", Expr::EmptySet(co_object::Type::Bottom))]),
    };
    Expr::Select { head: Box::new(head), bindings, conds }
}

fn random_db(seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
    let mut db = Database::new();
    for _ in 0..rng.gen_range(0..6) {
        db.insert(
            co_cq::RelName::new("R"),
            vec![
                co_object::Atom::int(rng.gen_range(0..3)),
                co_object::Atom::int(rng.gen_range(0..3)),
            ],
        );
    }
    for _ in 0..rng.gen_range(0..4) {
        db.insert(co_cq::RelName::new("S"), vec![co_object::Atom::int(rng.gen_range(0..3))]);
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Type soundness: evaluation produces a value of the inferred type.
    #[test]
    fn evaluation_respects_types(seed in any::<u64>(), db_seed in any::<u64>()) {
        let schema = flat_schema();
        let coql_schema = CoqlSchema::from_flat(&schema);
        let e = random_expr(seed);
        let ty = type_check(&e, &coql_schema).unwrap_or_else(|err| panic!("{e}: {err}"));
        let db = CoDatabase::from_flat(&random_db(db_seed), &schema);
        let v = evaluate(&e, &db).unwrap_or_else(|err| panic!("{e}: {err}"));
        prop_assert!(check_type(&v, &ty).is_ok(), "{e} : {ty} but value {v}");
    }

    /// Normalization preserves semantics (the monad-law rewrites).
    #[test]
    fn normalization_preserves_semantics(seed in any::<u64>(), db_seed in any::<u64>()) {
        let schema = flat_schema();
        let coql_schema = CoqlSchema::from_flat(&schema);
        let e = random_expr(seed);
        let nf = normalize(&e, &coql_schema).unwrap_or_else(|err| panic!("{e}: {err}"));
        let flat_db = random_db(db_seed);
        let direct = evaluate(&e, &CoDatabase::from_flat(&flat_db, &schema)).unwrap();
        let via_nf = eval_comprehension(&nf, &flat_db, &schema).unwrap();
        prop_assert_eq!(direct, via_nf, "{}", e);
    }

    /// Display → parse is the identity on ASTs (modulo nothing: the
    /// printer emits the grammar exactly).
    #[test]
    fn display_parse_roundtrip(seed in any::<u64>()) {
        let e = random_expr(seed);
        let text = e.to_string();
        let back = parse_coql(&text).unwrap_or_else(|err| panic!("{text}: {err}"));
        prop_assert_eq!(&back, &e, "{}", text);
    }

    /// Monotonicity: COQL is a positive language — growing the database
    /// grows the answer in the Hoare order.
    #[test]
    fn evaluation_is_monotone(seed in any::<u64>(), db_seed in any::<u64>()) {
        let schema = flat_schema();
        let e = random_expr(seed);
        let small = random_db(db_seed);
        let big = small.union(&random_db(db_seed.wrapping_add(1)));
        let v_small = evaluate(&e, &CoDatabase::from_flat(&small, &schema)).unwrap();
        let v_big = evaluate(&e, &CoDatabase::from_flat(&big, &schema)).unwrap();
        prop_assert!(
            co_object::hoare_leq(&v_small, &v_big),
            "{e}\n small: {v_small}\n big:   {v_big}"
        );
    }

    /// The empty-set analysis is sound: queries judged Free never produce
    /// a value containing an empty set on any tested database.
    #[test]
    fn emptiness_analysis_is_sound(seed in any::<u64>(), db_seed in any::<u64>()) {
        use co_lang::{empty_set_status, EmptySetStatus};
        let schema = flat_schema();
        let coql_schema = CoqlSchema::from_flat(&schema);
        let e = random_expr(seed);
        let nf = normalize(&e, &coql_schema).unwrap();
        if empty_set_status(&nf) == EmptySetStatus::Free {
            let db = CoDatabase::from_flat(&random_db(db_seed), &schema);
            let v = evaluate(&e, &db).unwrap();
            // The root set may be empty; inner sets may not.
            let inner_ok = v
                .as_set()
                .map(|s| s.iter().all(|elem| !elem.contains_empty_set()))
                .unwrap_or(true);
            prop_assert!(inner_ok, "{e} judged Free but produced {v}");
        }
    }

    /// Variable environments are threaded correctly: evaluating under an
    /// explicit environment matches wrapping in a singleton generator.
    #[test]
    fn env_evaluation_matches_generator_binding(a in 0i64..5) {
        let schema = flat_schema();
        let db = CoDatabase::from_flat(&random_db(a as u64), &schema);
        let body = Expr::var("w").singleton();
        let mut env = BTreeMap::new();
        env.insert(Var::new("w"), co_object::Value::int(a));
        let via_env = co_lang::evaluate_with_env(&body, &db, &env).unwrap();
        let wrapped = Expr::Select {
            head: Box::new(body),
            bindings: vec![(Var::new("w"), Expr::int(a).singleton())],
            conds: vec![],
        };
        let via_select = evaluate(&wrapped, &db).unwrap();
        let expected = via_select.as_set().unwrap().iter().next().unwrap().clone();
        prop_assert_eq!(via_env, expected);
    }
}
