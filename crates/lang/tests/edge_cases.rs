//! Edge cases for the COQL front end.

use co_lang::{evaluate, normalize, parse_coql, type_check, CoDatabase, CoqlSchema, Expr};
use co_object::{parse_value, Field, Type, Value};

fn schema() -> CoqlSchema {
    CoqlSchema::new()
        .with("R", Type::flat_relation(&[Field::new("A"), Field::new("B")]))
        .with("Nums", Type::set(Type::Atom))
}

fn db() -> CoDatabase {
    CoDatabase::new()
        .with("R", parse_value("{[A: 1, B: 10], [A: 2, B: 20]}").unwrap())
        .with("Nums", parse_value("{10, 20, 30}").unwrap())
}

#[test]
fn multiline_queries_parse() {
    let src = "select [a: x.A,\n        g: (select y.B\n            from y in R\n            where y.A = x.A)]\nfrom x in R\nwhere x.B = 10";
    let e = parse_coql(src).unwrap();
    let v = evaluate(&e, &db()).unwrap();
    assert_eq!(v.to_string(), "{[a: 1, g: {10}]}");
}

#[test]
fn generators_over_atom_relations() {
    let e = parse_coql("select n from n in Nums where n = 20").unwrap();
    assert_eq!(type_check(&e, &schema()).unwrap(), Type::set(Type::Atom));
    assert_eq!(evaluate(&e, &db()).unwrap().to_string(), "{20}");
    // Normalization handles atom-element relations too.
    let nf = normalize(&e, &schema()).unwrap();
    let flat = co_cq::Schema::with_relations(&[("R", &["A", "B"]), ("Nums", &["val"])]);
    let flat_db = co_cq::Database::from_ints(&[("Nums", &[&[10], &[20], &[30]])]);
    let via = co_lang::eval_comprehension(&nf, &flat_db, &flat).unwrap();
    assert_eq!(via.to_string(), "{20}");
}

#[test]
fn parenthesized_select_as_generator() {
    let e = parse_coql("select z from z in (select x.B from x in R)").unwrap();
    assert_eq!(evaluate(&e, &db()).unwrap().to_string(), "{10, 20}");
}

#[test]
fn deep_projection_requires_record_types() {
    let e = parse_coql("select x.A.A from x in R").unwrap();
    assert!(type_check(&e, &schema()).is_err());
}

#[test]
fn shadowing_rebinding_in_nested_selects() {
    // The inner `x` shadows the outer one; semantics must use the inner.
    let e = parse_coql("select [outer: x.A, inner: (select x.B from x in R)] from x in R").unwrap();
    let v = evaluate(&e, &db()).unwrap();
    // Every element's `inner` is the full B-set.
    for elem in v.as_set().unwrap().iter() {
        let inner = elem.as_record().unwrap().get(Field::new("inner")).unwrap();
        assert_eq!(inner.to_string(), "{10, 20}");
    }
}

#[test]
fn where_clause_between_bound_variables() {
    let e = parse_coql("select [l: x.A, r: y.A] from x in R, y in R where x.B = y.B").unwrap();
    let v = evaluate(&e, &db()).unwrap();
    // Only the diagonal pairs survive.
    assert_eq!(v.as_set().unwrap().len(), 2);
}

#[test]
fn constants_of_both_kinds_in_conditions() {
    let e = parse_coql("select x.A from x in R where x.B = 10 and 1 = 1").unwrap();
    assert_eq!(evaluate(&e, &db()).unwrap().to_string(), "{1}");
    let never = parse_coql("select x.A from x in R where 1 = 2").unwrap();
    assert_eq!(evaluate(&never, &db()).unwrap(), Value::empty_set());
}

#[test]
fn type_errors_cover_every_construct() {
    let cases = [
        ("select x from x in 3", "non-set"),
        ("select x.Z from x in R", "no field"),
        ("select x from x in R where x = x", "atomic"),
        ("flatten(R)", "set of sets"),
        ("select y from y in Missing", "unknown relation"),
    ];
    for (src, needle) in cases {
        let e = parse_coql(src).unwrap();
        let err = type_check(&e, &schema()).unwrap_err();
        assert!(
            err.message.to_lowercase().contains(&needle.to_lowercase()),
            "{src}: expected `{needle}` in `{err}`"
        );
    }
}

#[test]
fn duplicate_record_fields_rejected() {
    let e = Expr::Record(vec![(Field::new("a"), Expr::int(1)), (Field::new("a"), Expr::int(2))]);
    assert!(type_check(&e, &schema()).is_err());
    assert!(evaluate(&e, &db()).is_err());
}

#[test]
fn empty_relation_reads_as_empty_set() {
    let e = parse_coql("select x.A from x in Absent").unwrap();
    // Type checking rejects undeclared relations…
    assert!(type_check(&e, &schema()).is_err());
    // …but the evaluator treats them as empty (monotone default): the
    // projection inside the head is never reached.
    assert_eq!(evaluate(&e, &db()).unwrap(), Value::empty_set());
}

#[test]
fn normalization_rejects_nested_schema() {
    let nested = CoqlSchema::new().with("P", Type::set(Type::set(Type::Atom)));
    let e = parse_coql("select x from x in P").unwrap();
    let err = normalize(&e, &nested).unwrap_err();
    assert!(err.message.contains("flat"), "{err}");
}
