//! Property tests for the algebra fragments: the COQL translations
//! preserve semantics on random expressions and random databases — the
//! executable form of §3.1's "COQL is equivalent to these fragments".

use co_algebra::{to_coql, AlgExpr, NuOp, NuSeq};
use co_lang::{CoDatabase, CoqlSchema};
use co_object::{Field, Type, Value};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn schema() -> CoqlSchema {
    CoqlSchema::new()
        .with("R", Type::flat_relation(&[Field::new("A"), Field::new("B")]))
        .with("T", Type::flat_relation(&[Field::new("C")]))
}

fn random_db(seed: u64) -> CoDatabase {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut r = Vec::new();
    for _ in 0..rng.gen_range(0..5) {
        r.push(
            Value::record(vec![
                (Field::new("A"), Value::int(rng.gen_range(0..3))),
                (Field::new("B"), Value::int(rng.gen_range(0..3))),
            ])
            .unwrap(),
        );
    }
    let mut t = Vec::new();
    for _ in 0..rng.gen_range(0..4) {
        t.push(Value::record(vec![(Field::new("C"), Value::int(rng.gen_range(0..3)))]).unwrap());
    }
    CoDatabase::new().with("R", Value::set(r)).with("T", Value::set(t))
}

/// A random algebra expression over the fixed schema, flat-typed so that
/// every operator applies.
fn random_alg(seed: u64) -> AlgExpr {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut e = AlgExpr::rel("R");
    for _ in 0..rng.gen_range(0..3) {
        e = match rng.gen_range(0..6) {
            0 => AlgExpr::SelectEq(Box::new(e), Field::new("A"), Field::new("B")),
            1 => AlgExpr::SelectConst(
                Box::new(e),
                Field::new("A"),
                co_object::Atom::int(rng.gen_range(0..3)),
            ),
            2 => AlgExpr::Project(Box::new(e), vec![Field::new("A"), Field::new("B")]),
            3 => AlgExpr::Flatten(Box::new(AlgExpr::Singleton(Box::new(e)))),
            4 => AlgExpr::Nest(Box::new(e), vec![Field::new("B")], Field::new("g")).unnest("g"),
            _ => e,
        };
    }
    if rng.gen_bool(0.3) {
        e = AlgExpr::Product(Box::new(e), Box::new(AlgExpr::rel("T")));
    }
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// §3.1 executable: translated algebra expressions evaluate identically
    /// to their direct algebra semantics.
    #[test]
    fn translation_preserves_semantics(seed in any::<u64>(), db_seed in any::<u64>()) {
        let schema = schema();
        let alg = random_alg(seed);
        let db = random_db(db_seed);
        let direct = match alg.evaluate(&db) {
            Ok(v) => v,
            Err(_) => return Ok(()), // attribute collisions etc.
        };
        let (coql, ty) = match to_coql(&alg, &schema) {
            Ok(x) => x,
            Err(_) => return Ok(()),
        };
        let via = co_lang::evaluate(&coql, &db).unwrap_or_else(|e| panic!("{coql}: {e}"));
        prop_assert_eq!(&direct, &via, "{:?}", alg);
        prop_assert!(co_object::check_type(&via, &ty).is_ok());
    }

    /// nest;unnest is the identity on any relation value (nest never drops
    /// rows; unnest never drops non-empty groups).
    #[test]
    fn nest_unnest_identity_on_values(db_seed in any::<u64>()) {
        let db = random_db(db_seed);
        let base = db.relation(co_cq::RelName::new("R"));
        let seq = NuSeq::new("R", vec![NuOp::nest(&["B"], "g"), NuOp::unnest("g")]);
        let out = seq.apply(&base).unwrap();
        prop_assert_eq!(out, base);
    }

    /// The nest translation never produces empty sets (the §4 hypothesis
    /// for the GPvG result) — checked on random data.
    #[test]
    fn nest_results_are_empty_set_free(db_seed in any::<u64>()) {
        let db = random_db(db_seed);
        let alg = AlgExpr::rel("R").nest(&["B"], "g");
        let v = alg.evaluate(&db).unwrap();
        // The root set may be empty (empty input); §4 is about *inner* sets.
        let inner_ok = v
            .as_set()
            .map(|s| s.iter().all(|e| !e.contains_empty_set()))
            .unwrap_or(false);
        prop_assert!(inner_ok, "{}", v);
        let (coql, _) = to_coql(&alg, &schema()).unwrap();
        let via = co_lang::evaluate(&coql, &db).unwrap();
        prop_assert_eq!(v, via);
    }

    /// Sequence equivalence decisions agree with per-database evaluation:
    /// when the decider says two sequences are equivalent, they produce the
    /// same value on random bases; when it says no, some random base
    /// separates them (checked statistically — the canonical separator is
    /// small for these shapes).
    #[test]
    fn sequence_decisions_match_values(db_seed in any::<u64>()) {
        let flat = co_cq::Schema::with_relations(&[("R", &["A", "B"])]);
        let base = random_db(db_seed).relation(co_cq::RelName::new("R"));
        let pairs = [
            (
                NuSeq::new("R", vec![NuOp::nest(&["B"], "g"), NuOp::unnest("g")]),
                NuSeq::new("R", vec![]),
            ),
            (
                NuSeq::new("R", vec![NuOp::nest(&["B"], "g")]),
                NuSeq::new("R", vec![NuOp::nest(&["B"], "g")]),
            ),
            (
                NuSeq::new("R", vec![NuOp::nest(&["B"], "g")]),
                NuSeq::new("R", vec![NuOp::nest(&["A"], "g")]),
            ),
        ];
        for (s1, s2) in pairs {
            let decided = co_algebra::equivalent_sequences(&s1, &s2, &flat).unwrap();
            let v1 = s1.apply(&base).unwrap();
            let v2 = s2.apply(&base).unwrap();
            if decided {
                prop_assert_eq!(&v1, &v2, "decided equivalent: {} vs {}", s1, s2);
            }
            if v1 != v2 {
                prop_assert!(!decided, "separated by data but decided equivalent");
            }
        }
    }
}
