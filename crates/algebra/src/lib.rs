//! # co-algebra — the nested relational algebra fragments of §3.1
//!
//! *Levy & Suciu, PODS 1997* identifies COQL with two algebra fragments:
//! the Abiteboul–Beeri fragment {product, flatten, σ=, map, singleton} and
//! the Thomas–Fischer fragment {π, σ, ×, **outernest**, unnest}. This crate
//! implements both, value-level ([`ops`]) and as an AST ([`AlgExpr`]) with
//! a type-directed translation into COQL ([`to_coql`]) that witnesses the
//! equivalence — property-tested so that `⟦to_coql(e)⟧ = ⟦e⟧`.
//!
//! It also carries the paper's §4 application: deciding equivalence of
//! **`nest;unnest` sequences** ([`equivalent_sequences`]), NP-complete when
//! nesting is governed by atomic attributes — the partial answer to the
//! open problem of Gyssens, Paredaens & Van Gucht.

#![warn(missing_docs)]

pub mod expr;
pub mod nestseq;
pub mod ops;

pub use expr::{to_coql, AlgExpr, TranslateError};
pub use nestseq::{equivalent_sequences, NuError, NuOp, NuSeq};
pub use ops::{
    flatten, map, nest, outernest, product, project, select_const, select_eq, singleton, unnest,
    AlgError,
};
