//! Equivalence of `nest;unnest` sequences — the paper's partial answer to
//! the open problem of Gyssens, Paredaens & Van Gucht \[24\] (§4).
//!
//! "Gyssens, Paredaens, and Van Gucht ask the question whether equivalence
//! of two sequences of nest;unnest operations is decidable. It follows that
//! this problem is **NP-complete** if in every nest operator the nesting is
//! governed only by atomic attributes" (footnote 3).
//!
//! The route, exactly as the paper's structure suggests:
//!
//! 1. translate each sequence applied to the base relation into COQL
//!    ([`crate::expr::to_coql`]) — possible precisely when every nest
//!    groups by atomic attributes, which is the theorem's hypothesis;
//! 2. `nest` answers never contain empty sets (every group is witnessed by
//!    the row that created it) and `unnest` only removes sets, so both
//!    sides sit in the paper's §4 no-empty-sets regime where **weak
//!    equivalence = equivalence** and the check is NP;
//! 3. decide with `co_core::equivalent`.
//!
//! A direct value-level evaluator ([`NuSeq::apply`]) provides the semantic
//! cross-check.

use std::fmt;

use co_core::Equivalence;
use co_lang::{CoqlSchema, Expr};
use co_object::{Field, Value};

use crate::expr::{to_coql, AlgExpr, TranslateError};
use crate::ops::AlgError;

/// One restructuring step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NuOp {
    /// `nest_{X→g}`: collect attributes `X` into a set attribute `g`.
    Nest {
        /// Attributes moved into the new set.
        set_attrs: Vec<Field>,
        /// Name of the new set-valued attribute.
        as_field: Field,
    },
    /// `unnest_g`.
    Unnest {
        /// The set-valued attribute to unnest.
        field: Field,
    },
}

impl NuOp {
    /// Convenience: a nest step.
    pub fn nest(set_attrs: &[&str], as_field: &str) -> NuOp {
        NuOp::Nest {
            set_attrs: set_attrs.iter().map(|a| Field::new(a)).collect(),
            as_field: Field::new(as_field),
        }
    }

    /// Convenience: an unnest step.
    pub fn unnest(field: &str) -> NuOp {
        NuOp::Unnest { field: Field::new(field) }
    }
}

impl fmt::Display for NuOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NuOp::Nest { set_attrs, as_field } => {
                write!(f, "ν_{{")?;
                for (i, a) in set_attrs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, "}}→{as_field}")
            }
            NuOp::Unnest { field } => write!(f, "μ_{field}"),
        }
    }
}

/// A sequence of nest/unnest steps applied to a named base relation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NuSeq {
    /// The base relation the sequence starts from.
    pub base: String,
    /// The steps, applied left to right.
    pub ops: Vec<NuOp>,
}

impl NuSeq {
    /// Builds a sequence.
    pub fn new(base: &str, ops: Vec<NuOp>) -> NuSeq {
        NuSeq { base: base.to_string(), ops }
    }

    /// The sequence as an algebra expression.
    pub fn to_alg(&self) -> AlgExpr {
        let mut e = AlgExpr::rel(&self.base);
        for op in &self.ops {
            e = match op {
                NuOp::Nest { set_attrs, as_field } => {
                    AlgExpr::Nest(Box::new(e), set_attrs.clone(), *as_field)
                }
                NuOp::Unnest { field } => AlgExpr::Unnest(Box::new(e), *field),
            };
        }
        e
    }

    /// Applies the sequence to a concrete base relation value.
    pub fn apply(&self, base: &Value) -> Result<Value, AlgError> {
        let db = co_lang::CoDatabase::new().with(&self.base, base.clone());
        self.to_alg().evaluate(&db)
    }

    /// Translates the sequence to COQL over the given schema.
    pub fn to_coql(&self, schema: &CoqlSchema) -> Result<(Expr, co_object::Type), TranslateError> {
        to_coql(&self.to_alg(), schema)
    }
}

impl fmt::Display for NuSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.base)?;
        for op in &self.ops {
            write!(f, " ; {op}")?;
        }
        Ok(())
    }
}

/// An error from the sequence-equivalence decision.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NuError {
    /// Description.
    pub message: String,
}

impl fmt::Display for NuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "nest/unnest error: {}", self.message)
    }
}

impl std::error::Error for NuError {}

/// Decides whether two `nest;unnest` sequences over the same flat base
/// schema are equivalent (produce equal answers on every base relation).
///
/// Requires every `nest` to group by atomic attributes (footnote 3);
/// otherwise a [`NuError`] explains which step violates the hypothesis.
pub fn equivalent_sequences(
    s1: &NuSeq,
    s2: &NuSeq,
    schema: &co_cq::Schema,
) -> Result<bool, NuError> {
    let coql_schema = CoqlSchema::from_flat(schema);
    let (e1, t1) =
        s1.to_coql(&coql_schema).map_err(|e| NuError { message: format!("{s1}: {e}") })?;
    let (e2, t2) =
        s2.to_coql(&coql_schema).map_err(|e| NuError { message: format!("{s2}: {e}") })?;
    if t1.lub(&t2).is_none() {
        return Ok(false);
    }
    match co_core::equivalent(&e1, &e2, schema).map_err(|e| NuError { message: e.to_string() })? {
        Equivalence::Equivalent => Ok(true),
        Equivalence::NotEquivalent => Ok(false),
        // nest/unnest sequences are empty-set free; the conservative
        // analysis should always reach a definite answer, but fall back to
        // weak equivalence (= equivalence here by §4) defensively.
        Equivalence::WeaklyEquivalentOnly => Ok(true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_cq::Schema;
    use co_object::parse_value;

    fn schema() -> Schema {
        Schema::with_relations(&[("R", &["A", "B", "C"])])
    }

    #[test]
    fn nest_then_unnest_is_identity() {
        // ν then μ on the same attribute restores the relation (nest never
        // creates empty groups, so unnest loses nothing).
        let seq = NuSeq::new("R", vec![NuOp::nest(&["B"], "g"), NuOp::unnest("g")]);
        let id = NuSeq::new("R", vec![]);
        assert!(equivalent_sequences(&seq, &id, &schema()).unwrap());
        // Value-level spot check.
        let base = parse_value("{[A: 1, B: 10, C: 5], [A: 1, B: 11, C: 5]}").unwrap();
        assert_eq!(seq.apply(&base).unwrap(), base);
    }

    #[test]
    fn unnest_then_nest_is_identity_here_too() {
        // μ;ν after a ν: nest(B), unnest(B-set), nest again ≡ nest once.
        let once = NuSeq::new("R", vec![NuOp::nest(&["B"], "g")]);
        let thrice = NuSeq::new(
            "R",
            vec![NuOp::nest(&["B"], "g"), NuOp::unnest("g"), NuOp::nest(&["B"], "g")],
        );
        assert!(equivalent_sequences(&once, &thrice, &schema()).unwrap());
    }

    #[test]
    fn different_groupings_are_inequivalent() {
        let by_b = NuSeq::new("R", vec![NuOp::nest(&["B"], "g")]);
        let by_c = NuSeq::new("R", vec![NuOp::nest(&["C"], "g")]);
        assert!(!equivalent_sequences(&by_b, &by_c, &schema()).unwrap());
    }

    #[test]
    fn nested_nests_with_set_keys_are_rejected() {
        // Second nest groups by a key including the set attribute g:
        // outside footnote 3's hypothesis.
        let s = NuSeq::new("R", vec![NuOp::nest(&["B"], "g"), NuOp::nest(&["C"], "h")]);
        let err = equivalent_sequences(&s, &s, &schema()).unwrap_err();
        assert!(err.message.contains("not atomic"), "{err}");
    }

    #[test]
    fn sequence_of_two_nests_unnested_in_order() {
        // nest B, then unnest: equal to identity; then the display is sane.
        let s = NuSeq::new("R", vec![NuOp::nest(&["B", "C"], "g"), NuOp::unnest("g")]);
        let id = NuSeq::new("R", vec![]);
        assert!(equivalent_sequences(&s, &id, &schema()).unwrap());
        assert_eq!(s.to_string(), "R ; ν_{B,C}→g ; μ_g");
    }

    #[test]
    fn value_level_and_coql_translations_agree() {
        let seqs = [
            NuSeq::new("R", vec![NuOp::nest(&["B"], "g")]),
            NuSeq::new("R", vec![NuOp::nest(&["B", "C"], "g")]),
            NuSeq::new("R", vec![NuOp::nest(&["B"], "g"), NuOp::unnest("g")]),
        ];
        let base =
            parse_value("{[A: 1, B: 10, C: 5], [A: 1, B: 11, C: 6], [A: 2, B: 20, C: 5]}").unwrap();
        let coql_schema = CoqlSchema::from_flat(&schema());
        let db = co_lang::CoDatabase::new().with("R", base.clone());
        for s in &seqs {
            let direct = s.apply(&base).unwrap();
            let (e, _) = s.to_coql(&coql_schema).unwrap();
            let via = co_lang::evaluate(&e, &db).unwrap();
            assert_eq!(direct, via, "{s}");
        }
    }
}
