//! Value-level operations of the nested relational algebras (§3.1).
//!
//! The paper identifies COQL with two algebra fragments:
//!
//! 1. the Abiteboul–Beeri algebra \[1\] fragment **{product, flatten,
//!    selection on equality, map, singleton}**, and
//! 2. the Thomas–Fischer algebra \[40\] fragment **{π, σ_{A=B}, ×,
//!    outernest, unnest}** — nest replaced by `outernest` (Example A.1).
//!
//! This module implements the operators directly on complex-object values
//! (nested relations): the reference semantics against which the COQL
//! translations in [`crate::expr`] are property-tested.
//!
//! **`outernest` reconstruction.** Example A.1 is in the appendix not
//! included with the extended abstract's excerpt; we reconstruct it as
//! *nest with a caller-supplied spine*: `outernest_X→g(R, S)` produces, for
//! each tuple `z̄` of the spine `S` (over `R`'s non-`X` attributes), the
//! record `z̄ ∪ [g: {x̄ | (z̄, x̄) ∈ R}]` — groups **may be empty** for
//! spine tuples unmatched in `R`. This is the variant COQL can express
//! (an inner `select` can be empty) and is exactly why empty sets drive
//! the paper's complexity analysis, while classical `nest` (spine
//! `= π_{z̄}(R)`) never produces empty groups.

use std::collections::BTreeMap;
use std::fmt;

use co_object::{Field, SetValue, Value};

/// An algebra evaluation error (ill-typed operand).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AlgError {
    /// Description.
    pub message: String,
}

impl AlgError {
    pub(crate) fn new(message: impl Into<String>) -> AlgError {
        AlgError { message: message.into() }
    }
}

impl fmt::Display for AlgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "algebra error: {}", self.message)
    }
}

impl std::error::Error for AlgError {}

fn as_relation<'a>(v: &'a Value, op: &str) -> Result<&'a SetValue, AlgError> {
    v.as_set().ok_or_else(|| AlgError::new(format!("{op}: operand is not a set: {v}")))
}

fn as_tuple<'a>(v: &'a Value, op: &str) -> Result<&'a co_object::RecordValue, AlgError> {
    v.as_record().ok_or_else(|| AlgError::new(format!("{op}: element is not a record: {v}")))
}

/// Cartesian product `R × S`: records merged; attribute sets must be
/// disjoint.
pub fn product(r: &Value, s: &Value) -> Result<Value, AlgError> {
    let rs = as_relation(r, "product")?;
    let ss = as_relation(s, "product")?;
    let mut out = Vec::with_capacity(rs.len() * ss.len());
    for a in rs.iter() {
        let ra = as_tuple(a, "product")?;
        for b in ss.iter() {
            let rb = as_tuple(b, "product")?;
            let mut fields: Vec<(Field, Value)> =
                ra.iter().cloned().chain(rb.iter().cloned()).collect();
            fields.sort_by_key(|(f, _)| *f);
            for w in fields.windows(2) {
                if w[0].0 == w[1].0 {
                    return Err(AlgError::new(format!(
                        "product: attribute `{}` occurs on both sides",
                        w[0].0
                    )));
                }
            }
            out.push(Value::record(fields).expect("checked disjoint"));
        }
    }
    Ok(Value::set(out))
}

/// Selection `σ_{A=B}(R)`: keeps tuples whose (atomic) `A` and `B`
/// components are equal.
pub fn select_eq(r: &Value, a: Field, b: Field) -> Result<Value, AlgError> {
    let rs = as_relation(r, "select")?;
    let mut out = Vec::new();
    for t in rs.iter() {
        let rt = as_tuple(t, "select")?;
        let va = rt.get(a).ok_or_else(|| AlgError::new(format!("select: no attribute `{a}`")))?;
        let vb = rt.get(b).ok_or_else(|| AlgError::new(format!("select: no attribute `{b}`")))?;
        if va.as_atom().is_none() || vb.as_atom().is_none() {
            return Err(AlgError::new("select: equality over non-atomic attributes".to_string()));
        }
        if va == vb {
            out.push(t.clone());
        }
    }
    Ok(Value::set(out))
}

/// Selection `σ_{A=c}(R)` against a constant.
pub fn select_const(r: &Value, a: Field, c: co_object::Atom) -> Result<Value, AlgError> {
    let rs = as_relation(r, "select")?;
    let mut out = Vec::new();
    for t in rs.iter() {
        let rt = as_tuple(t, "select")?;
        let va = rt.get(a).ok_or_else(|| AlgError::new(format!("select: no attribute `{a}`")))?;
        if va == &Value::Atom(c) {
            out.push(t.clone());
        }
    }
    Ok(Value::set(out))
}

/// Projection `π_{attrs}(R)`.
pub fn project(r: &Value, attrs: &[Field]) -> Result<Value, AlgError> {
    let rs = as_relation(r, "project")?;
    let mut out = Vec::new();
    for t in rs.iter() {
        let rt = as_tuple(t, "project")?;
        let mut fields = Vec::with_capacity(attrs.len());
        for &a in attrs {
            let v =
                rt.get(a).ok_or_else(|| AlgError::new(format!("project: no attribute `{a}`")))?;
            fields.push((a, v.clone()));
        }
        out.push(Value::record(fields).map_err(|e| AlgError::new(e.to_string()))?);
    }
    Ok(Value::set(out))
}

/// `map(f)(R)`: applies `f` to every element.
pub fn map(
    r: &Value,
    mut f: impl FnMut(&Value) -> Result<Value, AlgError>,
) -> Result<Value, AlgError> {
    let rs = as_relation(r, "map")?;
    let mut out = Vec::with_capacity(rs.len());
    for t in rs.iter() {
        out.push(f(t)?);
    }
    Ok(Value::set(out))
}

/// `flatten(R)`: a set of sets into their union.
pub fn flatten(r: &Value) -> Result<Value, AlgError> {
    let rs = as_relation(r, "flatten")?;
    let mut out = Vec::new();
    for inner in rs.iter() {
        let is = as_relation(inner, "flatten")?;
        out.extend(is.iter().cloned());
    }
    Ok(Value::set(out))
}

/// The singleton constructor.
pub fn singleton(v: &Value) -> Value {
    Value::singleton(v.clone())
}

/// Classical Thomas–Fischer `nest_{X→g}(R)`: groups tuples by the non-`X`
/// attributes, collecting the `X`-projections into a set-valued attribute
/// `g`. Groups are never empty.
pub fn nest(r: &Value, set_attrs: &[Field], new_field: Field) -> Result<Value, AlgError> {
    let rs = as_relation(r, "nest")?;
    let mut groups: BTreeMap<Vec<(Field, Value)>, Vec<Value>> = BTreeMap::new();
    for t in rs.iter() {
        let rt = as_tuple(t, "nest")?;
        let mut key = Vec::new();
        let mut member = Vec::new();
        for (f, v) in rt.iter() {
            if set_attrs.contains(f) {
                member.push((*f, v.clone()));
            } else {
                key.push((*f, v.clone()));
            }
        }
        for &a in set_attrs {
            if !member.iter().any(|(f, _)| *f == a) {
                return Err(AlgError::new(format!("nest: no attribute `{a}`")));
            }
        }
        groups
            .entry(key)
            .or_default()
            .push(Value::record(member).map_err(|e| AlgError::new(e.to_string()))?);
    }
    let mut out = Vec::with_capacity(groups.len());
    for (key, members) in groups {
        let mut fields = key;
        fields.push((new_field, Value::set(members)));
        out.push(Value::record(fields).map_err(|e| AlgError::new(e.to_string()))?);
    }
    Ok(Value::set(out))
}

/// `outernest_{X→g}(R, S)` — nest against an explicit spine `S` over the
/// non-`X` attributes; groups may be empty (Example A.1, reconstructed).
pub fn outernest(
    r: &Value,
    spine: &Value,
    set_attrs: &[Field],
    new_field: Field,
) -> Result<Value, AlgError> {
    let rs = as_relation(r, "outernest")?;
    let ss = as_relation(spine, "outernest")?;
    let mut out = Vec::with_capacity(ss.len());
    for z in ss.iter() {
        let rz = as_tuple(z, "outernest")?;
        let mut members = Vec::new();
        for t in rs.iter() {
            let rt = as_tuple(t, "outernest")?;
            // The spine must carry exactly the grouped relation's key
            // attributes (its non-`X` attributes).
            for f in rz.labels() {
                if rt.get(f).is_none() || set_attrs.contains(&f) {
                    return Err(AlgError::new(format!(
                        "outernest: spine attribute `{f}` is not a key attribute of the relation"
                    )));
                }
            }
            let mut matches = true;
            let mut member = Vec::new();
            for (f, v) in rt.iter() {
                if set_attrs.contains(f) {
                    member.push((*f, v.clone()));
                } else if rz.get(*f) != Some(v) {
                    matches = false;
                    break;
                }
            }
            if matches {
                members.push(Value::record(member).map_err(|e| AlgError::new(e.to_string()))?);
            }
        }
        let mut fields: Vec<(Field, Value)> = rz.iter().cloned().collect();
        fields.push((new_field, Value::set(members)));
        out.push(Value::record(fields).map_err(|e| AlgError::new(e.to_string()))?);
    }
    Ok(Value::set(out))
}

/// `unnest_g(R)`: replaces the set-valued attribute `g` by its members'
/// attributes, one output tuple per member. Tuples with `g = {}` vanish —
/// the classical lossiness of unnest.
pub fn unnest(r: &Value, set_field: Field) -> Result<Value, AlgError> {
    let rs = as_relation(r, "unnest")?;
    let mut out = Vec::new();
    for t in rs.iter() {
        let rt = as_tuple(t, "unnest")?;
        let inner = rt
            .get(set_field)
            .ok_or_else(|| AlgError::new(format!("unnest: no attribute `{set_field}`")))?;
        let members = as_relation(inner, "unnest")?;
        for m in members.iter() {
            let rm = as_tuple(m, "unnest")?;
            let mut fields: Vec<(Field, Value)> =
                rt.iter().filter(|(f, _)| *f != set_field).cloned().collect();
            fields.extend(rm.iter().cloned());
            fields.sort_by_key(|(f, _)| *f);
            for w in fields.windows(2) {
                if w[0].0 == w[1].0 {
                    return Err(AlgError::new(format!("unnest: attribute `{}` collides", w[0].0)));
                }
            }
            out.push(Value::record(fields).expect("checked disjoint"));
        }
    }
    Ok(Value::set(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_object::parse_value;

    fn f(name: &str) -> Field {
        Field::new(name)
    }

    #[test]
    fn product_merges_disjoint_attrs() {
        let r = parse_value("{[A: 1], [A: 2]}").unwrap();
        let s = parse_value("{[B: 9]}").unwrap();
        let p = product(&r, &s).unwrap();
        assert_eq!(p.to_string(), "{[A: 1, B: 9], [A: 2, B: 9]}");
        assert!(product(&r, &r).is_err());
    }

    #[test]
    fn selections() {
        let r = parse_value("{[A: 1, B: 1], [A: 1, B: 2]}").unwrap();
        assert_eq!(select_eq(&r, f("A"), f("B")).unwrap().to_string(), "{[A: 1, B: 1]}");
        assert_eq!(
            select_const(&r, f("B"), co_object::Atom::int(2)).unwrap().to_string(),
            "{[A: 1, B: 2]}"
        );
    }

    #[test]
    fn nest_groups_without_empty_sets() {
        let r = parse_value("{[A: 1, B: 10], [A: 1, B: 11], [A: 2, B: 20]}").unwrap();
        let n = nest(&r, &[f("B")], f("g")).unwrap();
        assert_eq!(n.to_string(), "{[A: 1, g: {[B: 10], [B: 11]}], [A: 2, g: {[B: 20]}]}");
        assert!(!n.contains_empty_set());
    }

    #[test]
    fn outernest_can_produce_empty_groups() {
        let r = parse_value("{[A: 1, B: 10]}").unwrap();
        let spine = parse_value("{[A: 1], [A: 2]}").unwrap();
        let n = outernest(&r, &spine, &[f("B")], f("g")).unwrap();
        assert_eq!(n.to_string(), "{[A: 1, g: {[B: 10]}], [A: 2, g: {}]}");
        assert!(n.contains_empty_set());
    }

    #[test]
    fn unnest_inverts_nest_modulo_empties() {
        let r = parse_value("{[A: 1, B: 10], [A: 1, B: 11], [A: 2, B: 20]}").unwrap();
        let n = nest(&r, &[f("B")], f("g")).unwrap();
        let u = unnest(&n, f("g")).unwrap();
        assert_eq!(u, r);
        // unnest drops empty groups: outernest then unnest loses spine rows.
        let spine = parse_value("{[A: 1], [A: 3]}").unwrap();
        let on = outernest(&r, &spine, &[f("B")], f("g")).unwrap();
        let u2 = unnest(&on, f("g")).unwrap();
        assert_eq!(u2.to_string(), "{[A: 1, B: 10], [A: 1, B: 11]}");
    }

    #[test]
    fn flatten_map_singleton() {
        let r = parse_value("{{1, 2}, {2, 3}}").unwrap();
        assert_eq!(flatten(&r).unwrap().to_string(), "{1, 2, 3}");
        let s = parse_value("{1, 2}").unwrap();
        let m = map(&s, |v| Ok(singleton(v))).unwrap();
        assert_eq!(m.to_string(), "{{1}, {2}}");
        assert_eq!(flatten(&m).unwrap(), s);
    }

    #[test]
    fn project_keeps_chosen_attrs() {
        let r = parse_value("{[A: 1, B: 10], [A: 1, B: 11]}").unwrap();
        let p = project(&r, &[f("A")]).unwrap();
        assert_eq!(p.to_string(), "{[A: 1]}");
    }

    #[test]
    fn type_errors_are_reported() {
        let not_set = Value::int(3);
        assert!(flatten(&not_set).is_err());
        let set_of_atoms = parse_value("{1}").unwrap();
        assert!(project(&set_of_atoms, &[f("A")]).is_err());
        assert!(unnest(&set_of_atoms, f("g")).is_err());
    }
}
