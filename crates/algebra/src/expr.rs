//! Algebra expressions, evaluation, and translation to COQL.
//!
//! [`AlgExpr`] covers the union of the two fragments §3.1 proves equivalent
//! to COQL, plus classical `nest` (expressible when its grouping attributes
//! are atomic — footnote 3 of the paper — via the self-join translation
//! below, which is what makes the `nest;unnest` decision procedure of
//! [`crate::nestseq`] go through).
//!
//! [`to_coql`] compiles every operator to COQL; the compilation is
//! type-directed (record merges need attribute lists) and property-tested
//! against direct evaluation: `⟦to_coql(e)⟧ = ⟦e⟧` on every database.
//!
//! The `nest` translation is the paper's crucial observation in miniature:
//!
//! ```text
//! nest_{X→g}(E)  =  select [ z̄: x.z̄…,
//!                            g: (select [X: y.X…] from y in E
//!                                where y.z1 = x.z1 and … ) ]
//!                   from x in E
//! ```
//!
//! The outer row `x` itself witnesses membership of its group, so the
//! result never contains an empty set — which is exactly why `nest;unnest`
//! sequences fall in the paper's no-empty-sets regime where equivalence is
//! NP-complete (§4).

use std::collections::BTreeMap;
use std::fmt;

use co_cq::{RelName, Var};
use co_lang::{type_check_with_env, CoDatabase, CoqlSchema, Expr};
use co_object::{Atom, Field, Type, Value};

use crate::ops::{self, AlgError};

/// A nested-relational-algebra expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AlgExpr {
    /// An input relation.
    Rel(RelName),
    /// Cartesian product with record merge (attributes must be disjoint).
    Product(Box<AlgExpr>, Box<AlgExpr>),
    /// `σ_{A=B}`.
    SelectEq(Box<AlgExpr>, Field, Field),
    /// `σ_{A=c}`.
    SelectConst(Box<AlgExpr>, Field, Atom),
    /// `π_{attrs}`.
    Project(Box<AlgExpr>, Vec<Field>),
    /// `flatten`.
    Flatten(Box<AlgExpr>),
    /// Singleton `{E}`.
    Singleton(Box<AlgExpr>),
    /// `map(λ var. body)` with a COQL body (the Abiteboul–Beeri map).
    Map {
        /// The mapped relation.
        source: Box<AlgExpr>,
        /// The element variable bound in `body`.
        var: Var,
        /// The COQL body applied to each element.
        body: Box<Expr>,
    },
    /// Thomas–Fischer `nest_{X→g}` (never produces empty groups).
    Nest(Box<AlgExpr>, Vec<Field>, Field),
    /// `outernest_{X→g}` against an explicit spine (groups may be empty) —
    /// the reconstruction of the paper's Example A.1.
    Outernest {
        /// The grouped relation.
        rel: Box<AlgExpr>,
        /// The spine supplying the group keys.
        spine: Box<AlgExpr>,
        /// Attributes collected into the new set field.
        set_attrs: Vec<Field>,
        /// Name of the new set-valued attribute.
        new_field: Field,
    },
    /// `unnest_g`.
    Unnest(Box<AlgExpr>, Field),
}

impl AlgExpr {
    /// Convenience: an input relation.
    pub fn rel(name: &str) -> AlgExpr {
        AlgExpr::Rel(RelName::new(name))
    }

    /// Convenience: nest.
    pub fn nest(self, set_attrs: &[&str], new_field: &str) -> AlgExpr {
        AlgExpr::Nest(
            Box::new(self),
            set_attrs.iter().map(|a| Field::new(a)).collect(),
            Field::new(new_field),
        )
    }

    /// Convenience: unnest.
    pub fn unnest(self, field: &str) -> AlgExpr {
        AlgExpr::Unnest(Box::new(self), Field::new(field))
    }

    /// Evaluates directly over a complex-object database.
    pub fn evaluate(&self, db: &CoDatabase) -> Result<Value, AlgError> {
        match self {
            AlgExpr::Rel(r) => Ok(db.relation(*r)),
            AlgExpr::Product(a, b) => ops::product(&a.evaluate(db)?, &b.evaluate(db)?),
            AlgExpr::SelectEq(e, x, y) => ops::select_eq(&e.evaluate(db)?, *x, *y),
            AlgExpr::SelectConst(e, x, c) => ops::select_const(&e.evaluate(db)?, *x, *c),
            AlgExpr::Project(e, attrs) => ops::project(&e.evaluate(db)?, attrs),
            AlgExpr::Flatten(e) => ops::flatten(&e.evaluate(db)?),
            AlgExpr::Singleton(e) => Ok(ops::singleton(&e.evaluate(db)?)),
            AlgExpr::Map { source, var, body } => {
                let src = source.evaluate(db)?;
                ops::map(&src, |elem| {
                    let mut env = BTreeMap::new();
                    env.insert(*var, elem.clone());
                    co_lang::evaluate_with_env(body, db, &env)
                        .map_err(|e| AlgError::new(e.to_string()))
                })
            }
            AlgExpr::Nest(e, attrs, g) => ops::nest(&e.evaluate(db)?, attrs, *g),
            AlgExpr::Outernest { rel, spine, set_attrs, new_field } => {
                ops::outernest(&rel.evaluate(db)?, &spine.evaluate(db)?, set_attrs, *new_field)
            }
            AlgExpr::Unnest(e, g) => ops::unnest(&e.evaluate(db)?, *g),
        }
    }
}

/// A translation error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TranslateError {
    /// Description.
    pub message: String,
}

impl TranslateError {
    fn new(message: impl Into<String>) -> TranslateError {
        TranslateError { message: message.into() }
    }
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "translation error: {}", self.message)
    }
}

impl std::error::Error for TranslateError {}

/// Record attributes of a relation-typed expression.
fn record_attrs(ty: &Type, what: &str) -> Result<Vec<(Field, Type)>, TranslateError> {
    match ty {
        Type::Set(elem) => match elem.as_ref() {
            Type::Record(fields) => Ok(fields.clone()),
            other => Err(TranslateError::new(format!(
                "{what}: expected a set of records, found {{{other}}}"
            ))),
        },
        other => Err(TranslateError::new(format!("{what}: expected a set, found {other}"))),
    }
}

/// Translates an algebra expression into COQL, returning the expression and
/// its type. The translation witnesses §3.1's equivalence claims.
pub fn to_coql(alg: &AlgExpr, schema: &CoqlSchema) -> Result<(Expr, Type), TranslateError> {
    match alg {
        AlgExpr::Rel(r) => {
            let ty = schema
                .relation(*r)
                .cloned()
                .ok_or_else(|| TranslateError::new(format!("unknown relation `{r}`")))?;
            Ok((Expr::Rel(*r), ty))
        }
        AlgExpr::Product(a, b) => {
            let (ea, ta) = to_coql(a, schema)?;
            let (eb, tb) = to_coql(b, schema)?;
            let fa = record_attrs(&ta, "product")?;
            let fb = record_attrs(&tb, "product")?;
            let x = Var::fresh("px");
            let y = Var::fresh("py");
            let mut fields = Vec::new();
            let mut out_ty = Vec::new();
            for (f, t) in &fa {
                fields.push((*f, Expr::Proj(Box::new(Expr::Var(x)), *f)));
                out_ty.push((*f, t.clone()));
            }
            for (f, t) in &fb {
                if fa.iter().any(|(g, _)| g == f) {
                    return Err(TranslateError::new(format!(
                        "product: attribute `{f}` occurs on both sides"
                    )));
                }
                fields.push((*f, Expr::Proj(Box::new(Expr::Var(y)), *f)));
                out_ty.push((*f, t.clone()));
            }
            let e = Expr::Select {
                head: Box::new(Expr::Record(fields)),
                bindings: vec![(x, ea), (y, eb)],
                conds: vec![],
            };
            Ok((e, Type::set(Type::record(out_ty))))
        }
        AlgExpr::SelectEq(inner, a, b) => {
            let (ei, ti) = to_coql(inner, schema)?;
            let x = Var::fresh("sx");
            let e = Expr::Select {
                head: Box::new(Expr::Var(x)),
                bindings: vec![(x, ei)],
                conds: vec![(
                    Expr::Proj(Box::new(Expr::Var(x)), *a),
                    Expr::Proj(Box::new(Expr::Var(x)), *b),
                )],
            };
            Ok((e, ti))
        }
        AlgExpr::SelectConst(inner, a, c) => {
            let (ei, ti) = to_coql(inner, schema)?;
            let x = Var::fresh("sx");
            let e = Expr::Select {
                head: Box::new(Expr::Var(x)),
                bindings: vec![(x, ei)],
                conds: vec![(Expr::Proj(Box::new(Expr::Var(x)), *a), Expr::Const(*c))],
            };
            Ok((e, ti))
        }
        AlgExpr::Project(inner, attrs) => {
            let (ei, ti) = to_coql(inner, schema)?;
            let fields_ty = record_attrs(&ti, "project")?;
            let x = Var::fresh("jx");
            let mut fields = Vec::new();
            let mut out_ty = Vec::new();
            for &a in attrs {
                let t =
                    fields_ty.iter().find(|(f, _)| *f == a).map(|(_, t)| t.clone()).ok_or_else(
                        || TranslateError::new(format!("project: no attribute `{a}`")),
                    )?;
                fields.push((a, Expr::Proj(Box::new(Expr::Var(x)), a)));
                out_ty.push((a, t));
            }
            let e = Expr::Select {
                head: Box::new(Expr::Record(fields)),
                bindings: vec![(x, ei)],
                conds: vec![],
            };
            Ok((e, Type::set(Type::record(out_ty))))
        }
        AlgExpr::Flatten(inner) => {
            let (ei, ti) = to_coql(inner, schema)?;
            let elem = ti
                .elem()
                .ok_or_else(|| TranslateError::new("flatten of non-set".to_string()))?
                .clone();
            match elem {
                Type::Set(_) | Type::Bottom => Ok((
                    ei.flatten(),
                    if let Type::Set(t) = elem { Type::Set(t) } else { Type::set(Type::Bottom) },
                )),
                other => Err(TranslateError::new(format!("flatten of set of {other}"))),
            }
        }
        AlgExpr::Singleton(inner) => {
            let (ei, ti) = to_coql(inner, schema)?;
            Ok((ei.singleton(), Type::set(ti)))
        }
        AlgExpr::Map { source, var, body } => {
            let (es, ts) = to_coql(source, schema)?;
            let elem = ts
                .elem()
                .ok_or_else(|| TranslateError::new("map over non-set".to_string()))?
                .clone();
            let mut env = BTreeMap::new();
            env.insert(*var, elem);
            let body_ty = type_check_with_env(body, schema, &env)
                .map_err(|e| TranslateError::new(e.to_string()))?;
            let e = Expr::Select { head: body.clone(), bindings: vec![(*var, es)], conds: vec![] };
            Ok((e, Type::set(body_ty)))
        }
        AlgExpr::Nest(inner, set_attrs, g) => {
            let (ei, ti) = to_coql(inner, schema)?;
            let fields_ty = record_attrs(&ti, "nest")?;
            let key_attrs: Vec<(Field, Type)> =
                fields_ty.iter().filter(|(f, _)| !set_attrs.contains(f)).cloned().collect();
            for (f, t) in &key_attrs {
                if !matches!(t, Type::Atom) {
                    return Err(TranslateError::new(format!(
                        "nest: grouping attribute `{f}` is not atomic (the paper's \
                         footnote-3 restriction)"
                    )));
                }
            }
            let x = Var::fresh("nx");
            let y = Var::fresh("ny");
            // Inner select: the group members, keyed by the outer row.
            let mut member_fields = Vec::new();
            let mut member_ty = Vec::new();
            for &a in set_attrs {
                let t = fields_ty
                    .iter()
                    .find(|(f, _)| *f == a)
                    .map(|(_, t)| t.clone())
                    .ok_or_else(|| TranslateError::new(format!("nest: no attribute `{a}`")))?;
                member_fields.push((a, Expr::Proj(Box::new(Expr::Var(y)), a)));
                member_ty.push((a, t));
            }
            let conds = key_attrs
                .iter()
                .map(|(f, _)| {
                    (Expr::Proj(Box::new(Expr::Var(y)), *f), Expr::Proj(Box::new(Expr::Var(x)), *f))
                })
                .collect();
            let group = Expr::Select {
                head: Box::new(Expr::Record(member_fields)),
                bindings: vec![(y, ei.clone())],
                conds,
            };
            let mut out_fields = Vec::new();
            let mut out_ty = Vec::new();
            for (f, t) in &key_attrs {
                out_fields.push((*f, Expr::Proj(Box::new(Expr::Var(x)), *f)));
                out_ty.push((*f, t.clone()));
            }
            out_fields.push((*g, group));
            out_ty.push((*g, Type::set(Type::record(member_ty))));
            let e = Expr::Select {
                head: Box::new(Expr::Record(out_fields)),
                bindings: vec![(x, ei)],
                conds: vec![],
            };
            Ok((e, Type::set(Type::record(out_ty))))
        }
        AlgExpr::Outernest { rel, spine, set_attrs, new_field } => {
            let (er, tr) = to_coql(rel, schema)?;
            let (es, ts) = to_coql(spine, schema)?;
            let rel_fields = record_attrs(&tr, "outernest")?;
            let spine_fields = record_attrs(&ts, "outernest")?;
            for (f, t) in &spine_fields {
                if !matches!(t, Type::Atom) {
                    return Err(TranslateError::new(format!(
                        "outernest: spine attribute `{f}` is not atomic"
                    )));
                }
            }
            let s = Var::fresh("os");
            let y = Var::fresh("oy");
            let mut member_fields = Vec::new();
            let mut member_ty = Vec::new();
            for &a in set_attrs {
                let t =
                    rel_fields.iter().find(|(f, _)| *f == a).map(|(_, t)| t.clone()).ok_or_else(
                        || TranslateError::new(format!("outernest: no attribute `{a}`")),
                    )?;
                member_fields.push((a, Expr::Proj(Box::new(Expr::Var(y)), a)));
                member_ty.push((a, t));
            }
            let conds = spine_fields
                .iter()
                .map(|(f, _)| {
                    (Expr::Proj(Box::new(Expr::Var(y)), *f), Expr::Proj(Box::new(Expr::Var(s)), *f))
                })
                .collect();
            let group = Expr::Select {
                head: Box::new(Expr::Record(member_fields)),
                bindings: vec![(y, er)],
                conds,
            };
            let mut out_fields = Vec::new();
            let mut out_ty = Vec::new();
            for (f, t) in &spine_fields {
                out_fields.push((*f, Expr::Proj(Box::new(Expr::Var(s)), *f)));
                out_ty.push((*f, t.clone()));
            }
            out_fields.push((*new_field, group));
            out_ty.push((*new_field, Type::set(Type::record(member_ty))));
            let e = Expr::Select {
                head: Box::new(Expr::Record(out_fields)),
                bindings: vec![(s, es)],
                conds: vec![],
            };
            Ok((e, Type::set(Type::record(out_ty))))
        }
        AlgExpr::Unnest(inner, g) => {
            let (ei, ti) = to_coql(inner, schema)?;
            let fields_ty = record_attrs(&ti, "unnest")?;
            let set_ty = fields_ty
                .iter()
                .find(|(f, _)| f == g)
                .map(|(_, t)| t.clone())
                .ok_or_else(|| TranslateError::new(format!("unnest: no attribute `{g}`")))?;
            let inner_fields = record_attrs(&set_ty, "unnest")?;
            let x = Var::fresh("ux");
            let y = Var::fresh("uy");
            let mut out_fields = Vec::new();
            let mut out_ty = Vec::new();
            for (f, t) in &fields_ty {
                if f == g {
                    continue;
                }
                out_fields.push((*f, Expr::Proj(Box::new(Expr::Var(x)), *f)));
                out_ty.push((*f, t.clone()));
            }
            for (f, t) in &inner_fields {
                if out_ty.iter().any(|(h, _)| h == f) {
                    return Err(TranslateError::new(format!("unnest: attribute `{f}` collides")));
                }
                out_fields.push((*f, Expr::Proj(Box::new(Expr::Var(y)), *f)));
                out_ty.push((*f, t.clone()));
            }
            let e = Expr::Select {
                head: Box::new(Expr::Record(out_fields)),
                bindings: vec![(x, ei), (y, Expr::Proj(Box::new(Expr::Var(x)), *g))],
                conds: vec![],
            };
            Ok((e, Type::set(Type::record(out_ty))))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_object::parse_value;

    fn setup() -> (CoqlSchema, CoDatabase) {
        let schema = CoqlSchema::new()
            .with("R", Type::flat_relation(&[Field::new("A"), Field::new("B")]))
            .with("T", Type::flat_relation(&[Field::new("C")]));
        let db = CoDatabase::new()
            .with("R", parse_value("{[A: 1, B: 10], [A: 1, B: 11], [A: 2, B: 20]}").unwrap())
            .with("T", parse_value("{[C: 10], [C: 99]}").unwrap());
        (schema, db)
    }

    fn check(alg: &AlgExpr) {
        let (schema, db) = setup();
        let direct = alg.evaluate(&db).unwrap();
        let (coql, ty) = to_coql(alg, &schema).unwrap();
        let via_coql = co_lang::evaluate(&coql, &db).unwrap();
        assert_eq!(direct, via_coql, "alg {alg:?}\n direct {direct}\n coql {via_coql}");
        co_object::check_type(&via_coql, &ty).unwrap();
    }

    #[test]
    fn products_and_selections_translate() {
        check(&AlgExpr::Product(Box::new(AlgExpr::rel("R")), Box::new(AlgExpr::rel("T"))));
        check(&AlgExpr::SelectConst(Box::new(AlgExpr::rel("R")), Field::new("A"), Atom::int(1)));
        check(&AlgExpr::SelectEq(
            Box::new(AlgExpr::Product(Box::new(AlgExpr::rel("R")), Box::new(AlgExpr::rel("T")))),
            Field::new("B"),
            Field::new("C"),
        ));
    }

    #[test]
    fn project_and_flatten_translate() {
        check(&AlgExpr::Project(Box::new(AlgExpr::rel("R")), vec![Field::new("A")]));
        check(&AlgExpr::Flatten(Box::new(AlgExpr::Singleton(Box::new(AlgExpr::rel("R"))))));
    }

    #[test]
    fn nest_translates_and_never_has_empty_sets() {
        let alg = AlgExpr::rel("R").nest(&["B"], "g");
        check(&alg);
        let (_, db) = setup();
        let v = alg.evaluate(&db).unwrap();
        assert!(!v.contains_empty_set());
    }

    #[test]
    fn unnest_translates() {
        check(&AlgExpr::rel("R").nest(&["B"], "g").unnest("g"));
    }

    #[test]
    fn outernest_translates_with_empty_groups() {
        // Spine over A includes a key (3) absent from R: empty group.
        let alg = AlgExpr::Outernest {
            rel: Box::new(AlgExpr::rel("SP")),
            spine: Box::new(AlgExpr::Project(Box::new(AlgExpr::rel("SPK")), vec![Field::new("A")])),
            set_attrs: vec![Field::new("B")],
            new_field: Field::new("g"),
        };
        let schema = CoqlSchema::new()
            .with("SP", Type::flat_relation(&[Field::new("A"), Field::new("B")]))
            .with("SPK", Type::flat_relation(&[Field::new("A")]));
        let db = CoDatabase::new()
            .with("SP", parse_value("{[A: 1, B: 10]}").unwrap())
            .with("SPK", parse_value("{[A: 1], [A: 3]}").unwrap());
        let direct = alg.evaluate(&db).unwrap();
        assert!(direct.contains_empty_set());
        let (coql, _) = to_coql(&alg, &schema).unwrap();
        let via = co_lang::evaluate(&coql, &db).unwrap();
        assert_eq!(direct, via);
    }

    #[test]
    fn map_translates() {
        let alg = AlgExpr::Map {
            source: Box::new(AlgExpr::rel("R")),
            var: Var::new("m"),
            body: Box::new(Expr::var("m").proj("A")),
        };
        check(&alg);
    }

    #[test]
    fn nest_on_set_valued_key_is_rejected() {
        let (schema, _) = setup();
        let alg = AlgExpr::rel("R").nest(&["B"], "g").nest(&["A"], "h");
        // Second nest's key includes the set-valued g: footnote-3 violation.
        let err = to_coql(&alg, &schema).unwrap_err();
        assert!(err.message.contains("not atomic"), "{err}");
    }
}
