//! Edge cases for the simulation machinery: multi-column indexes, constant
//! index components, and interactions between the variants.

use co_cq::parse_query;
use co_sim::tree::grouped_tree;
use co_sim::{
    is_simulated_by, is_strongly_simulated_by, minimize_tree, simulated_by, simulation_holds_on,
    tree_atom_count, IndexedQuery, SimulationAnswer,
};

fn iq(text: &str, index_arity: usize) -> IndexedQuery {
    IndexedQuery::from_cq(&parse_query(text).unwrap(), index_arity)
}

#[test]
fn two_column_indexes() {
    // Group by (A, B) pairs of T; target groups by (B, A) — transposed key.
    let q1 = iq("q(X, Y, Z) :- T(X, Y, Z).", 2);
    let q2 = iq("q(Y, X, Z) :- T(X, Y, Z).", 2);
    // Same group *contents* per transposed key: simulation holds both ways.
    assert!(is_simulated_by(&q1, &q2));
    assert!(is_simulated_by(&q2, &q1));
    assert!(is_strongly_simulated_by(&q1, &q2));
}

#[test]
fn constant_index_components() {
    // q1 groups everything under the constant key 7.
    let q1 = iq("q(7, Y) :- R(X, Y).", 1);
    // q2 groups per X: the single global group is generally not inside any
    // per-X group.
    let q2 = iq("q(X, Y) :- R(X, Y).", 1);
    assert!(!is_simulated_by(&q1, &q2));
    assert!(is_simulated_by(&q2, &q1));
    // Matching constant keys are fine.
    let q3 = iq("q(7, Y) :- R(X, Y), R(X, W).", 1);
    assert!(is_simulated_by(&q1, &q3));
    assert!(is_simulated_by(&q3, &q1));
}

#[test]
fn mismatched_constant_keys() {
    let q1 = iq("q(7, Y) :- R(X, Y).", 1);
    let q2 = iq("q(8, Y) :- R(X, Y).", 1);
    // Key values are invisible to simulation (groups are matched by
    // content, ∃ī'), so different constant keys still simulate.
    assert!(is_simulated_by(&q1, &q2));
    assert!(is_strongly_simulated_by(&q1, &q2));
}

#[test]
fn index_var_repeated_in_value() {
    // The group key also appears as a value column.
    let q1 = iq("q(X, X, Y) :- R(X, Y).", 1);
    let q2 = iq("q(U, U, W) :- R(U, W).", 1);
    assert!(is_simulated_by(&q1, &q2));
    assert!(is_strongly_simulated_by(&q1, &q2));
    // Against a target whose first value column is unconstrained, the
    // key-tied column makes q3's groups strictly larger.
    let q3 = iq("q(U, V, W) :- R(U, W), R(V, W2).", 1);
    assert!(is_simulated_by(&q1, &q3));
    assert!(!is_simulated_by(&q3, &q1));
}

#[test]
fn counterexamples_report_the_right_group() {
    let q1 = iq("q(X, Y) :- R(X, Y).", 1);
    let q2 = iq("q(X, Y) :- R(X, Y), S(Y).", 1);
    match simulated_by(&q1, &q2) {
        SimulationAnswer::Fails(cex) => {
            assert!(!simulation_holds_on(&q1, &q2, &cex.db));
            // The reported group key must itself be violated.
            let groups1 = q1.groups(&cex.db);
            assert!(groups1.contains_key(&cex.violating_group));
        }
        SimulationAnswer::Holds(_) => panic!("should fail"),
    }
}

#[test]
fn empty_value_lists() {
    // Queries with an index but no value columns: groups are all `{()}`.
    let q1 = iq("q(X) :- R(X, Y).", 1);
    let q2 = iq("q(Y) :- S(Y).", 1);
    // Every (nonempty) group equals {()}: simulation holds iff q2 has any
    // group whenever q1 does — true when q2's body is implied… it is not
    // (S may be empty while R is not).
    assert!(!is_simulated_by(&q1, &q2));
    // Reflexive still fine.
    assert!(is_simulated_by(&q1, &q1));
}

#[test]
fn minimization_interacts_with_grouped_trees() {
    let q = iq("q(X, Y) :- R(X, Y), R(X, Z), R(W, W2).", 1);
    let t = grouped_tree(&q);
    let m = minimize_tree(&t);
    assert!(tree_atom_count(&m) < tree_atom_count(&t));
    // Minimized tree stays in the same simulation class.
    let q_min_equiv = iq("q(X, Y) :- R(X, Y).", 1);
    let t2 = grouped_tree(&q_min_equiv);
    assert!(co_sim::tree::tree_contained_in(&m, &t2));
    assert!(co_sim::tree::tree_contained_in(&t2, &m));
}

#[test]
fn simulation_with_zero_arity_everything() {
    // Boolean-style: empty index, empty values.
    let q1 = iq("q() :- R(X, Y).", 0);
    let q2 = iq("q() :- R(X, X).", 0);
    // q1's group {()} exists whenever R is nonempty; q2's needs a loop.
    assert!(!is_simulated_by(&q1, &q2));
    assert!(is_simulated_by(&q2, &q1));
}
