//! Differential validation of the simulation deciders against the
//! *definitional* semantics — the key scientific check of the reproduction.
//!
//! For random indexed-query pairs:
//! * decider says **holds** ⟹ no random database (nor the canonical ones)
//!   exhibits a violating group — soundness;
//! * decider says **fails** ⟹ the returned counterexample database is
//!   confirmed by the definitional per-database check — completeness in
//!   the concrete, machine-checkable sense;
//! * tree containment on `grouped_tree` encodings agrees with flat
//!   simulation, and positive tree containment is never refuted by
//!   evaluation + the Hoare order.

use co_cq::generate::{CqGen, CqGenConfig};
use co_object::hoare_leq;
use co_sim::tree::{grouped_tree, tree_contained_in};
use co_sim::{
    is_strongly_simulated_by, refute_strong_simulation, simulated_by, simulation_holds_on,
    strong_simulation_holds_on, IndexedQuery, SimulationAnswer,
};
use proptest::prelude::*;

fn gen_pair(seed: u64, index_arity: usize) -> (IndexedQuery, IndexedQuery) {
    let config = CqGenConfig { head_width: index_arity + 1, ..CqGenConfig::default() };
    let mut g = CqGen::new(seed, config);
    (IndexedQuery::from_cq(&g.query(), index_arity), IndexedQuery::from_cq(&g.query(), index_arity))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    #[test]
    fn simulation_decider_is_sound_and_counterexamples_verify(
        seed in any::<u64>(),
        db_seed in any::<u64>(),
        index_arity in 0usize..2,
    ) {
        let (q1, q2) = gen_pair(seed, index_arity);
        match simulated_by(&q1, &q2) {
            SimulationAnswer::Holds(cert) => {
                prop_assert!(cert.verify(&q1, &q2), "certificate: {q1} vs {q2}");
                // Soundness: random databases never violate.
                let mut g = CqGen::new(db_seed, CqGenConfig::default());
                for size in [3, 6] {
                    let db = g.database(size, 4);
                    prop_assert!(
                        simulation_holds_on(&q1, &q2, &db),
                        "UNSOUND: {q1} ⊴ {q2} refuted by\n{db}"
                    );
                }
            }
            SimulationAnswer::Fails(cex) => {
                prop_assert!(
                    cex.verify(&q1, &q2),
                    "counterexample failed: {q1} vs {q2} on\n{}",
                    cex.db
                );
            }
        }
    }

    #[test]
    fn simulation_is_reflexive_and_transitive(seed in any::<u64>(), index_arity in 0usize..2) {
        let (q1, q2) = gen_pair(seed, index_arity);
        prop_assert!(simulated_by(&q1, &q1).holds(), "{q1}");
        let (q3, _) = gen_pair(seed.wrapping_add(99), index_arity);
        if simulated_by(&q1, &q2).holds() && simulated_by(&q2, &q3).holds() {
            prop_assert!(simulated_by(&q1, &q3).holds(), "{q1} / {q2} / {q3}");
        }
    }

    #[test]
    fn strong_simulation_implies_simulation(seed in any::<u64>(), index_arity in 0usize..2) {
        let (q1, q2) = gen_pair(seed, index_arity);
        if is_strongly_simulated_by(&q1, &q2) {
            prop_assert!(simulated_by(&q1, &q2).holds(), "{q1} vs {q2}");
        }
    }

    #[test]
    fn strong_simulation_is_sound(
        seed in any::<u64>(),
        db_seed in any::<u64>(),
        index_arity in 0usize..2,
    ) {
        let (q1, q2) = gen_pair(seed, index_arity);
        if is_strongly_simulated_by(&q1, &q2) {
            let mut g = CqGen::new(db_seed, CqGenConfig::default());
            for size in [3, 6] {
                let db = g.database(size, 4);
                prop_assert!(
                    strong_simulation_holds_on(&q1, &q2, &db),
                    "UNSOUND strong: {q1} ⊴s {q2} refuted by\n{db}"
                );
            }
            // The bounded refuter must not contradict a positive answer.
            prop_assert!(refute_strong_simulation(&q1, &q2, 2).is_none(), "{q1} vs {q2}");
        }
    }

    #[test]
    fn strong_refuter_counterexamples_verify(seed in any::<u64>(), index_arity in 0usize..2) {
        let (q1, q2) = gen_pair(seed, index_arity);
        if let Some(cex) = refute_strong_simulation(&q1, &q2, 2) {
            prop_assert!(
                !strong_simulation_holds_on(&q1, &q2, &cex.db),
                "refuter returned a non-counterexample for {q1} vs {q2}"
            );
            // A semantic counterexample must make the decider say no.
            prop_assert!(!is_strongly_simulated_by(&q1, &q2), "{q1} vs {q2}");
        }
    }

    #[test]
    fn tree_containment_agrees_with_flat_simulation(
        seed in any::<u64>(),
        index_arity in 0usize..2,
    ) {
        let (q1, q2) = gen_pair(seed, index_arity);
        let flat = simulated_by(&q1, &q2).holds();
        let tree = tree_contained_in(&grouped_tree(&q1), &grouped_tree(&q2));
        prop_assert_eq!(flat, tree, "{} vs {}", &q1, &q2);
    }

    #[test]
    fn tree_containment_is_sound_under_evaluation(
        seed in any::<u64>(),
        db_seed in any::<u64>(),
        index_arity in 0usize..2,
    ) {
        let (q1, q2) = gen_pair(seed, index_arity);
        let t1 = grouped_tree(&q1);
        let t2 = grouped_tree(&q2);
        if tree_contained_in(&t1, &t2) {
            let mut g = CqGen::new(db_seed, CqGenConfig::default());
            for size in [3, 5] {
                let db = g.database(size, 4);
                let v1 = t1.evaluate(&db);
                let v2 = t2.evaluate(&db);
                prop_assert!(
                    hoare_leq(&v1, &v2),
                    "UNSOUND tree: {} vs {} refuted: {} vs {}",
                    &q1, &q2, &v1, &v2
                );
            }
        }
    }

    #[test]
    fn semantic_refutation_forces_negative_answer(
        seed in any::<u64>(),
        db_seed in any::<u64>(),
        index_arity in 0usize..2,
    ) {
        // Contrapositive completeness check: if any random database
        // refutes simulation semantically, the decider must say no.
        let (q1, q2) = gen_pair(seed, index_arity);
        let mut g = CqGen::new(db_seed, CqGenConfig::default());
        let db = g.database(4, 3);
        if !simulation_holds_on(&q1, &q2, &db) {
            prop_assert!(!simulated_by(&q1, &q2).holds(), "{q1} vs {q2} on\n{db}");
        }
        if !strong_simulation_holds_on(&q1, &q2, &db) {
            prop_assert!(!is_strongly_simulated_by(&q1, &q2), "{q1} vs {q2}");
        }
    }
}
