//! # co-sim — simulation and strong simulation of conjunctive queries
//!
//! The core decision procedures of *Levy & Suciu, PODS 1997* (§5–6): the
//! novel conditions on conjunctive queries with **index variables** that
//! complex-object containment and equivalence translate into.
//!
//! * [`IndexedQuery`] — `Q(Ī; V̄) :- body` with grouped semantics;
//! * [`simulated_by`] — the NP-complete **simulation** test (Equation 2),
//!   via containment mappings into the body extended with witness copies;
//! * [`strongly_simulated_by`] — the **strong simulation** test
//!   (Equation 4), whose decidability is one of the paper's new results;
//! * [`tree`] — depth-`d` *query trees* (the flattened form of a COQL
//!   query) with nested evaluation and the recursive `d`-simulation
//!   containment procedure (d+1 quantifier alternations);
//! * definitional per-database checks and counterexample search used to
//!   validate everything differentially.

#![warn(missing_docs)]

pub mod indexed;
pub mod minimize_tree;
pub mod simulation;
pub mod strong;
pub mod tree;

pub use indexed::{
    simulation_holds_on, simulation_violation, strong_simulation_holds_on, IndexedQuery,
};
pub use minimize_tree::{minimize_tree, tree_atom_count};
pub use simulation::{
    is_simulated_by, simulated_by, simulated_by_with_witnesses, Counterexample, SimulationAnswer,
    SimulationCertificate,
};
pub use strong::{
    is_strongly_simulated_by, refute_strong_simulation, strongly_simulated_by, StrongAnswer,
    StrongCertificate,
};
pub use tree::{
    flat_cq_pair, search_tree_counterexample, search_tree_counterexample_among,
    tree_strong_contained_in_no_empty_sets, try_tree_contained_in_with,
    try_tree_containment_verdict, try_tree_strong_contained_in_no_empty_sets, ChildLink, QueryTree,
    Template, TreeNode, TreeVerdict,
};
