//! Deciding **strong simulation** (§6, Equation 4).
//!
//! `Q ⊴ₛ Q'` iff for every database, every group of `Q` *equals* some group
//! of `Q'`:
//!
//! ```text
//! ∀D. ∀ī ∈ idx(Q,D). ∃ī' ∈ idx(Q',D). G_Q(ī) = G_Q'(ī')        (Eq. 4, d=1)
//! ```
//!
//! The two-sided matrix (`↔` instead of `→`) pushes the negation outside
//! every decidable prefix class of Dreben–Goldfarb \[19\] — the paper's
//! decidability of strong simulation is a *new* result there. It is what
//! query equivalence needs: for uninterpreted aggregate functions, two
//! groups produce the same aggregate value for every interpretation iff
//! they are equal (§7), so aggregate-query equivalence reduces to strong
//! simulation (see `co-agg`).
//!
//! # Decision procedure
//!
//! A certificate is a pair:
//!
//! 1. a simulation mapping `φ` as in [`crate::simulation`] (giving
//!    `G_Q(ī) ⊆ G_Q'(ī')` with `ī' = φ(Ī')`), and
//! 2. a classical containment mapping witnessing the *reverse* inclusion
//!    **for that `φ`**: the composite query
//!
//!    ```text
//!    Q_rev(Ī, V̄'') :- Q.body ∧ W1 ∧ … ∧ Wk ∧ Q'.body[Ī'-vars ↦ φ(·), rest fresh; V̄' ↦ V̄'']
//!    ```
//!
//!    must be classically contained in `Q_flat(Ī, V̄) :- Q.body`: every
//!    tuple the `φ`-chosen target group can ever acquire is already in the
//!    source group.
//!
//! Soundness of (1)+(2) is immediate from the two soundness arguments
//! composed. For completeness, [`strongly_simulated_by`] enumerates *all*
//! candidate `φ` homomorphisms (not just the first) and accepts if any
//! passes the reverse check. The extended abstract does not spell out the
//! full-version procedure; we additionally ship a bounded semantic
//! counterexample search ([`refute_strong_simulation`]) justified by the
//! finite-model property the paper notes for Equation 4, and the property
//! tests check the decider and the refuter never disagree on the tested
//! families.

use std::collections::HashMap;
use std::ops::ControlFlow;

use co_cq::{
    is_contained_in, Assignment, ConjunctiveQuery, Database, HomProblem, QueryAtom, Term, Var,
};
use co_object::Atom;

use crate::indexed::IndexedQuery;
use crate::simulation::Counterexample;

/// Result of a strong-simulation check.
#[derive(Clone, Debug)]
pub enum StrongAnswer {
    /// Strong simulation holds with a two-part certificate.
    Holds(StrongCertificate),
    /// No certificate exists (sound "no"; see module docs on completeness).
    Fails(Option<Counterexample>),
}

impl StrongAnswer {
    /// Whether strong simulation was established.
    pub fn holds(&self) -> bool {
        matches!(self, StrongAnswer::Holds(_))
    }
}

/// Certificate for strong simulation.
#[derive(Clone, Debug)]
pub struct StrongCertificate {
    /// The forward simulation mapping (group inclusion `⊆`).
    pub forward: HashMap<Var, Term>,
    /// The reverse composite query that was proven contained in `Q`.
    pub reverse_query: ConjunctiveQuery,
    /// Trivial case: `Q` unsatisfiable.
    pub trivial: bool,
}

/// Decides `q ⊴ₛ q2`.
pub fn strongly_simulated_by(q: &IndexedQuery, q2: &IndexedQuery) -> StrongAnswer {
    if q.unsatisfiable {
        return StrongAnswer::Holds(StrongCertificate {
            forward: HashMap::new(),
            reverse_query: q.as_cq(),
            trivial: true,
        });
    }
    if q2.unsatisfiable || q.value.len() != q2.value.len() {
        let cex = crate::simulation::simulated_by(q, q2);
        return StrongAnswer::Fails(match cex {
            crate::simulation::SimulationAnswer::Fails(c) => Some(c),
            _ => None,
        });
    }

    // Enumerate forward simulation mappings; try the reverse check on each.
    let k = q2.index_vars().len();
    let enumeration = enumerate_simulation_homs(q, q2, k);
    for hom in &enumeration.homs {
        let phi = enumeration.unfreeze(q2, hom);
        let reverse_query = build_reverse_query(q, q2, &enumeration.combined_body, &phi);
        if is_contained_in(&reverse_query, &flat_query(q)) {
            return StrongAnswer::Holds(StrongCertificate {
                forward: phi,
                reverse_query,
                trivial: false,
            });
        }
    }
    StrongAnswer::Fails(refute_strong_simulation(q, q2, 2))
}

/// Boolean convenience for [`strongly_simulated_by`].
pub fn is_strongly_simulated_by(q: &IndexedQuery, q2: &IndexedQuery) -> bool {
    strongly_simulated_by(q, q2).holds()
}

/// `Q` as a flat CQ with head `Ī ++ V̄`.
fn flat_query(q: &IndexedQuery) -> ConjunctiveQuery {
    q.as_cq()
}

struct Enumeration {
    /// All candidate forward homs (into the frozen expansion).
    homs: Vec<Assignment>,
    /// Frozen-atom → variable inverse of the expansion.
    inverse: HashMap<Atom, Var>,
    /// The syntactic combined body (distinguished + witnesses).
    combined_body: Vec<QueryAtom>,
}

impl Enumeration {
    fn unfreeze(&self, q2: &IndexedQuery, hom: &Assignment) -> HashMap<Var, Term> {
        let mut phi = HashMap::new();
        for v in q2.as_cq().body_vars() {
            if let Some(&a) = hom.get(&v) {
                let t = match self.inverse.get(&a) {
                    Some(&w) => Term::Var(w),
                    None => Term::Const(a),
                };
                phi.insert(v, t);
            }
        }
        phi
    }
}

/// Enumerates every valid forward simulation hom (value-fixed, index
/// avoiding the distinguished copy's private variables).
fn enumerate_simulation_homs(q: &IndexedQuery, q2: &IndexedQuery, k: usize) -> Enumeration {
    use co_cq::freeze::freeze_atoms_with;
    use std::collections::HashSet;

    let index_vars: HashSet<Var> = q.index_vars().into_iter().collect();
    let mut assignment: HashMap<Var, Atom> = HashMap::new();
    let mut db = Database::new();
    freeze_atoms_with(&q.body, &mut assignment, &mut db);
    let private_atoms: HashSet<Atom> = q
        .as_cq()
        .body_vars()
        .into_iter()
        .filter(|v| !index_vars.contains(v))
        .map(|v| assignment[&v])
        .collect();

    let mut combined_body = q.body.clone();
    for i in 0..k {
        let mut subst: HashMap<Var, Term> = HashMap::new();
        for v in q.as_cq().body_vars() {
            if !index_vars.contains(&v) {
                subst.insert(v, Term::Var(Var::fresh(&format!("sw{i}_{}", v.name()))));
            }
        }
        let copy: Vec<QueryAtom> = q.body.iter().map(|a| a.substitute(&subst)).collect();
        freeze_atoms_with(&copy, &mut assignment, &mut db);
        combined_body.extend(copy);
    }

    // Value fixing.
    let mut fixed = Assignment::new();
    let mut consistent = true;
    for (t2, t1) in q2.value.iter().zip(q.value.iter()) {
        let target = match t1 {
            Term::Const(c) => *c,
            Term::Var(v) => assignment[v],
        };
        match t2 {
            Term::Const(c) => {
                if *c != target {
                    consistent = false;
                }
            }
            Term::Var(v) => match fixed.insert(*v, target) {
                Some(prev) if prev != target => consistent = false,
                _ => {}
            },
        }
    }

    let mut homs = Vec::new();
    if consistent {
        let forbidden: HashMap<Var, HashSet<Atom>> =
            q2.index_vars().into_iter().map(|v| (v, private_atoms.clone())).collect();
        HomProblem::new(&q2.body, &db).with_fixed(fixed).with_forbidden(forbidden).for_each(|a| {
            homs.push(a.clone());
            ControlFlow::Continue(())
        });
    }

    let inverse: HashMap<Atom, Var> = assignment.iter().map(|(&v, &a)| (a, v)).collect();
    Enumeration { homs, inverse, combined_body }
}

/// Builds the composite reverse query for a candidate `φ`:
/// head `(Ī, V̄'')`, body = combined expansion ∧ `Q'.body` with index
/// variables substituted by `φ` and the remaining variables fresh.
fn build_reverse_query(
    q: &IndexedQuery,
    q2: &IndexedQuery,
    combined_body: &[QueryAtom],
    phi: &HashMap<Var, Term>,
) -> ConjunctiveQuery {
    // Substitution on the q2 copy: index vars ↦ φ(v); every other variable
    // fresh (capture-free w.r.t. the combined body).
    let index_vars2: std::collections::HashSet<Var> = q2.index_vars().into_iter().collect();
    let mut subst: HashMap<Var, Term> = HashMap::new();
    for v in q2.as_cq().body_vars() {
        if index_vars2.contains(&v) {
            subst.insert(v, *phi.get(&v).unwrap_or(&Term::Var(v)));
        } else {
            subst.insert(v, Term::Var(Var::fresh(&format!("rv_{}", v.name()))));
        }
    }
    let mut body = combined_body.to_vec();
    body.extend(q2.body.iter().map(|a| a.substitute(&subst)));

    let mut head: Vec<Term> = q.index.clone();
    head.extend(q2.value.iter().map(|t| match t {
        Term::Var(v) => subst[v],
        Term::Const(c) => Term::Const(*c),
    }));
    ConjunctiveQuery::plain(head, body)
}

/// Bounded semantic refutation: searches small canonical-style databases
/// for one where some group of `q` equals no group of `q2`.
///
/// The candidate family freezes `1..=max_copies` copies of `q.body`
/// (sharing index variables) optionally unioned with a frozen copy of
/// `q2.body`, which empirically covers the refutations arising from the
/// tested families; the finite-model property of Equation 4's negation
/// (noted by the paper via \[19, 20\]) guarantees *some* finite refutation
/// exists whenever strong simulation fails.
pub fn refute_strong_simulation(
    q: &IndexedQuery,
    q2: &IndexedQuery,
    max_copies: usize,
) -> Option<Counterexample> {
    use co_cq::freeze::freeze_atoms_with;
    use std::collections::HashSet;

    if q.unsatisfiable {
        return None;
    }
    let index_vars: HashSet<Var> = q.index_vars().into_iter().collect();

    /// How to add a copy of `q2`'s body to a candidate database.
    #[derive(Clone, Copy)]
    enum Q2Copy {
        None,
        /// Renamed fully apart from `q`'s frozen body.
        Disjoint,
        /// Index variables unified positionwise with `q`'s index variables
        /// (this is the family that separates `G_Q(ī) ⊊ G_Q'(ī)` cases).
        SharedIndex,
    }

    for copies in 1..=max_copies {
        for q2_copy in [Q2Copy::None, Q2Copy::SharedIndex, Q2Copy::Disjoint] {
            let mut assignment: HashMap<Var, Atom> = HashMap::new();
            let mut db = Database::new();
            freeze_atoms_with(&q.body, &mut assignment, &mut db);
            for i in 1..copies {
                let mut subst: HashMap<Var, Term> = HashMap::new();
                for v in q.as_cq().body_vars() {
                    if !index_vars.contains(&v) {
                        subst.insert(v, Term::Var(Var::fresh(&format!("rf{i}_{}", v.name()))));
                    }
                }
                let copy: Vec<QueryAtom> = q.body.iter().map(|a| a.substitute(&subst)).collect();
                freeze_atoms_with(&copy, &mut assignment, &mut db);
            }
            if !q2.unsatisfiable {
                match q2_copy {
                    Q2Copy::None => {}
                    Q2Copy::Disjoint => {
                        let (renamed, _) = q2.as_cq().rename_apart("rf2");
                        freeze_atoms_with(&renamed.body, &mut assignment, &mut db);
                    }
                    Q2Copy::SharedIndex => {
                        let mut subst: HashMap<Var, Term> = HashMap::new();
                        // Unify q2's index variables with q's, positionwise.
                        for (t2, t1) in q2.index.iter().zip(q.index.iter()) {
                            if let (Term::Var(v2), Term::Var(_)) = (t2, t1) {
                                subst.entry(*v2).or_insert(*t1);
                            }
                        }
                        for v in q2.as_cq().body_vars() {
                            subst.entry(v).or_insert_with(|| {
                                Term::Var(Var::fresh(&format!("rs_{}", v.name())))
                            });
                        }
                        let copy: Vec<QueryAtom> =
                            q2.body.iter().map(|a| a.substitute(&subst)).collect();
                        freeze_atoms_with(&copy, &mut assignment, &mut db);
                    }
                }
            }
            if let Some(violating_group) = crate::indexed::strong_simulation_violation(q, q2, &db) {
                return Some(Counterexample { db, violating_group });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_cq::parse_query;

    fn iq(text: &str, index_arity: usize) -> IndexedQuery {
        IndexedQuery::from_cq(&parse_query(text).unwrap(), index_arity)
    }

    #[test]
    fn reflexive() {
        let q = iq("q(X, Y) :- R(X, Y).", 1);
        assert!(is_strongly_simulated_by(&q, &q));
    }

    #[test]
    fn strict_subset_groups_are_not_strong() {
        // Simulation holds (restriction) but strong simulation must fail:
        // the S-filtered group is a strict subset on some databases.
        let q1 = iq("q(X, Y) :- R(X, Y), S(Y).", 1);
        let q2 = iq("q(X, Y) :- R(X, Y).", 1);
        assert!(crate::simulation::is_simulated_by(&q1, &q2));
        let ans = strongly_simulated_by(&q1, &q2);
        assert!(!ans.holds());
        if let StrongAnswer::Fails(Some(cex)) = &ans {
            assert!(!crate::indexed::strong_simulation_holds_on(&q1, &q2, &cex.db));
        } else {
            panic!("expected a concrete counterexample");
        }
    }

    #[test]
    fn renamed_queries_are_strongly_equivalent() {
        let q1 = iq("q(X, Y) :- R(X, Y), T(X).", 1);
        let q2 = iq("q(A, B) :- R(A, B), T(A).", 1);
        assert!(is_strongly_simulated_by(&q1, &q2));
        assert!(is_strongly_simulated_by(&q2, &q1));
    }

    #[test]
    fn redundant_atoms_keep_strong_simulation() {
        let q1 = iq("q(X, Y) :- R(X, Y).", 1);
        let q2 = iq("q(X, Y) :- R(X, Y), R(X, Z).", 1);
        // Identical group structure: the extra atom is implied.
        assert!(is_strongly_simulated_by(&q1, &q2));
        assert!(is_strongly_simulated_by(&q2, &q1));
    }

    #[test]
    fn coarser_grouping_is_not_strongly_simulated() {
        // q1: global group; q2: per-X groups. Simulation fails already;
        // strong simulation must too.
        let q1 = iq("q(Y) :- R(X, Y).", 0);
        let q2 = iq("q(X, Y) :- R(X, Y).", 1);
        assert!(!is_strongly_simulated_by(&q1, &q2));
        // And per-X groups vs the global group: simulation holds but
        // equality fails when two X's have different Y-sets.
        assert!(crate::simulation::is_simulated_by(&q2, &q1));
        assert!(!is_strongly_simulated_by(&q2, &q1));
    }

    #[test]
    fn unsatisfiable_source_is_strongly_simulated() {
        let q1 = iq("q(X, Y) :- R(X, Y), false.", 1);
        let q2 = iq("q(X, Y) :- R(X, Y).", 1);
        assert!(is_strongly_simulated_by(&q1, &q2));
        assert!(!is_strongly_simulated_by(&q2, &q1));
    }

    #[test]
    fn different_filters_fail_strongly() {
        let q1 = iq("q(X, Y) :- R(X, Y), S(Y).", 1);
        let q2 = iq("q(X, Y) :- R(X, Y), T(Y).", 1);
        assert!(!is_strongly_simulated_by(&q1, &q2));
    }

    #[test]
    fn refuter_agrees_with_decider_on_positive_cases() {
        let q1 = iq("q(X, Y) :- R(X, Y), T(X).", 1);
        let q2 = iq("q(A, B) :- R(A, B), T(A).", 1);
        assert!(refute_strong_simulation(&q1, &q2, 3).is_none());
    }
}
