//! Conjunctive queries with **index variables** and their grouped semantics.
//!
//! §5 of the paper: "We use the standard notation for conjunctive queries
//! \[41\] over input relations R1,…,Rn, except that we distinguish a set of
//! index variables in the head of the query: Q(Ī; V̄) :- …".
//!
//! On a database `D`, an indexed query denotes a set of *groups*: for every
//! satisfying assignment, the index terms `Ī` evaluate to a group key `ī`
//! and the value terms `V̄` contribute a tuple to that group:
//!
//! ```text
//! ⟦Q⟧(D) = { (ī, G(ī)) | ī ∈ π_Ī(Q(D)) },   G(ī) = { v̄ | (ī,v̄) ∈ Q(D) }
//! ```
//!
//! Groups are non-empty by construction. This is exactly the result of the
//! `outernest`-style encoding of one set level of a complex object (§5.1);
//! [`simulation_holds_on`] and [`strong_simulation_holds_on`] are the
//! *definitional* (per-database) forms of the paper's simulation and strong
//! simulation, used as ground truth to validate the syntactic deciders.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::ControlFlow;

use co_cq::{ConjunctiveQuery, Database, QueryAtom, Relation, Term, Tuple};

/// A conjunctive query with distinguished index terms in the head.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndexedQuery {
    /// The index terms `Ī` (group key).
    pub index: Vec<Term>,
    /// The value terms `V̄` (group members).
    pub value: Vec<Term>,
    /// Body atoms.
    pub body: Vec<QueryAtom>,
    /// Whether equality elimination found a contradiction.
    pub unsatisfiable: bool,
}

impl IndexedQuery {
    /// Builds an indexed query from a plain conjunctive query by splitting
    /// its head: the first `index_arity` terms are the index.
    pub fn from_cq(q: &ConjunctiveQuery, index_arity: usize) -> IndexedQuery {
        assert!(index_arity <= q.head.len(), "index arity exceeds head width");
        IndexedQuery {
            index: q.head[..index_arity].to_vec(),
            value: q.head[index_arity..].to_vec(),
            body: q.body.clone(),
            unsatisfiable: q.unsatisfiable,
        }
    }

    /// The flat view: a conjunctive query with head `Ī ++ V̄`.
    pub fn as_cq(&self) -> ConjunctiveQuery {
        let mut head = self.index.clone();
        head.extend(self.value.iter().copied());
        ConjunctiveQuery { head, body: self.body.clone(), unsatisfiable: self.unsatisfiable }
    }

    /// Distinct variables appearing in the index terms.
    pub fn index_vars(&self) -> Vec<co_cq::Var> {
        let mut vs: Vec<co_cq::Var> = self.index.iter().filter_map(Term::as_var).collect();
        vs.sort();
        vs.dedup();
        vs
    }

    /// Validates safety: every head variable occurs in the body.
    pub fn validate(&self) -> Result<(), co_cq::QueryError> {
        let body_vars = self.as_cq().body_vars();
        for t in self.index.iter().chain(self.value.iter()) {
            if let Term::Var(v) = t {
                if !body_vars.contains(v) {
                    return Err(co_cq::QueryError::UnsafeHeadVar(*v));
                }
            }
        }
        Ok(())
    }

    /// Evaluates the grouped semantics: group key → set of value tuples.
    pub fn groups(&self, db: &Database) -> BTreeMap<Tuple, Relation> {
        let mut out: BTreeMap<Tuple, Relation> = BTreeMap::new();
        if self.unsatisfiable {
            return out;
        }
        co_cq::eval::for_each_total_assignment(&self.as_cq(), db, |assignment| {
            let key: Tuple = self
                .index
                .iter()
                .map(|t| match t {
                    Term::Const(c) => *c,
                    Term::Var(v) => assignment[v],
                })
                .collect();
            let val: Tuple = self
                .value
                .iter()
                .map(|t| match t {
                    Term::Const(c) => *c,
                    Term::Var(v) => assignment[v],
                })
                .collect();
            out.entry(key).or_default().insert(val);
            ControlFlow::Continue(())
        });
        out
    }
}

impl fmt::Display for IndexedQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q(")?;
        for (i, t) in self.index.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "; ")?;
        for (i, t) in self.value.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ") :- ")?;
        if self.unsatisfiable {
            write!(f, "false")?;
            if !self.body.is_empty() {
                write!(f, ", ")?;
            }
        }
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        if self.body.is_empty() && !self.unsatisfiable {
            write!(f, "true")?;
        }
        Ok(())
    }
}

/// The definitional (per-database) simulation check: every group of `q` is
/// a subset of some group of `q'` **on this database**.
pub fn simulation_holds_on(q: &IndexedQuery, q2: &IndexedQuery, db: &Database) -> bool {
    let groups1 = q.groups(db);
    let groups2 = q2.groups(db);
    groups1.values().all(|g| groups2.values().any(|g2| g.is_subset(g2)))
}

/// The definitional strong simulation check: every group of `q` *equals*
/// some group of `q'` on this database.
pub fn strong_simulation_holds_on(q: &IndexedQuery, q2: &IndexedQuery, db: &Database) -> bool {
    let groups1 = q.groups(db);
    let groups2 = q2.groups(db);
    groups1.values().all(|g| groups2.values().any(|g2| g == g2))
}

/// Finds a group of `q` on `db` violating strong simulation into `q2`
/// (equal to no group of `q2`), if any.
pub fn strong_simulation_violation(
    q: &IndexedQuery,
    q2: &IndexedQuery,
    db: &Database,
) -> Option<Tuple> {
    let groups1 = q.groups(db);
    let groups2 = q2.groups(db);
    groups1.iter().find(|(_, g)| !groups2.values().any(|g2| *g == g2)).map(|(k, _)| k.clone())
}

/// Finds a group of `q` on `db` violating simulation into `q2`, if any.
pub fn simulation_violation(q: &IndexedQuery, q2: &IndexedQuery, db: &Database) -> Option<Tuple> {
    let groups1 = q.groups(db);
    let groups2 = q2.groups(db);
    groups1
        .iter()
        .find(|(_, g)| !groups2.values().any(|g2| g.is_subset(g2)))
        .map(|(k, _)| k.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_cq::parse_query;
    use co_object::Atom;

    fn iq(text: &str, index_arity: usize) -> IndexedQuery {
        IndexedQuery::from_cq(&parse_query(text).unwrap(), index_arity)
    }

    #[test]
    fn grouped_semantics_groups_by_index() {
        // q(X; Y) :- R(X, Y): group per distinct X.
        let q = iq("q(X, Y) :- R(X, Y).", 1);
        let db = Database::from_ints(&[("R", &[&[1, 10], &[1, 11], &[2, 20]])]);
        let groups = q.groups(&db);
        assert_eq!(groups.len(), 2);
        let g1 = &groups[&vec![Atom::int(1)]];
        assert_eq!(g1.len(), 2);
        let g2 = &groups[&vec![Atom::int(2)]];
        assert_eq!(g2.len(), 1);
    }

    #[test]
    fn groups_are_never_empty() {
        let q = iq("q(X, Y) :- R(X, Y), S(X).", 1);
        let db = Database::from_ints(&[("R", &[&[1, 10]]), ("S", &[&[2]])]);
        assert!(q.groups(&db).is_empty());
    }

    #[test]
    fn unsatisfiable_queries_have_no_groups() {
        let q = iq("q(X, Y) :- R(X, Y), false.", 1);
        let db = Database::from_ints(&[("R", &[&[1, 10]])]);
        assert!(q.groups(&db).is_empty());
    }

    #[test]
    fn simulation_on_database_examples() {
        // Group by first column of R vs group by first column of a wider R.
        let q1 = iq("q(X, Y) :- R(X, Y), S(Y).", 1);
        let q2 = iq("q(X, Y) :- R(X, Y).", 1);
        let db = Database::from_ints(&[("R", &[&[1, 10], &[1, 11]]), ("S", &[&[10]])]);
        // q1's group {10} ⊆ q2's group {10, 11}.
        assert!(simulation_holds_on(&q1, &q2, &db));
        assert!(!simulation_holds_on(&q2, &q1, &db));
        assert_eq!(simulation_violation(&q2, &q1, &db), Some(vec![Atom::int(1)]));
    }

    #[test]
    fn strong_simulation_needs_equality() {
        let q1 = iq("q(X, Y) :- R(X, Y), S(Y).", 1);
        let q2 = iq("q(X, Y) :- R(X, Y).", 1);
        let db = Database::from_ints(&[("R", &[&[1, 10], &[1, 11]]), ("S", &[&[10]])]);
        // {10} ≠ {10, 11}: simulation holds but strong simulation fails.
        assert!(simulation_holds_on(&q1, &q2, &db));
        assert!(!strong_simulation_holds_on(&q1, &q2, &db));
        // A query strongly simulates itself on any database.
        assert!(strong_simulation_holds_on(&q1, &q1, &db));
    }

    #[test]
    fn constants_allowed_in_index_and_value() {
        let q = iq("q(1, Y) :- R(X, Y).", 1);
        let db = Database::from_ints(&[("R", &[&[5, 10], &[6, 11]])]);
        let groups = q.groups(&db);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[&vec![Atom::int(1)]].len(), 2);
    }

    #[test]
    fn display_shows_index_split() {
        let q = iq("q(X, Y) :- R(X, Y).", 1);
        assert_eq!(q.to_string(), "q(X; Y) :- R(X, Y)");
    }

    #[test]
    fn index_vars_deduplicate() {
        let q = iq("q(X, X, Y) :- R(X, Y).", 2);
        assert_eq!(q.index_vars().len(), 1);
    }
}
