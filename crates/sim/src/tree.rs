//! Depth-`d` **query trees**: the flattened form of a COQL query, and the
//! recursive `d`-simulation containment procedure (§5, Equation 2 for
//! general `d`).
//!
//! §5 of the paper: "we 'flatten' the queries themselves, using techniques
//! from \[39\]: each COQL query Q can be encoded as m conjunctive queries
//! Q1,…,Qm". The m queries are organized as a tree — one conjunctive query
//! per *set node* of the output type, linked by index variables. A
//! [`QueryTree`] evaluates over a flat database to a complex-object
//! *value*; containment of two query trees under the Hoare order is the
//! paper's d-simulation, a condition with `d+1` quantifier alternations.
//!
//! # Structure
//!
//! Each [`TreeNode`] carries:
//! * an [`IndexedQuery`] whose index terms are the node's formal
//!   parameters (bound by the parent) and whose value terms are the atomic
//!   output columns;
//! * a [`Template`] describing how one *element* of the node's set is
//!   assembled from atomic columns and child sets;
//! * [`ChildLink`]s: for each child, the terms over this node's body
//!   variables that form the child's actual index arguments.
//!
//! # The containment procedure
//!
//! [`tree_contained_in`] decides `∀D: ⟦T⟧(D) ⊑ ⟦T'⟧(D)` (Hoare order) by a
//! recursive generalization of the witness-copy mapping procedure of
//! [`crate::simulation`] (whose depth-1 completeness proof is in that
//! module's docs):
//!
//! * **∀-side**: freeze one generic element of the source node (a fresh
//!   copy of its body with index bound to the inherited arguments).
//! * **Emptiness case split**: enumerate which of the generic element's
//!   child sets are assumed non-empty (pattern `σ`). *This is exactly the
//!   exponential empty-set component the paper describes*: witness copies
//!   assert the existence of child-set members, which is only sound for
//!   children assumed non-empty, so each pattern needs its own covering
//!   target. When the queries are guaranteed not to produce empty sets
//!   (the paper's §4 hypothesis, e.g. `nest;unnest` sequences) only the
//!   all-non-empty pattern is needed and the procedure collapses to NP —
//!   [`tree_contained_in_no_empty_sets`] implements that fast path.
//! * **∃-side**: for each pattern, add the witness copies of the σ-children
//!   (as many as the target child link has variables — the depth-1
//!   pigeonhole bound) and search homomorphisms of the target node's body
//!   into everything frozen so far, carrying index arguments, equating
//!   matched atomic template columns, and recursing into matched child
//!   pairs with the link images as the next arguments.
//!
//! Soundness follows the depth-1 argument level by level (every frozen fact
//! is realized in any database realizing the ancestor chain and the
//! pattern); for depth 1 the procedure is provably complete (it specializes
//! to `simulated_by`, cross-checked in tests); for deeper trees we validate
//! completeness differentially against the definitional semantics, as the
//! extended abstract defers the general proof to its full version.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::ops::ControlFlow;

use co_cq::freeze::freeze_atoms_with;
use co_cq::{
    Assignment, ConjunctiveQuery, Database, HomProblem, QueryAtom, SearchOutcome, Term, Var,
};
use co_object::interrupt::{self, Interrupted, SharedBudget};
use co_object::{par, Atom, Field, Value};
use co_trace::kernel::{self, Metric};

use crate::indexed::IndexedQuery;

/// How one element of a node's set is assembled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Template {
    /// The element component is the node's value column `i`.
    AtomCol(usize),
    /// A record of sub-templates (fields sorted by label at construction).
    Record(Vec<(Field, Template)>),
    /// A nested set produced by child `j`.
    Child(usize),
}

impl Template {
    /// Builds a record template with fields sorted by label.
    pub fn record(mut fields: Vec<(Field, Template)>) -> Template {
        fields.sort_by_key(|(f, _)| *f);
        Template::Record(fields)
    }
}

/// A child subtree plus the terms (over the parent's body variables) that
/// form its actual index arguments.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChildLink {
    /// Actual index arguments, evaluated in the parent's assignment.
    pub link: Vec<Term>,
    /// The child node.
    pub node: TreeNode,
}

/// One set node of a flattened COQL query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeNode {
    /// The node's conjunctive query: index = formal parameters, value =
    /// atomic output columns.
    pub query: IndexedQuery,
    /// The element template.
    pub template: Template,
    /// Child subtrees.
    pub children: Vec<ChildLink>,
}

/// A complete flattened query (root has no index parameters).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryTree {
    /// The root set node.
    pub root: TreeNode,
}

/// Validation errors for query trees.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TreeError {
    /// Root node declared index parameters.
    RootHasIndex,
    /// A template referenced a value column out of range.
    BadAtomColumn(usize),
    /// A template referenced a child out of range.
    BadChild(usize),
    /// A child link's arity differs from the child's index arity.
    LinkArityMismatch,
    /// A head variable does not occur in the node's body.
    Unsafe(Var),
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::RootHasIndex => write!(f, "root node must not take index parameters"),
            TreeError::BadAtomColumn(i) => {
                write!(f, "template references value column {i} out of range")
            }
            TreeError::BadChild(i) => write!(f, "template references child {i} out of range"),
            TreeError::LinkArityMismatch => write!(f, "child link arity mismatch"),
            TreeError::Unsafe(v) => write!(f, "unsafe head variable `{v}`"),
        }
    }
}

impl std::error::Error for TreeError {}

impl QueryTree {
    /// Validates the whole tree.
    pub fn validate(&self) -> Result<(), TreeError> {
        if !self.root.query.index.is_empty() {
            return Err(TreeError::RootHasIndex);
        }
        self.root.validate()
    }

    /// Evaluates the tree on a flat database to a complex-object value
    /// (always a set).
    pub fn evaluate(&self, db: &Database) -> Value {
        self.root.eval_set(db, &[])
    }

    /// Set-nesting depth of the result type.
    pub fn depth(&self) -> usize {
        self.root.depth()
    }
}

impl TreeNode {
    fn validate(&self) -> Result<(), TreeError> {
        let body_vars = self.query.as_cq().body_vars();
        for t in self.query.index.iter().chain(self.query.value.iter()) {
            if let Term::Var(v) = t {
                if !body_vars.contains(v) {
                    return Err(TreeError::Unsafe(*v));
                }
            }
        }
        self.validate_template(&self.template)?;
        for child in &self.children {
            if child.link.len() != child.node.query.index.len() {
                return Err(TreeError::LinkArityMismatch);
            }
            for t in &child.link {
                if let Term::Var(v) = t {
                    if !body_vars.contains(v) {
                        return Err(TreeError::Unsafe(*v));
                    }
                }
            }
            child.node.validate()?;
        }
        Ok(())
    }

    fn validate_template(&self, t: &Template) -> Result<(), TreeError> {
        match t {
            Template::AtomCol(i) => {
                if *i >= self.query.value.len() {
                    return Err(TreeError::BadAtomColumn(*i));
                }
            }
            Template::Child(j) => {
                if *j >= self.children.len() {
                    return Err(TreeError::BadChild(*j));
                }
            }
            Template::Record(fields) => {
                for (_, sub) in fields {
                    self.validate_template(sub)?;
                }
            }
        }
        Ok(())
    }

    fn depth(&self) -> usize {
        1 + self.children.iter().map(|c| c.node.depth()).max().unwrap_or(0)
    }

    /// Evaluates this node's set at the given index arguments.
    pub fn eval_set(&self, db: &Database, args: &[Atom]) -> Value {
        debug_assert_eq!(args.len(), self.query.index.len());
        let Some(fixed) = bind_index(&self.query.index, args) else {
            return Value::empty_set();
        };
        if self.query.unsatisfiable {
            return Value::empty_set();
        }
        let mut elems = Vec::new();
        HomProblem::new(&self.query.body, db).with_fixed(fixed).for_each(|assignment| {
            elems.push(self.instantiate(db, assignment));
            ControlFlow::Continue(())
        });
        Value::set(elems)
    }

    fn instantiate(&self, db: &Database, assignment: &Assignment) -> Value {
        self.instantiate_template(&self.template, db, assignment)
    }

    fn instantiate_template(&self, t: &Template, db: &Database, assignment: &Assignment) -> Value {
        match t {
            Template::AtomCol(i) => Value::Atom(eval_term(&self.query.value[*i], assignment)),
            Template::Record(fields) => Value::record(
                fields
                    .iter()
                    .map(|(f, sub)| (*f, self.instantiate_template(sub, db, assignment)))
                    .collect(),
            )
            .expect("templates have distinct labels"),
            Template::Child(j) => {
                let child = &self.children[*j];
                let args: Vec<Atom> = child.link.iter().map(|t| eval_term(t, assignment)).collect();
                child.node.eval_set(db, &args)
            }
        }
    }
}

fn eval_term(t: &Term, assignment: &Assignment) -> Atom {
    match t {
        Term::Const(c) => *c,
        Term::Var(v) => assignment[v],
    }
}

/// Binds formal index terms to actual atoms; `None` on constant mismatch or
/// inconsistent repeated variables (the set is empty at these arguments).
fn bind_index(index: &[Term], args: &[Atom]) -> Option<Assignment> {
    let mut fixed = Assignment::new();
    for (t, &a) in index.iter().zip(args.iter()) {
        match t {
            Term::Const(c) => {
                if *c != a {
                    return None;
                }
            }
            Term::Var(v) => match fixed.insert(*v, a) {
                Some(prev) if prev != a => return None,
                _ => {}
            },
        }
    }
    Some(fixed)
}

/// Options for the containment procedure.
#[derive(Clone, Copy, Debug, Default)]
pub struct ContainOptions {
    /// Assume neither tree ever produces an empty set: only the
    /// all-non-empty pattern is checked (NP fast path, the paper's §4
    /// no-empty-sets regime). Unsound if the assumption is false.
    pub no_empty_sets: bool,
    /// Extra witness copies per child beyond the pigeonhole bound.
    pub extra_witnesses: usize,
    /// Kernel threads for the emptiness-pattern case split (`0` = use the
    /// process-global setting, [`co_object::par::kernel_threads`]).
    pub threads: usize,
}

/// Decides `∀D: ⟦t1⟧(D) ⊑ ⟦t2⟧(D)` in the Hoare order (Theorem 4.1's
/// engine once COQL queries are flattened).
pub fn tree_contained_in(t1: &QueryTree, t2: &QueryTree) -> bool {
    tree_contained_in_with(t1, t2, ContainOptions::default())
}

/// The NP fast path assuming no empty sets ever appear in either result
/// (the paper's §4 hypothesis under which containment is NP-complete).
pub fn tree_contained_in_no_empty_sets(t1: &QueryTree, t2: &QueryTree) -> bool {
    tree_contained_in_with(
        t1,
        t2,
        ContainOptions { no_empty_sets: true, extra_witnesses: 0, threads: 0 },
    )
}

/// Containment with explicit options.
///
/// Panics if a thread-local [`co_object::interrupt`] budget expires during
/// the decision — callers running under a budget must use
/// [`try_tree_contained_in_with`].
pub fn tree_contained_in_with(t1: &QueryTree, t2: &QueryTree, opts: ContainOptions) -> bool {
    try_tree_contained_in_with(t1, t2, opts)
        .expect("interrupted: use try_tree_contained_in_with under an interrupt budget")
}

/// Cancellable variant of [`tree_contained_in_with`]: polls the
/// thread-local [`co_object::interrupt`] budget once per emptiness pattern
/// (plus the per-probe checks inside the homomorphism engine) and aborts
/// with [`Interrupted`] when it expires. Identical when no budget is
/// installed.
pub fn try_tree_contained_in_with(
    t1: &QueryTree,
    t2: &QueryTree,
    opts: ContainOptions,
) -> Result<bool, Interrupted> {
    Ok(try_tree_containment_verdict(t1, t2, opts)?.holds)
}

/// A containment verdict with refutation provenance, for certificates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeVerdict {
    /// Whether `∀D: ⟦t1⟧(D) ⊑ ⟦t2⟧(D)` holds.
    pub holds: bool,
    /// When the refutation came from the root node's `2^m` emptiness case
    /// split, the index of the refuting pattern; `None` for positive
    /// verdicts, or when the refutation precedes the loop (template shape
    /// mismatch at the root).
    pub refuted_pattern: Option<u32>,
}

/// [`try_tree_contained_in_with`] returning the root-level refuting
/// emptiness pattern alongside the verdict (the provenance carried by
/// negative certificates).
pub fn try_tree_containment_verdict(
    t1: &QueryTree,
    t2: &QueryTree,
    opts: ContainOptions,
) -> Result<TreeVerdict, Interrupted> {
    let ctx = Context { db: Database::new(), opts, frozen: HashSet::new() };
    Ok(match covered_detail(&ctx, &t1.root, &[], &t2.root, &[])? {
        Cover::Holds => TreeVerdict { holds: true, refuted_pattern: None },
        Cover::RefutedTemplate => TreeVerdict { holds: false, refuted_pattern: None },
        Cover::RefutedPattern(p) => TreeVerdict { holds: false, refuted_pattern: Some(p) },
    })
}

#[derive(Clone)]
struct Context {
    db: Database,
    opts: ContainOptions,
    /// Atoms minted while freezing copies; only these may be merged when a
    /// pattern's specialization unifies arguments (real query constants are
    /// rigid).
    frozen: HashSet<Atom>,
}

impl Context {
    /// Freezes a fresh copy of `node`'s body at `args`, registering the
    /// newly minted atoms as mergeable.
    fn instantiate(&mut self, node: &TreeNode, args: &[Atom]) -> Instantiated {
        let mut assignment: HashMap<Var, Atom> = HashMap::new();
        let inst = instantiate_body(node, args, &mut assignment, &mut self.db);
        self.frozen.extend(assignment.values().copied());
        inst
    }

    /// Applies an atom substitution to every fact.
    fn substituted(&self, merge: &HashMap<Atom, Atom>) -> Context {
        if merge.is_empty() {
            return self.clone();
        }
        let mut db = Database::new();
        for (name, rel) in self.db.iter() {
            for tuple in rel.iter() {
                db.insert(*name, tuple.iter().map(|&a| resolve(merge, a)).collect());
            }
        }
        Context { db, opts: self.opts, frozen: self.frozen.clone() }
    }
}

/// Follows a merge map to the representative atom.
fn resolve(merge: &HashMap<Atom, Atom>, mut a: Atom) -> Atom {
    let mut guard = 0;
    while let Some(&next) = merge.get(&a) {
        a = next;
        guard += 1;
        debug_assert!(guard < 10_000, "merge map cycle");
    }
    a
}

/// Outcome of unifying index formals with frozen arguments.
enum Unify {
    /// Consistent (possibly after recording merges of frozen atoms).
    Ok,
    /// Two distinct *rigid* constants were equated: no valuation realizes
    /// this situation, so the assuming pattern can never occur.
    Impossible,
}

/// Unifies a node's index formals with actual arguments, extending `merge`.
///
/// This is the heart of the soundness fix for specialized children: a
/// formal that is a constant (or a repeated variable) constrains the
/// *generic* frozen arguments — the constrained situation is realized by
/// valuations that merge the frozen atom with the constant (or with each
/// other), so the checking context must be specialized accordingly rather
/// than treating the mismatch as "always empty".
fn unify_index(
    formals: &[Term],
    args: &[Atom],
    frozen: &HashSet<Atom>,
    merge: &mut HashMap<Atom, Atom>,
) -> Unify {
    let mut bound: HashMap<Var, Atom> = HashMap::new();
    for (t, &raw) in formals.iter().zip(args.iter()) {
        let arg = resolve(merge, raw);
        let demand = match t {
            Term::Const(c) => Some(*c),
            Term::Var(v) => match bound.get(v) {
                Some(&prev) => Some(resolve(merge, prev)),
                None => {
                    bound.insert(*v, arg);
                    None
                }
            },
        };
        if let Some(d) = demand {
            let d = resolve(merge, d);
            if d == arg {
                continue;
            }
            if frozen.contains(&arg) {
                merge.insert(arg, d);
            } else if frozen.contains(&d) {
                merge.insert(d, arg);
            } else {
                return Unify::Impossible;
            }
        }
    }
    Unify::Ok
}

fn resolve_args(merge: &HashMap<Atom, Atom>, args: &[Atom]) -> Vec<Atom> {
    args.iter().map(|&a| resolve(merge, a)).collect()
}

/// Why (or whether) one covering check succeeded — the detail behind the
/// boolean [`covered`], kept so root-level refutations can say which
/// emptiness pattern failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Cover {
    /// Every emptiness pattern is satisfied.
    Holds,
    /// The element templates have incompatible shapes; refuted before the
    /// pattern loop even starts.
    RefutedTemplate,
    /// This emptiness pattern has no covering target element.
    RefutedPattern(u32),
}

/// Core recursion: does `n1`'s set at `args1` Hoare-embed into `n2`'s set
/// at `args2`, generically over all databases extending the context?
///
/// `Err(Interrupted)` means the thread-local interrupt budget expired; the
/// partial verdict is meaningless and must not be used or memoized.
fn covered(
    ctx: &Context,
    n1: &TreeNode,
    args1: &[Atom],
    n2: &TreeNode,
    args2: &[Atom],
) -> Result<bool, Interrupted> {
    Ok(covered_detail(ctx, n1, args1, n2, args2)? == Cover::Holds)
}

/// [`covered`] with refutation provenance (see [`Cover`]).
fn covered_detail(
    ctx: &Context,
    n1: &TreeNode,
    args1: &[Atom],
    n2: &TreeNode,
    args2: &[Atom],
) -> Result<Cover, Interrupted> {
    kernel::bump(Metric::TreeCoveredCalls);
    // Source-set-always-empty fast path; constant/repeat constraints in the
    // formals *specialize* the context instead (entry unification).
    if n1.query.unsatisfiable {
        return Ok(Cover::Holds);
    }
    let mut entry_merge = HashMap::new();
    match unify_index(&n1.query.index, args1, &ctx.frozen, &mut entry_merge) {
        Unify::Impossible => return Ok(Cover::Holds), // empty in every valuation
        Unify::Ok => {}
    }
    let ctx = ctx.substituted(&entry_merge);
    let args1 = resolve_args(&entry_merge, args1);
    let args2 = resolve_args(&entry_merge, args2);

    // Target-set-always-empty: an unsatisfiable n2 body means n2's set is
    // empty at every valuation, while n1's generic element (whose entry
    // unification just succeeded) is realized by some database — nothing
    // can cover it. Checked *after* the n1 emptiness cases: the hom search
    // below only sees n2's residual body, which may well be satisfiable.
    if n2.query.unsatisfiable {
        return Ok(Cover::RefutedTemplate);
    }

    // Template shapes must correspond, else no element can ever be covered.
    let Some(pairs) = match_templates(&n1.template, &n2.template) else {
        return Ok(Cover::RefutedTemplate);
    };

    // ∀-side: freeze a generic element of n1's set.
    let mut ctx1 = ctx.clone();
    let g0 = ctx1.instantiate(n1, &args1);

    // Child arguments of the generic element.
    let child_args1: Vec<Vec<Atom>> =
        n1.children.iter().map(|c| c.link.iter().map(|t| g0.image(t)).collect()).collect();

    // Emptiness patterns over the matched source children.
    let matched_children: Vec<(usize, usize)> = pairs.children.clone();
    let m = matched_children.len();
    let all_nonempty: u32 = if m >= 32 { u32::MAX } else { (1u32 << m) - 1 };
    let patterns: Vec<u32> = if ctx1.opts.no_empty_sets || m == 0 {
        vec![all_nonempty]
    } else {
        (0..=all_nonempty).collect()
    };

    let case = PatternCase {
        ctx1: &ctx1,
        n1,
        n2,
        g0: &g0,
        child_args1: &child_args1,
        args2: &args2,
        matched_children: &matched_children,
        atom_pairs: &pairs.atoms,
    };
    // Each pattern is checked independently, so the 2^m case split can be
    // partitioned across kernel workers (DESIGN.md §14). Small splits stay
    // sequential: the spawn cost dwarfs a handful of patterns.
    let threads = pattern_threads(&ctx1.opts);
    if threads > 1 && patterns.len() >= PARALLEL_PATTERN_MIN {
        return Ok(match check_patterns_parallel(&case, &patterns, threads)? {
            Some(p) => Cover::RefutedPattern(p),
            None => Cover::Holds,
        });
    }
    for pattern in patterns {
        if !check_pattern(&case, pattern)? {
            return Ok(Cover::RefutedPattern(pattern));
        }
    }
    Ok(Cover::Holds)
}

/// Everything one emptiness-pattern check needs, borrowed from the
/// enclosing [`covered`] call so patterns can be checked from any thread.
struct PatternCase<'a> {
    ctx1: &'a Context,
    n1: &'a TreeNode,
    n2: &'a TreeNode,
    g0: &'a Instantiated,
    child_args1: &'a [Vec<Atom>],
    args2: &'a [Atom],
    matched_children: &'a [(usize, usize)],
    atom_pairs: &'a [(usize, usize)],
}

/// Minimum number of emptiness patterns before [`covered`] fans out.
const PARALLEL_PATTERN_MIN: usize = 32;

/// Threads the pattern loop may use: the per-request override from
/// [`ContainOptions::threads`], else the process-global setting; always 1
/// on a pool worker (no nested fan-out).
fn pattern_threads(opts: &ContainOptions) -> usize {
    if par::in_worker() {
        return 1;
    }
    if opts.threads != 0 {
        opts.threads
    } else {
        par::effective_threads()
    }
}

/// Checks one emptiness pattern: `Ok(true)` if it is satisfied (or
/// vacuous), `Ok(false)` if it refutes the containment.
fn check_pattern(case: &PatternCase<'_>, pattern: u32) -> Result<bool, Interrupted> {
    let PatternCase { ctx1, n1, n2, g0, child_args1, args2, matched_children, atom_pairs } = *case;
    // The emptiness patterns are the exponential component of the
    // procedure (2^m of them), so each is a unit of cancellable work in
    // its own right.
    kernel::bump(Metric::TreeEmptinessPatterns);
    interrupt::probe()?;
    // Assuming the σ-children non-empty may *specialize* the generic
    // element (their index formals constrain its columns): compute the
    // induced merge; a rigid clash means no real element has this
    // pattern, which satisfies it vacuously.
    let mut pmerge = HashMap::new();
    for (bit, &(j1, _)) in matched_children.iter().enumerate() {
        if pattern & (1 << bit) == 0 {
            continue;
        }
        let child = &n1.children[j1].node;
        if child.query.unsatisfiable {
            return Ok(true); // this child is empty on every database
        }
        match unify_index(&child.query.index, &child_args1[j1], &ctx1.frozen, &mut pmerge) {
            Unify::Impossible => return Ok(true),
            Unify::Ok => {}
        }
    }
    let mut ctx2 = ctx1.substituted(&pmerge);
    let p_child_args: Vec<Vec<Atom>> =
        child_args1.iter().map(|a| resolve_args(&pmerge, a)).collect();
    let p_args2 = resolve_args(&pmerge, args2);

    // Witness copies for children assumed non-empty.
    for (bit, &(j1, j2)) in matched_children.iter().enumerate() {
        if pattern & (1 << bit) == 0 {
            continue;
        }
        let link2_vars = n2.children[j2].link.iter().filter(|t| matches!(t, Term::Var(_))).count();
        let copies = link2_vars + ctx2.opts.extra_witnesses;
        for _ in 0..copies {
            kernel::bump(Metric::TreeWitnessCopies);
            ctx2.instantiate(&n1.children[j1].node, &p_child_args[j1]);
        }
    }

    // ∃-side: homomorphisms of n2's body into everything frozen.
    let value_image = |i: usize| resolve(&pmerge, g0.image(&n1.query.value[i]));
    let Some(fixed) = target_fixing(n2, &p_args2, atom_pairs, &value_image) else {
        return Ok(false); // no target element can match the atomic columns
    };
    let mut pattern_ok = false;
    // An interruption inside the recursion cannot unwind through the
    // `for_each` closure, so it is captured here and re-raised after.
    let mut interrupted = None;
    let outcome = HomProblem::new(&n2.query.body, &ctx2.db).with_fixed(fixed).for_each(|hom| {
        // Recurse into matched, non-empty-assumed child pairs.
        let mut all_children_ok = true;
        for (bit, &(j1, j2)) in matched_children.iter().enumerate() {
            if pattern & (1 << bit) == 0 {
                continue; // source child assumed empty: {} ⊑ anything
            }
            let child2_args: Vec<Atom> =
                n2.children[j2].link.iter().map(|t| eval_term(t, hom)).collect();
            match covered(
                &ctx2,
                &n1.children[j1].node,
                &p_child_args[j1],
                &n2.children[j2].node,
                &child2_args,
            ) {
                Ok(true) => {}
                Ok(false) => {
                    all_children_ok = false;
                    break;
                }
                Err(stop) => {
                    interrupted = Some(stop);
                    return ControlFlow::Break(());
                }
            }
        }
        if all_children_ok {
            pattern_ok = true;
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    if let Some(stop) = interrupted {
        return Err(stop);
    }
    if outcome == SearchOutcome::Interrupted {
        return Err(Interrupted);
    }
    Ok(pattern_ok)
}

/// Partitions `patterns` across a scoped work-stealing pool; the first
/// refuting pattern cancels the siblings. Returns the refuting pattern
/// (the smallest one any worker reported, for deterministic certificates)
/// or `None` when every pattern is satisfied.
///
/// Merge discipline: a definite refutation wins even if other workers
/// were interrupted — a refuting pattern is a sound refutation of the
/// containment regardless of what the siblings were still computing. With
/// no refutation, any real budget expiry yields `Err(Interrupted)`.
fn check_patterns_parallel(
    case: &PatternCase<'_>,
    patterns: &[u32],
    threads: usize,
) -> Result<Option<u32>, Interrupted> {
    let shared = SharedBudget::fork_current();
    let chunk = (patterns.len() / (threads * 8)).max(1);
    let (results, stats) = par::run_workers(threads, patterns.len(), chunk, |me, feeder| {
        let before = kernel::snapshot();
        let guard = interrupt::install_shared(&shared);
        let mut verdict: Result<Option<u32>, Interrupted> = Ok(None);
        'chunks: while let Some(range) = feeder.next(me) {
            for pi in range {
                match check_pattern(case, patterns[pi]) {
                    Ok(true) => {}
                    Ok(false) => {
                        verdict = Ok(Some(patterns[pi]));
                        feeder.stop();
                        shared.cancel();
                        break 'chunks;
                    }
                    Err(Interrupted) => {
                        verdict = Err(Interrupted);
                        break 'chunks;
                    }
                }
            }
        }
        drop(guard);
        (verdict, kernel::snapshot().delta(&before))
    });
    shared.rejoin();
    par::note_engaged(stats.threads);
    kernel::bump_by(Metric::KernelParallelBranches, stats.branches);
    kernel::bump_by(Metric::KernelSteals, stats.steals);
    let mut refuted: Option<u32> = None;
    let mut interrupted = shared.is_expired();
    for (verdict, delta) in results {
        kernel::absorb(&delta);
        match verdict {
            Ok(Some(p)) => refuted = Some(refuted.map_or(p, |prev: u32| prev.min(p))),
            Err(Interrupted) => interrupted = true,
            Ok(None) => {}
        }
    }
    if refuted.is_some() {
        return Ok(refuted);
    }
    if interrupted {
        return Err(Interrupted);
    }
    Ok(None)
}

/// Result of template matching: pairs of atomic columns to equate and
/// child indices to recurse into.
struct TemplatePairs {
    atoms: Vec<(usize, usize)>,
    children: Vec<(usize, usize)>,
}

fn match_templates(t1: &Template, t2: &Template) -> Option<TemplatePairs> {
    let mut pairs = TemplatePairs { atoms: Vec::new(), children: Vec::new() };
    if walk(t1, t2, &mut pairs) {
        Some(pairs)
    } else {
        None
    }
}

fn walk(t1: &Template, t2: &Template, out: &mut TemplatePairs) -> bool {
    match (t1, t2) {
        (Template::AtomCol(i), Template::AtomCol(j)) => {
            out.atoms.push((*i, *j));
            true
        }
        (Template::Child(i), Template::Child(j)) => {
            out.children.push((*i, *j));
            true
        }
        (Template::Record(f1), Template::Record(f2)) => {
            f1.len() == f2.len()
                && f1
                    .iter()
                    .zip(f2.iter())
                    .all(|((l1, s1), (l2, s2))| l1 == l2 && walk(s1, s2, out))
        }
        _ => false,
    }
}

/// The frozen images of one instantiated copy of a node's body.
struct Instantiated {
    subst: HashMap<Var, Term>,
    assignment: HashMap<Var, Atom>,
}

impl Instantiated {
    fn image(&self, t: &Term) -> Atom {
        match t {
            Term::Const(c) => *c,
            Term::Var(v) => match self.subst.get(v) {
                Some(Term::Const(c)) => *c,
                Some(Term::Var(w)) => self.assignment[w],
                None => self.assignment[v],
            },
        }
    }
}

/// Freezes a fresh copy of `node`'s body with its index bound to `args`
/// into `db`. Caller must have checked `bind_index` succeeds.
fn instantiate_body(
    node: &TreeNode,
    args: &[Atom],
    assignment: &mut HashMap<Var, Atom>,
    db: &mut Database,
) -> Instantiated {
    let mut subst: HashMap<Var, Term> = HashMap::new();
    for (t, &a) in node.query.index.iter().zip(args.iter()) {
        if let Term::Var(v) = t {
            subst.insert(*v, Term::Const(a));
        }
    }
    for v in node.query.as_cq().body_vars() {
        subst.entry(v).or_insert_with(|| Term::Var(Var::fresh(&format!("t_{}", v.name()))));
    }
    let copy: Vec<QueryAtom> = node.query.body.iter().map(|a| a.substitute(&subst)).collect();
    freeze_atoms_with(&copy, assignment, db);
    Instantiated { subst, assignment: assignment.clone() }
}

/// Builds the fixed bindings for the target hom: index arguments plus
/// matched atomic column equalities (source images supplied by
/// `value_image`, already specialized). `None` when constants clash (no
/// hom can exist at all).
fn target_fixing(
    n2: &TreeNode,
    args2: &[Atom],
    atom_pairs: &[(usize, usize)],
    value_image: &dyn Fn(usize) -> Atom,
) -> Option<Assignment> {
    let mut fixed = Assignment::new();
    for (t, &a) in n2.query.index.iter().zip(args2.iter()) {
        match t {
            Term::Const(c) => {
                if *c != a {
                    return None;
                }
            }
            Term::Var(v) => match fixed.insert(*v, a) {
                Some(prev) if prev != a => return None,
                _ => {}
            },
        }
    }
    for &(i1, i2) in atom_pairs {
        let target = value_image(i1);
        match &n2.query.value[i2] {
            Term::Const(c) => {
                if *c != target {
                    return None;
                }
            }
            Term::Var(v) => match fixed.insert(*v, target) {
                Some(prev) if prev != target => return None,
                _ => {}
            },
        }
    }
    Some(fixed)
}

/// Encodes an [`IndexedQuery`] as the depth-2 tree `{ G(ī) | ī }` — a set
/// of groups with the index hidden. Tree containment on these trees is
/// exactly simulation (cross-checked in tests).
pub fn grouped_tree(q: &IndexedQuery) -> QueryTree {
    // Child: a fresh renaming of q whose index variables become formals.
    let (child_cq, _) = q.as_cq().rename_apart("g");
    let child_q = IndexedQuery {
        index: child_cq.head[..q.index.len()].to_vec(),
        value: child_cq.head[q.index.len()..].to_vec(),
        body: child_cq.body,
        unsatisfiable: q.unsatisfiable,
    };
    let m = child_q.value.len();
    let child_template = if m == 1 {
        Template::AtomCol(0)
    } else {
        Template::record(
            (0..m).map(|i| (Field::new(&format!("c{i}")), Template::AtomCol(i))).collect(),
        )
    };
    let child = TreeNode { query: child_q, template: child_template, children: Vec::new() };
    let root = TreeNode {
        query: IndexedQuery {
            index: Vec::new(),
            value: Vec::new(),
            body: q.body.clone(),
            unsatisfiable: q.unsatisfiable,
        },
        template: Template::Child(0),
        children: vec![ChildLink { link: q.index.clone(), node: child }],
    };
    QueryTree { root }
}

impl fmt::Display for QueryTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn node(n: &TreeNode, depth: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let pad = "  ".repeat(depth);
            writeln!(f, "{pad}{}", n.query)?;
            for (i, c) in n.children.iter().enumerate() {
                write!(f, "{pad}  child {i} link (")?;
                for (k, t) in c.link.iter().enumerate() {
                    if k > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                writeln!(f, "):")?;
                node(&c.node, depth + 2, f)?;
            }
            Ok(())
        }
        node(&self.root, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_cq::parse_query;
    use co_object::hoare_leq;

    fn iq(text: &str, index_arity: usize) -> IndexedQuery {
        IndexedQuery::from_cq(&parse_query(text).unwrap(), index_arity)
    }

    /// The running example: group R's second column by its first.
    fn group_r() -> QueryTree {
        grouped_tree(&iq("q(X, Y) :- R(X, Y).", 1))
    }

    #[test]
    fn evaluation_builds_nested_sets() {
        let t = group_r();
        t.validate().unwrap();
        let db = Database::from_ints(&[("R", &[&[1, 10], &[1, 11], &[2, 20]])]);
        let v = t.evaluate(&db);
        assert_eq!(v.to_string(), "{{10, 11}, {20}}");
        assert_eq!(t.depth(), 2);
    }

    #[test]
    fn duplicate_groups_collapse() {
        let t = group_r();
        let db = Database::from_ints(&[("R", &[&[1, 10], &[2, 10]])]);
        // Two groups both equal to {10}: the set collapses them.
        assert_eq!(t.evaluate(&db).to_string(), "{{10}}");
    }

    #[test]
    fn containment_is_reflexive() {
        let t = group_r();
        assert!(tree_contained_in(&t, &t));
    }

    #[test]
    fn tree_containment_matches_flat_simulation() {
        let cases = [
            ("q(X, Y) :- R(X, Y), S(Y).", 1, "q(X, Y) :- R(X, Y).", 1),
            ("q(X, Y) :- R(X, Y).", 1, "q(X, Y) :- R(X, Y), S(Y).", 1),
            ("q(X, Y) :- R(X, Y).", 1, "q(Y) :- R(X, Y).", 0),
            ("q(Y) :- R(X, Y).", 0, "q(X, Y) :- R(X, Y).", 1),
            ("q(X, Y) :- R(X, Y).", 1, "q(Y0, Y) :- R(X, Y), R(X, Y0).", 1),
        ];
        for (s1, i1, s2, i2) in cases {
            let q1 = iq(s1, i1);
            let q2 = iq(s2, i2);
            let flat = crate::simulation::is_simulated_by(&q1, &q2);
            let tree = tree_contained_in(&grouped_tree(&q1), &grouped_tree(&q2));
            assert_eq!(flat, tree, "{s1} vs {s2}");
        }
    }

    #[test]
    fn atomic_columns_must_agree() {
        // Elements are records [a: X, g: {Y}] over relation `rel`.
        let mk = |rel: &str| {
            let child = TreeNode {
                query: iq(&format!("q(I, Y) :- {rel}(I, Y)."), 1),
                template: Template::AtomCol(0),
                children: Vec::new(),
            };
            QueryTree {
                root: TreeNode {
                    query: IndexedQuery {
                        index: vec![],
                        value: vec![Term::var("X")],
                        body: parse_query(&format!("q(X) :- {rel}(X, Y).")).unwrap().body,
                        unsatisfiable: false,
                    },
                    template: Template::record(vec![
                        (Field::new("a"), Template::AtomCol(0)),
                        (Field::new("g"), Template::Child(0)),
                    ]),
                    children: vec![ChildLink { link: vec![Term::var("X")], node: child }],
                },
            }
        };
        let t1 = mk("R");
        let t2 = mk("R");
        assert!(tree_contained_in(&t1, &t2));
        let t3 = mk("S");
        assert!(!tree_contained_in(&t1, &t3));
    }

    #[test]
    fn depth_one_sets_behave_like_classical_containment() {
        // Flat set of pairs: containment = classical CQ containment.
        let mk = |body: &str| {
            let q = parse_query(body).unwrap();
            QueryTree {
                root: TreeNode {
                    query: IndexedQuery::from_cq(&q, 0),
                    template: Template::record(vec![
                        (Field::new("a"), Template::AtomCol(0)),
                        (Field::new("b"), Template::AtomCol(1)),
                    ]),
                    children: Vec::new(),
                },
            }
        };
        let t1 = mk("q(X, Z) :- E(X, Y), E(Y, Z), E(Z, X).");
        let t2 = mk("q(X, Z) :- E(X, Y), E(Y, Z).");
        assert!(tree_contained_in(&t1, &t2));
        assert!(!tree_contained_in(&t2, &t1));
    }

    #[test]
    fn empty_pattern_handles_possibly_empty_children() {
        //   t1: elements [a: X, g: {Y : R(X,Y), S(Y)}]  (g may be empty!)
        //   t2: elements [a: X, g: {Y : R(X,Y)}]
        let mk = |extra: Option<&str>| {
            let child_body = match extra {
                Some(e) => format!("q(I, Y) :- R(I, Y), {e}(Y)."),
                None => "q(I, Y) :- R(I, Y).".to_string(),
            };
            QueryTree {
                root: TreeNode {
                    query: IndexedQuery {
                        index: vec![],
                        value: vec![Term::var("X")],
                        body: parse_query("q(X) :- R(X, W).").unwrap().body,
                        unsatisfiable: false,
                    },
                    template: Template::record(vec![
                        (Field::new("a"), Template::AtomCol(0)),
                        (Field::new("g"), Template::Child(0)),
                    ]),
                    children: vec![ChildLink {
                        link: vec![Term::var("X")],
                        node: TreeNode {
                            query: iq(&child_body, 1),
                            template: Template::AtomCol(0),
                            children: Vec::new(),
                        },
                    }],
                },
            }
        };
        let filtered = mk(Some("S"));
        let plain = mk(None);
        // {Y : R∧S} ⊆ {Y : R} per X: containment holds.
        assert!(tree_contained_in(&filtered, &plain));
        // Reverse fails: plain's group can have a Y with no S.
        assert!(!tree_contained_in(&plain, &filtered));
        // Semantic spot check.
        let db = Database::from_ints(&[("R", &[&[1, 10], &[1, 11]]), ("S", &[&[10]])]);
        let v1 = filtered.evaluate(&db);
        let v2 = plain.evaluate(&db);
        assert!(hoare_leq(&v1, &v2));
        assert!(!hoare_leq(&v2, &v1));
    }

    #[test]
    fn unsatisfiable_target_child_refutes_nonempty_source_child() {
        // t1's g is {1}∩S per element; t2's g is always empty (its child
        // body is unsatisfiable) but leaves a satisfiable residual body.
        // The ∃-side hom search must not treat that residual as coverage:
        // on R={(1,0)}, S={1} the source element [a:1, g:{1}] has nothing
        // to embed into.
        let mk = |unsat: bool| {
            let child = TreeNode {
                query: IndexedQuery {
                    index: vec![Term::int(1)],
                    value: vec![Term::int(1)],
                    body: parse_query("q() :- R(1, B), S(1).").unwrap().body,
                    unsatisfiable: unsat,
                },
                template: Template::AtomCol(0),
                children: Vec::new(),
            };
            QueryTree {
                root: TreeNode {
                    query: IndexedQuery {
                        index: vec![],
                        value: vec![Term::int(1)],
                        body: parse_query("q() :- R(1, B).").unwrap().body,
                        unsatisfiable: false,
                    },
                    template: Template::record(vec![
                        (Field::new("a"), Template::AtomCol(0)),
                        (Field::new("g"), Template::Child(0)),
                    ]),
                    children: vec![ChildLink { link: vec![Term::int(1)], node: child }],
                },
            }
        };
        let live = mk(false);
        let empty = mk(true);
        assert!(!tree_contained_in(&live, &empty));
        assert!(!tree_strong_contained_in_no_empty_sets(&live, &empty));
        // The empty-g side stays Hoare-below the live side, and the
        // refutation agrees with direct evaluation.
        assert!(tree_contained_in(&empty, &live));
        let db = Database::from_ints(&[("R", &[&[1, 0]]), ("S", &[&[1]])]);
        assert!(!hoare_leq(&live.evaluate(&db), &empty.evaluate(&db)));
        assert!(hoare_leq(&empty.evaluate(&db), &live.evaluate(&db)));
    }

    #[test]
    fn no_empty_sets_fast_path_agrees_when_assumption_holds() {
        let q1 = iq("q(X, Y) :- R(X, Y).", 1);
        let q2 = iq("q(Y0, Y) :- R(X, Y), R(X, Y0).", 1);
        let t1 = grouped_tree(&q1);
        let t2 = grouped_tree(&q2);
        // grouped_tree groups are never empty, so both paths agree.
        assert_eq!(tree_contained_in(&t1, &t2), tree_contained_in_no_empty_sets(&t1, &t2));
    }

    #[test]
    fn validation_catches_errors() {
        let q = iq("q(X, Y) :- R(X, Y).", 1);
        let bad = QueryTree {
            root: TreeNode {
                query: q.clone(),
                template: Template::AtomCol(5),
                children: Vec::new(),
            },
        };
        assert_eq!(bad.validate(), Err(TreeError::RootHasIndex));
        let bad2 = QueryTree {
            root: TreeNode {
                query: IndexedQuery { index: vec![], ..q },
                template: Template::AtomCol(5),
                children: Vec::new(),
            },
        };
        assert_eq!(bad2.validate(), Err(TreeError::BadAtomColumn(5)));
    }
}

/// Decides **strong tree containment** under the no-empty-sets hypothesis:
/// every element of `t1`'s result corresponds to an element of `t2`'s with
/// equal atomic components and **equal** (not merely Hoare-dominated)
/// nested sets, recursively — Equation 4 lifted to depth `d`.
///
/// This is the engine behind equivalence of queries whose set values feed
/// *uninterpreted functions* (§7's nested aggregation): `f(S) = f(S')` for
/// every interpretation of `f` iff `S = S'`, so group equality — not group
/// inclusion — is the right matching condition.
///
/// Requires both trees to be empty-set free (the §4/§7 regime; group
/// emptiness would need negative conditions the certificate language
/// cannot express — exactly where the paper, too, leaves equivalence
/// open). At depth 1 the procedure coincides with
/// [`crate::strong::strongly_simulated_by`] on `grouped_tree` encodings
/// (cross-checked in tests).
pub fn tree_strong_contained_in_no_empty_sets(t1: &QueryTree, t2: &QueryTree) -> bool {
    try_tree_strong_contained_in_no_empty_sets(t1, t2)
        .expect("interrupted: use the try_ variant under an interrupt budget")
}

/// Cancellable variant of [`tree_strong_contained_in_no_empty_sets`]:
/// aborts with [`Interrupted`] when the thread-local
/// [`co_object::interrupt`] budget expires. Identical when no budget is
/// installed.
pub fn try_tree_strong_contained_in_no_empty_sets(
    t1: &QueryTree,
    t2: &QueryTree,
) -> Result<bool, Interrupted> {
    let ctx = Context {
        db: Database::new(),
        opts: ContainOptions { no_empty_sets: true, extra_witnesses: 0, threads: 0 },
        frozen: HashSet::new(),
    };
    covered_strong_dir(&ctx, &t1.root, &[], &t2.root, &[])
}

/// One direction of elementwise *equality* matching: every element of
/// `n1`'s set at `args1` equals some element of `n2`'s set at `args2`
/// (atomic components equal; matched child sets mutually strongly
/// contained).
fn covered_strong_dir(
    ctx: &Context,
    n1: &TreeNode,
    args1: &[Atom],
    n2: &TreeNode,
    args2: &[Atom],
) -> Result<bool, Interrupted> {
    kernel::bump(Metric::TreeCoveredCalls);
    interrupt::probe()?;
    if n1.query.unsatisfiable {
        return Ok(true);
    }
    let mut entry_merge = HashMap::new();
    match unify_index(&n1.query.index, args1, &ctx.frozen, &mut entry_merge) {
        Unify::Impossible => return Ok(true),
        Unify::Ok => {}
    }
    let ctx = ctx.substituted(&entry_merge);
    let args1 = resolve_args(&entry_merge, args1);
    let args2 = resolve_args(&entry_merge, args2);

    // See `covered_detail`: an unsatisfiable n2 body is empty everywhere,
    // so no element of n1's (realizable) set can equal one of n2's.
    if n2.query.unsatisfiable {
        return Ok(false);
    }

    let Some(pairs) = match_templates(&n1.template, &n2.template) else {
        return Ok(false);
    };

    // ∀-side: one generic element of n1's set.
    let mut ctx1 = ctx.clone();
    let g0 = ctx1.instantiate(n1, &args1);
    let child_args1: Vec<Vec<Atom>> =
        n1.children.iter().map(|c| c.link.iter().map(|t| g0.image(t)).collect()).collect();

    // All children are assumed non-empty (the no-empty-sets hypothesis);
    // their index formals may still specialize the generic element.
    let mut pmerge = HashMap::new();
    for &(j1, _) in &pairs.children {
        let child = &n1.children[j1].node;
        if child.query.unsatisfiable {
            // An always-empty child contradicts the hypothesis: no element
            // exists, so the claim is vacuous.
            return Ok(true);
        }
        match unify_index(&child.query.index, &child_args1[j1], &ctx1.frozen, &mut pmerge) {
            Unify::Impossible => return Ok(true),
            Unify::Ok => {}
        }
    }
    let mut ctx2 = ctx1.substituted(&pmerge);
    let p_child_args: Vec<Vec<Atom>> =
        child_args1.iter().map(|a| resolve_args(&pmerge, a)).collect();
    let p_args2 = resolve_args(&pmerge, &args2);

    // Witness copies for every matched child.
    for &(j1, j2) in &pairs.children {
        let link2_vars = n2.children[j2].link.iter().filter(|t| matches!(t, Term::Var(_))).count();
        for _ in 0..link2_vars + ctx2.opts.extra_witnesses {
            kernel::bump(Metric::TreeWitnessCopies);
            ctx2.instantiate(&n1.children[j1].node, &p_child_args[j1]);
        }
    }

    let value_image = |i: usize| resolve(&pmerge, g0.image(&n1.query.value[i]));
    let Some(fixed) = target_fixing(n2, &p_args2, &pairs.atoms, &value_image) else {
        return Ok(false);
    };
    let mut found = false;
    // See `covered`: interruptions inside the recursion are captured and
    // re-raised outside the `for_each` closure.
    let mut interrupted = None;
    let outcome = HomProblem::new(&n2.query.body, &ctx2.db).with_fixed(fixed).for_each(|hom| {
        let mut all_children_equal = true;
        for &(j1, j2) in &pairs.children {
            let child2_args: Vec<Atom> =
                n2.children[j2].link.iter().map(|t| eval_term(t, hom)).collect();
            let c1 = &n1.children[j1].node;
            let c2 = &n2.children[j2].node;
            let both = covered_strong_dir(&ctx2, c1, &p_child_args[j1], c2, &child2_args).and_then(
                |fwd| {
                    if !fwd {
                        return Ok(false);
                    }
                    covered_strong_dir(&ctx2, c2, &child2_args, c1, &p_child_args[j1])
                },
            );
            match both {
                Ok(true) => {}
                Ok(false) => {
                    all_children_equal = false;
                    break;
                }
                Err(stop) => {
                    interrupted = Some(stop);
                    return ControlFlow::Break(());
                }
            }
        }
        if all_children_equal {
            found = true;
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    if let Some(stop) = interrupted {
        return Err(stop);
    }
    if outcome == SearchOutcome::Interrupted {
        return Err(Interrupted);
    }
    Ok(found)
}

#[cfg(test)]
mod strong_tree_tests {
    use super::*;
    use crate::indexed::IndexedQuery;
    use co_cq::parse_query;

    fn iq(text: &str, index_arity: usize) -> IndexedQuery {
        IndexedQuery::from_cq(&parse_query(text).unwrap(), index_arity)
    }

    #[test]
    fn matches_flat_strong_simulation() {
        let cases = [
            ("q(X, Y) :- R(X, Y), T(X).", 1, "q(A, B) :- R(A, B), T(A).", 1),
            ("q(X, Y) :- R(X, Y), S(Y).", 1, "q(X, Y) :- R(X, Y).", 1),
            ("q(X, Y) :- R(X, Y).", 1, "q(X, Y) :- R(X, Y), R(X, Z).", 1),
            ("q(Y) :- R(X, Y).", 0, "q(X, Y) :- R(X, Y).", 1),
            ("q(X, Y) :- R(X, Y).", 1, "q(Y) :- R(X, Y).", 0),
        ];
        for (s1, i1, s2, i2) in cases {
            let q1 = iq(s1, i1);
            let q2 = iq(s2, i2);
            let flat = crate::strong::is_strongly_simulated_by(&q1, &q2);
            let tree =
                tree_strong_contained_in_no_empty_sets(&grouped_tree(&q1), &grouped_tree(&q2));
            assert_eq!(flat, tree, "{s1} vs {s2}");
        }
    }

    #[test]
    fn strong_implies_hoare_containment() {
        let q1 = iq("q(X, Y) :- R(X, Y).", 1);
        let q2 = iq("q(A, B) :- R(A, B).", 1);
        let t1 = grouped_tree(&q1);
        let t2 = grouped_tree(&q2);
        assert!(tree_strong_contained_in_no_empty_sets(&t1, &t2));
        assert!(tree_contained_in(&t1, &t2));
    }

    #[test]
    fn subset_groups_fail_strong_but_pass_hoare() {
        let q1 = iq("q(X, Y) :- R(X, Y), S(Y).", 1);
        let q2 = iq("q(X, Y) :- R(X, Y).", 1);
        let t1 = grouped_tree(&q1);
        let t2 = grouped_tree(&q2);
        assert!(tree_contained_in(&t1, &t2));
        assert!(!tree_strong_contained_in_no_empty_sets(&t1, &t2));
    }
}

/// Searches for a containment counterexample among the *canonical
/// instantiations* of `t1`'s own tree: databases built by freezing
/// `root_copies` root elements and, per set node, `child_copies` members
/// of each child set (`child_copies = 0` exercises the empty-set cases).
///
/// By the completeness argument of the containment procedure these
/// instantiations are where violations surface first; the workspace
/// differential tests use this alongside random search to corroborate
/// every negative answer.
pub fn search_tree_counterexample(t1: &QueryTree, t2: &QueryTree) -> Option<Database> {
    search_tree_counterexample_among(t1, t2, &[1, 2], &[1, 0, 2], false)
}

/// [`search_tree_counterexample`] over an explicit canonical family
/// (`root_copies × child_copies` instantiation counts), optionally
/// restricted to refutations whose evaluated answers are empty-set-free.
///
/// The restriction matters for certificates on the §4 no-empty-sets path:
/// a verdict qualified by that hypothesis may only be refuted by a
/// database on which neither answer contains an empty set, else the
/// refutation is outside the hypothesis. Certificate emission
/// (`co-core::certify_prepared`) searches a broadened family
/// (`[1,2,3] × [1,0,2,3]`) through this entry point.
///
/// Each canonical database is also retried *padded* with one canonical
/// element of `t2`'s own tree (fresh atoms). Padding is what makes the
/// empty-free search complete in practice: relations mentioned only by
/// `t2` are uninhabited in `t1`'s canonical instantiations, so `t2`'s
/// answer there is the empty set and every refutation of a no-empty-sets
/// verdict would be filtered out. Padding can only *add* candidate
/// databases — every returned database is verified by direct evaluation,
/// so soundness never depends on how it was built.
pub fn search_tree_counterexample_among(
    t1: &QueryTree,
    t2: &QueryTree,
    root_copies: &[usize],
    child_copies: &[usize],
    require_empty_free: bool,
) -> Option<Database> {
    let refutes = |db: &Database| -> bool {
        let v1 = t1.evaluate(db);
        let v2 = t2.evaluate(db);
        if require_empty_free && (v1.contains_empty_set() || v2.contains_empty_set()) {
            return false;
        }
        !co_object::hoare_leq(&v1, &v2)
    };
    for &roots in root_copies {
        for &copies in child_copies {
            let mut db = Database::new();
            let mut assignment: HashMap<Var, Atom> = HashMap::new();
            for _ in 0..roots {
                instantiate_subtree(&t1.root, &[], copies, &mut assignment, &mut db);
            }
            if refutes(&db) {
                return Some(db);
            }
            // Padded variant: inhabit t2-only relations with at least one
            // member per child set, so t2's answer can be empty-set-free.
            instantiate_subtree(&t2.root, &[], copies.max(1), &mut assignment, &mut db);
            if refutes(&db) {
                return Some(db);
            }
        }
    }
    None
}

/// When both trees are depth-1 (no child sets) with matching element
/// templates, returns the aligned conjunctive-query pair whose classical
/// containment coincides with tree containment: heads are the matched
/// atomic columns (in template order), bodies are the root bodies.
///
/// This is the bridge from the §5 flat fast path back to Chandra–Merlin,
/// used to mint `Mapping(φ)` certificates for flat positive verdicts.
pub fn flat_cq_pair(
    t1: &QueryTree,
    t2: &QueryTree,
) -> Option<(ConjunctiveQuery, ConjunctiveQuery)> {
    if !t1.root.children.is_empty() || !t2.root.children.is_empty() {
        return None;
    }
    let pairs = match_templates(&t1.root.template, &t2.root.template)?;
    let head1: Vec<Term> = pairs.atoms.iter().map(|&(i, _)| t1.root.query.value[i]).collect();
    let head2: Vec<Term> = pairs.atoms.iter().map(|&(_, j)| t2.root.query.value[j]).collect();
    Some((
        ConjunctiveQuery {
            head: head1,
            body: t1.root.query.body.clone(),
            unsatisfiable: t1.root.query.unsatisfiable,
        },
        ConjunctiveQuery {
            head: head2,
            body: t2.root.query.body.clone(),
            unsatisfiable: t2.root.query.unsatisfiable,
        },
    ))
}

/// Freezes one element of `node` at `args` and recursively `copies`
/// members of each of its child sets.
fn instantiate_subtree(
    node: &TreeNode,
    args: &[Atom],
    copies: usize,
    assignment: &mut HashMap<Var, Atom>,
    db: &mut Database,
) {
    if node.query.unsatisfiable || bind_index(&node.query.index, args).is_none() {
        return;
    }
    let inst = instantiate_body(node, args, assignment, db);
    for child in &node.children {
        let child_args: Vec<Atom> = child.link.iter().map(|t| inst.image(t)).collect();
        for _ in 0..copies {
            instantiate_subtree(&child.node, &child_args, copies, assignment, db);
        }
    }
}

#[cfg(test)]
mod counterexample_tests {
    use super::*;
    use crate::indexed::IndexedQuery;
    use co_cq::parse_query;

    fn iq(text: &str, index_arity: usize) -> IndexedQuery {
        IndexedQuery::from_cq(&parse_query(text).unwrap(), index_arity)
    }

    #[test]
    fn finds_violations_for_non_containment() {
        let q1 = iq("q(X, Y) :- R(X, Y).", 1);
        let q2 = iq("q(X, Y) :- R(X, Y), S(Y).", 1);
        let t1 = grouped_tree(&q1);
        let t2 = grouped_tree(&q2);
        assert!(!tree_contained_in(&t1, &t2));
        let db = search_tree_counterexample(&t1, &t2).expect("violation exists");
        assert!(!co_object::hoare_leq(&t1.evaluate(&db), &t2.evaluate(&db)));
    }

    #[test]
    fn silent_on_positive_cases() {
        let q1 = iq("q(X, Y) :- R(X, Y), S(Y).", 1);
        let q2 = iq("q(X, Y) :- R(X, Y).", 1);
        assert!(tree_contained_in(&grouped_tree(&q1), &grouped_tree(&q2)));
        assert!(search_tree_counterexample(&grouped_tree(&q1), &grouped_tree(&q2)).is_none());
    }
}
