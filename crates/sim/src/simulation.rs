//! Deciding **simulation** of indexed conjunctive queries (§5, Equation 2).
//!
//! `Q ⊴ Q'` (*Q is simulated by Q'*) iff for every database `D`, every
//! group of `Q` is contained in some group of `Q'`:
//!
//! ```text
//! ∀D. ∀ī ∈ idx(Q,D). ∃ī' ∈ idx(Q',D). G_Q(ī) ⊆ G_Q'(ī')        (Eq. 2, d=1)
//! ```
//!
//! The `∀∃∀` alternation makes this strictly harder than classical
//! containment (whose negation is Bernays–Schönfinkel); the paper shows it
//! is nonetheless decidable — the negation falls in Class 1.2 of
//! Dreben–Goldfarb — and NP-complete, via an extension of containment
//! mappings into the query body conjoined with **witness copies** that
//! share the index variables ("φ is a containment mapping from Q'(Ī';V̄')
//! to Q(Ī;V̄) ∧ Q_w(Ī;V̄_w)").
//!
//! # The decision procedure (reconstructed; the PODS paper is an extended
//! # abstract and defers the proof to its full version)
//!
//! **Theorem.** Let `k` be the number of distinct variables in `Q'`'s index
//! terms. `Q ⊴ Q'` iff there is a homomorphism `φ` from `Q'`'s body into
//!
//! ```text
//! B  =  Q.body  ∧  W1 ∧ … ∧ Wk
//! ```
//!
//! where each `Wi` is a copy of `Q.body` with all variables *except the
//! index variables* renamed fresh (the witness copies), such that
//!
//! 1. `φ(V̄') = V̄` positionwise (value terms carried to the distinguished
//!    copy's value terms), and
//! 2. no variable of `Ī'` is mapped to a *private* variable of the
//!    distinguished copy (a non-index variable of `Q.body`).
//!
//! *Soundness.* Fix `D`, a group `ī` of `Q`, and any witness assignment
//! `h₀` realizing the group. Valuate all witness copies by `h₀` (legal:
//! copies share only index variables, on which all members of the group
//! agree). For each member `v̄ ∈ G_Q(ī)` with realizing assignment `h`,
//! the combined valuation `μ = h on Q.body, h₀ on W̄` satisfies `B`, and
//! `μ∘φ` realizes `Q'(ī', v̄)` where `ī' = μ(φ(Ī'))` — constant across
//! members because `φ(Ī')` avoids the distinguished copy's private
//! variables. Hence `G_Q(ī) ⊆ G_Q'(ī')` with `ī'` a realized group of `Q'`.
//!
//! *Completeness.* Consider the canonical database `D_N` freezing `N = k+1`
//! copies of `Q.body` sharing the index variables (frozen to `ī₀`). If
//! `Q ⊴ Q'`, some group `ī'` of `Q'` on `D_N` contains all `N` "pure" value
//! tuples. `ī'` has at most `k` components that are variables' images, so
//! it touches at most `k` of the `N` copies; pick an untouched copy `j` and
//! the homomorphism `ψⱼ` realizing `(ī', v̄ⱼ)`. Reading copy `j` as the
//! distinguished copy and the rest as witnesses, `ψⱼ` is exactly the
//! required `φ`: it carries `V̄'` to copy `j`'s values and its `Ī'`-image
//! avoids copy `j`.
//!
//! The same argument shows that when no `φ` exists, `D_N` (which is what
//! [`simulated_by`] freezes for its search) **is** a concrete
//! counterexample with violated group `ī₀` — so negative answers come with
//! a database that the definitional check refutes, and the property tests
//! verify exactly that.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::ops::ControlFlow;

use co_cq::freeze::freeze_atoms_with;
use co_cq::{Assignment, Database, HomProblem, QueryAtom, Term, Tuple, Var};
use co_object::Atom;

use crate::indexed::{simulation_holds_on, IndexedQuery};

/// Result of a simulation check.
#[derive(Clone, Debug)]
pub enum SimulationAnswer {
    /// Simulation holds, with a syntactic certificate.
    Holds(SimulationCertificate),
    /// Simulation fails, with a concrete counterexample database.
    Fails(Counterexample),
}

impl SimulationAnswer {
    /// Whether simulation holds.
    pub fn holds(&self) -> bool {
        matches!(self, SimulationAnswer::Holds(_))
    }
}

/// A syntactic certificate: the extended containment mapping of §5.
#[derive(Clone, Debug)]
pub struct SimulationCertificate {
    /// The distinguished copy (Q.body, original variables).
    pub distinguished: Vec<QueryAtom>,
    /// The witness copies `W1 ∧ … ∧ Wk` (index variables shared).
    pub witnesses: Vec<Vec<QueryAtom>>,
    /// `φ`: Q'-variables → terms over the combined body.
    pub mapping: HashMap<Var, Term>,
    /// Private (non-index) variables of the distinguished copy, which
    /// `φ(Ī')` must avoid.
    pub private_vars: HashSet<Var>,
    /// Trivial case: `Q` is unsatisfiable (has no groups on any database).
    pub trivial: bool,
}

impl SimulationCertificate {
    /// Re-checks the certificate against the two queries: φ must carry
    /// values to values, every body atom into the combined body, and index
    /// images must avoid the distinguished copy's private variables.
    pub fn verify(&self, q: &IndexedQuery, q2: &IndexedQuery) -> bool {
        if self.trivial {
            return q.unsatisfiable;
        }
        let apply = |t: &Term| match t {
            Term::Var(v) => *self.mapping.get(v).unwrap_or(t),
            Term::Const(_) => *t,
        };
        // (1) value correspondence
        if q2.value.len() != q.value.len() {
            return false;
        }
        if !q2.value.iter().zip(q.value.iter()).all(|(t2, t1)| apply(t2) == *t1) {
            return false;
        }
        // (2) index avoidance
        for t in &q2.index {
            if let Term::Var(_) = t {
                if let Term::Var(w) = apply(t) {
                    if self.private_vars.contains(&w) {
                        return false;
                    }
                }
            }
        }
        // (3) body atoms map into the combined body
        let mut combined: Vec<&QueryAtom> = self.distinguished.iter().collect();
        for w in &self.witnesses {
            combined.extend(w.iter());
        }
        q2.body.iter().all(|atom| {
            let mapped = QueryAtom { rel: atom.rel, args: atom.args.iter().map(&apply).collect() };
            combined.iter().any(|a| **a == mapped)
        })
    }
}

/// A concrete refutation of simulation.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The database on which simulation fails.
    pub db: Database,
    /// A group key of `Q` not contained in any group of `Q'`.
    pub violating_group: Tuple,
}

impl Counterexample {
    /// Confirms the refutation by running the definitional check.
    pub fn verify(&self, q: &IndexedQuery, q2: &IndexedQuery) -> bool {
        !simulation_holds_on(q, q2, &self.db)
    }
}

/// Decides `q ⊴ q2` with the default number of witness copies
/// (`k = |vars(Ī')|`, the provably sufficient bound).
pub fn simulated_by(q: &IndexedQuery, q2: &IndexedQuery) -> SimulationAnswer {
    simulated_by_with_witnesses(q, q2, q2.index_vars().len())
}

/// Boolean convenience for [`simulated_by`].
pub fn is_simulated_by(q: &IndexedQuery, q2: &IndexedQuery) -> bool {
    simulated_by(q, q2).holds()
}

/// Decides simulation using exactly `k` witness copies. Exposed for the
/// ablation experiment (E3): `k` below `|vars(Ī')|` loses completeness,
/// larger `k` only costs time.
pub fn simulated_by_with_witnesses(
    q: &IndexedQuery,
    q2: &IndexedQuery,
    k: usize,
) -> SimulationAnswer {
    // Trivial and degenerate cases first.
    if q.unsatisfiable {
        return SimulationAnswer::Holds(SimulationCertificate {
            distinguished: Vec::new(),
            witnesses: Vec::new(),
            mapping: HashMap::new(),
            private_vars: HashSet::new(),
            trivial: true,
        });
    }
    let expansion = expand_with_witnesses(q, k);
    if q2.unsatisfiable || q.value.len() != q2.value.len() {
        return SimulationAnswer::Fails(expansion.counterexample(q));
    }

    // Fix the value correspondence φ(V̄') = V̄ (frozen images).
    let mut fixed = Assignment::new();
    let mut consistent = true;
    for (t2, t1) in q2.value.iter().zip(q.value.iter()) {
        let target = expansion.frozen_image(t1);
        match t2 {
            Term::Const(c) => {
                if *c != target {
                    consistent = false;
                }
            }
            Term::Var(v) => match fixed.insert(*v, target) {
                Some(prev) if prev != target => consistent = false,
                _ => {}
            },
        }
    }
    if !consistent {
        return SimulationAnswer::Fails(expansion.counterexample(q));
    }

    // Search homs of q2.body into the frozen expansion. The index-
    // avoidance condition (no index variable of q2 may land on a private
    // atom of the distinguished copy) is enforced *during* the search via
    // forbidden sets, so rejected bindings prune whole subtrees.
    let forbidden: HashMap<Var, HashSet<Atom>> =
        q2.index_vars().into_iter().map(|v| (v, expansion.private_atoms.clone())).collect();
    let mut found: Option<Assignment> = None;
    HomProblem::new(&q2.body, &expansion.db).with_fixed(fixed).with_forbidden(forbidden).for_each(
        |assignment| {
            found = Some(assignment.clone());
            ControlFlow::Break(())
        },
    );

    match found {
        Some(hom) => SimulationAnswer::Holds(expansion.certificate(q2, &hom)),
        None => SimulationAnswer::Fails(expansion.counterexample(q)),
    }
}

/// The frozen expansion `Q.body ∧ W1 ∧ … ∧ Wk` with bookkeeping.
struct Expansion {
    db: Database,
    assignment: HashMap<Var, Atom>,
    distinguished: Vec<QueryAtom>,
    witnesses: Vec<Vec<QueryAtom>>,
    private_vars: HashSet<Var>,
    /// Frozen atoms of the private variables.
    private_atoms: HashSet<Atom>,
}

impl Expansion {
    fn frozen_image(&self, t: &Term) -> Atom {
        match t {
            Term::Const(c) => *c,
            Term::Var(v) => self.assignment[v],
        }
    }

    fn counterexample(&self, q: &IndexedQuery) -> Counterexample {
        Counterexample {
            db: self.db.clone(),
            violating_group: q.index.iter().map(|t| self.frozen_image(t)).collect(),
        }
    }

    fn certificate(&self, q2: &IndexedQuery, hom: &Assignment) -> SimulationCertificate {
        // Unfreeze: frozen atoms back to the variables they froze.
        let inverse: HashMap<Atom, Var> = self.assignment.iter().map(|(&v, &a)| (a, v)).collect();
        let mut mapping = HashMap::new();
        for v in q2.as_cq().body_vars() {
            if let Some(&a) = hom.get(&v) {
                let term = match inverse.get(&a) {
                    Some(&w) => Term::Var(w),
                    None => Term::Const(a),
                };
                mapping.insert(v, term);
            }
        }
        SimulationCertificate {
            distinguished: self.distinguished.clone(),
            witnesses: self.witnesses.clone(),
            mapping,
            private_vars: self.private_vars.clone(),
            trivial: false,
        }
    }
}

/// Builds the frozen expansion of `q` with `k` witness copies sharing the
/// index variables.
fn expand_with_witnesses(q: &IndexedQuery, k: usize) -> Expansion {
    let index_vars: HashSet<Var> = q.index_vars().into_iter().collect();
    let mut assignment: HashMap<Var, Atom> = HashMap::new();
    let mut db = Database::new();

    // Distinguished copy: original variables.
    freeze_atoms_with(&q.body, &mut assignment, &mut db);
    let private_vars: HashSet<Var> =
        q.as_cq().body_vars().into_iter().filter(|v| !index_vars.contains(v)).collect();
    let private_atoms: HashSet<Atom> = private_vars.iter().map(|v| assignment[v]).collect();

    // Witness copies: rename everything except the index variables.
    let mut witnesses = Vec::with_capacity(k);
    for i in 0..k {
        let mut subst: HashMap<Var, Term> = HashMap::new();
        for v in q.as_cq().body_vars() {
            if !index_vars.contains(&v) {
                subst.insert(v, Term::Var(Var::fresh(&format!("w{i}_{}", v.name()))));
            }
        }
        let copy: Vec<QueryAtom> = q.body.iter().map(|a| a.substitute(&subst)).collect();
        freeze_atoms_with(&copy, &mut assignment, &mut db);
        witnesses.push(copy);
    }

    Expansion {
        db,
        assignment,
        distinguished: q.body.clone(),
        witnesses,
        private_vars,
        private_atoms,
    }
}

impl fmt::Display for SimulationAnswer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimulationAnswer::Holds(_) => write!(f, "simulation holds"),
            SimulationAnswer::Fails(c) => {
                write!(f, "simulation fails on a {}-fact database", c.db.fact_count())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_cq::parse_query;

    fn iq(text: &str, index_arity: usize) -> IndexedQuery {
        IndexedQuery::from_cq(&parse_query(text).unwrap(), index_arity)
    }

    fn check(q: &IndexedQuery, q2: &IndexedQuery) -> bool {
        match simulated_by(q, q2) {
            SimulationAnswer::Holds(cert) => {
                assert!(cert.verify(q, q2), "certificate failed for {q} ⊴ {q2}");
                true
            }
            SimulationAnswer::Fails(cex) => {
                assert!(cex.verify(q, q2), "counterexample failed for {q} ⊴ {q2}");
                false
            }
        }
    }

    #[test]
    fn reflexive() {
        let q = iq("q(X, Y) :- R(X, Y).", 1);
        assert!(check(&q, &q));
    }

    #[test]
    fn restricting_the_group_simulates() {
        // Groups of q1 (only S-supported Ys) ⊆ groups of q2 (all Ys of X).
        let q1 = iq("q(X, Y) :- R(X, Y), S(Y).", 1);
        let q2 = iq("q(X, Y) :- R(X, Y).", 1);
        assert!(check(&q1, &q2));
        assert!(!check(&q2, &q1));
    }

    #[test]
    fn coarser_grouping_simulates_finer() {
        // q1 groups by (X) pairs (Y,Z) of two hops; q2 groups trivially.
        let q1 = iq("q(X, Y) :- R(X, Y).", 1);
        // q2: single global group containing all R-pairs projected to Y:
        let q2 = iq("q(Y) :- R(X, Y).", 0);
        // Every per-X group {Y : R(X,Y)} ⊆ the global group {Y : ∃X R(X,Y)}.
        assert!(check(&q1, &q2));
    }

    #[test]
    fn finer_grouping_does_not_simulate_coarser() {
        // Global group of all Y's vs per-X groups: the global group is not
        // inside any single per-X group once two X's have different Ys.
        let q1 = iq("q(Y) :- R(X, Y).", 0);
        let q2 = iq("q(X, Y) :- R(X, Y).", 1);
        assert!(!check(&q1, &q2));
    }

    #[test]
    fn index_variable_in_target_needs_witnesses() {
        // The classic case where the containment-mapping-without-witnesses
        // test is incomplete: q2's group key is a *value-correlated*
        // variable of q1's body. q1: per-X group of Y with R(X,Y);
        // q2: per-Z group of Y with R(Z,Y). Same queries, so simulation
        // holds (identity), but make the target's index reach through a
        // different relation:
        //   q1(X; Y) :- R(X, Y)
        //   q2(U; Y) :- S(U), R(U, Y)   -- needs S-support
        let q1 = iq("q(X, Y) :- R(X, Y).", 1);
        let q2 = iq("q(U, Y) :- S(U), R(U, Y).", 1);
        // Fails: on a database without S facts q2 has no groups at all.
        assert!(!check(&q1, &q2));
        // And conversely q2 ⊴ q1 holds (its groups are q1's groups).
        assert!(check(&q2, &q1));
    }

    #[test]
    fn witness_copies_are_necessary_for_completeness() {
        // A pair where φ(Ī') must land in a witness copy:
        //   q1(X; Y) :- R(X, Y)
        //   q2(Y0; Y) :- R(X, Y), R(X, Y0)
        // q2's groups: for each (value Y0 reachable from some X), the set of
        // Ys sharing an X with Y0. Claim: q1 ⊴ q2: given q1's group
        // G = {Y : R(X,Y)} pick ī' = any member y0 of G; then
        // G ⊆ {Y : ∃X' R(X',Y) ∧ R(X',y0)}? — not for all members…
        // Actually: with X fixed, G_{q2}(y0) ⊇ {Y : R(X,Y)} = G. ✓
        // The mapping needs φ(Y0) ↦ witness-copy value, exactly condition 2.
        let q1 = iq("q(X, Y) :- R(X, Y).", 1);
        let q2 = iq("q(Y0, Y) :- R(X, Y), R(X, Y0).", 1);
        assert!(check(&q1, &q2));
        // With zero witness copies the (incomplete) test must say no:
        assert!(!simulated_by_with_witnesses(&q1, &q2, 0).holds());
    }

    #[test]
    fn unsatisfiable_source_is_simulated_by_everything() {
        let q1 = iq("q(X, Y) :- R(X, Y), false.", 1);
        let q2 = iq("q(X, Y) :- R(X, Y), S(X, X).", 1);
        assert!(check(&q1, &q2));
        assert!(!check(&q2, &q1));
    }

    #[test]
    fn value_arity_mismatch_fails() {
        let q1 = iq("q(X, Y, Z) :- R(X, Y), R(Y, Z).", 1);
        let q2 = iq("q(X, Y) :- R(X, Y).", 1);
        assert!(!check(&q1, &q2));
    }

    #[test]
    fn constants_in_values_must_match() {
        let q1 = iq("q(X, 1) :- R(X, Y).", 1);
        let q2 = iq("q(X, 1) :- R(X, Y).", 1);
        let q3 = iq("q(X, 2) :- R(X, Y).", 1);
        assert!(check(&q1, &q2));
        assert!(!check(&q1, &q3));
    }

    #[test]
    fn simulation_generalizes_containment() {
        // With empty index, simulation is exactly classical containment
        // (single global group = the full answer set).
        let q1 = iq("q(X, Z) :- E(X, Y), E(Y, Z), E(Z, X).", 0);
        let q2 = iq("q(X, Z) :- E(X, Y), E(Y, Z).", 0);
        assert!(check(&q1, &q2));
        assert!(!check(&q2, &q1));
        let c1 = co_cq::is_contained_in(&q1.as_cq(), &q2.as_cq());
        let c2 = co_cq::is_contained_in(&q2.as_cq(), &q1.as_cq());
        assert!(c1 && !c2);
    }
}
