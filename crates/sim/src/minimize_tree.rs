//! Minimization of query trees — redundant-subgoal elimination for nested
//! queries.
//!
//! §1 of the paper motivates containment by classical minimization ("query
//! containment can be used to find redundant subgoals in a query"). For a
//! flattened COQL query the same idea applies per set node: a body atom is
//! redundant iff dropping it preserves the node's *combined head* — index
//! formals, value columns, **and child links** — up to classical CQ
//! equivalence. The node's grouped semantics is a function of exactly that
//! combined head's tuple set, so classical equivalence of the combined
//! conjunctive queries implies identical tree semantics (and therefore
//! identical containment behaviour).
//!
//! Minimizing before deciding containment shrinks every frozen copy the
//! witness-based procedures build, which compounds: the experiment runner's
//! ablation (E11) measures the effect.

use co_cq::{ConjunctiveQuery, Term};

use crate::tree::{ChildLink, QueryTree, TreeNode};

/// Returns a semantically identical tree with redundant body atoms removed
/// from every node.
pub fn minimize_tree(tree: &QueryTree) -> QueryTree {
    QueryTree { root: minimize_node(&tree.root) }
}

fn minimize_node(node: &TreeNode) -> TreeNode {
    // Combined head: everything the node's semantics reads off an
    // assignment. Protecting it keeps groups, templates, and child links
    // intact.
    let mut head: Vec<Term> = node.query.index.clone();
    head.extend(node.query.value.iter().copied());
    for child in &node.children {
        head.extend(child.link.iter().copied());
    }
    let combined = ConjunctiveQuery {
        head,
        body: node.query.body.clone(),
        unsatisfiable: node.query.unsatisfiable,
    };
    let minimized = co_cq::minimize(&combined);

    TreeNode {
        query: crate::indexed::IndexedQuery {
            index: node.query.index.clone(),
            value: node.query.value.clone(),
            body: minimized.body,
            unsatisfiable: node.query.unsatisfiable,
        },
        template: node.template.clone(),
        children: node
            .children
            .iter()
            .map(|c| ChildLink { link: c.link.clone(), node: minimize_node(&c.node) })
            .collect(),
    }
}

/// Total number of body atoms across all nodes (a size measure for the
/// minimization experiments).
pub fn tree_atom_count(tree: &QueryTree) -> usize {
    fn count(node: &TreeNode) -> usize {
        node.query.body.len() + node.children.iter().map(|c| count(&c.node)).sum::<usize>()
    }
    count(&tree.root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::indexed::IndexedQuery;
    use crate::tree::{grouped_tree, tree_contained_in, Template};
    use co_cq::{parse_query, Database};

    fn iq(text: &str, index_arity: usize) -> IndexedQuery {
        IndexedQuery::from_cq(&parse_query(text).unwrap(), index_arity)
    }

    #[test]
    fn removes_redundant_atoms() {
        // Grouping query with a redundant second R atom.
        let q = iq("q(X, Y) :- R(X, Y), R(X, Z).", 1);
        let t = grouped_tree(&q);
        let m = minimize_tree(&t);
        assert!(tree_atom_count(&m) < tree_atom_count(&t));
        m.validate().unwrap();
    }

    #[test]
    fn preserves_semantics() {
        let q = iq("q(X, Y) :- R(X, Y), R(X, Z), R(W, Y).", 1);
        let t = grouped_tree(&q);
        let m = minimize_tree(&t);
        for seed in 0..20u64 {
            let db = random_db(seed);
            assert_eq!(t.evaluate(&db), m.evaluate(&db), "seed {seed}");
        }
    }

    #[test]
    fn preserves_containment_answers() {
        let q1 = iq("q(X, Y) :- R(X, Y), S(Y), S(W).", 1);
        let q2 = iq("q(X, Y) :- R(X, Y), R(X, Z).", 1);
        let t1 = grouped_tree(&q1);
        let t2 = grouped_tree(&q2);
        let (m1, m2) = (minimize_tree(&t1), minimize_tree(&t2));
        assert_eq!(tree_contained_in(&t1, &t2), tree_contained_in(&m1, &m2));
        assert_eq!(tree_contained_in(&t2, &t1), tree_contained_in(&m2, &m1));
    }

    #[test]
    fn protects_link_variables() {
        // An atom that only supports a child link variable must stay.
        let child = crate::tree::TreeNode {
            query: iq("q(I, C) :- S(I, C).", 1),
            template: Template::AtomCol(0),
            children: Vec::new(),
        };
        let root = crate::tree::TreeNode {
            query: IndexedQuery {
                index: vec![],
                value: vec![Term::var("X")],
                // T(X, L) only exists to bind the link variable L.
                body: parse_query("q(X, L) :- R(X, X), T(X, L).").unwrap().body,
                unsatisfiable: false,
            },
            template: Template::record(vec![
                (co_object::Field::new("a"), Template::AtomCol(0)),
                (co_object::Field::new("g"), Template::Child(0)),
            ]),
            children: vec![ChildLink { link: vec![Term::var("L")], node: child }],
        };
        let tree = QueryTree { root };
        tree.validate().unwrap();
        let m = minimize_tree(&tree);
        m.validate().unwrap();
        // T must survive (it binds L); semantics preserved.
        for seed in 0..10u64 {
            let db = random_db(seed);
            assert_eq!(tree.evaluate(&db), m.evaluate(&db));
        }
    }

    fn random_db(seed: u64) -> Database {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut db = Database::new();
        for rel in ["R", "S", "T"] {
            for _ in 0..rng.gen_range(0..5) {
                db.insert(
                    co_cq::RelName::new(rel),
                    vec![
                        co_object::Atom::int(rng.gen_range(0..3)),
                        co_object::Atom::int(rng.gen_range(0..3)),
                    ],
                );
            }
        }
        db
    }
}
