//! Answering queries using views (ref \[27\] of the paper; §1 motivation).
//!
//! "More recently, query containment has been used to determine when
//! queries are independent of updates to the database \[31\], rewriting
//! queries using views \[12, 27\] …" — this module implements the
//! containment-based core of the views application for conjunctive
//! queries: *unfolding* a rewriting written over view predicates into a
//! query over base relations, and checking that the rewriting is
//! equivalent to (or contained in) the original query.
//!
//! A [`View`] is a named conjunctive query; a rewriting is any conjunctive
//! query whose body may use view names as relations. [`unfold`] replaces
//! each view atom by a fresh copy of the view's body with head variables
//! unified to the atom's arguments — the standard expansion — after which
//! classical containment decides soundness (`expansion ⊑ query`) and
//! completeness (`query ⊑ expansion`) of the rewriting.

use std::collections::HashMap;
use std::fmt;

use crate::containment::is_contained_in;
use crate::query::ConjunctiveQuery;
use crate::schema::RelName;

/// A named view definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct View {
    /// The view's name (used as a relation in rewritings).
    pub name: RelName,
    /// Its definition over base relations.
    pub definition: ConjunctiveQuery,
}

impl View {
    /// Defines a view from datalog syntax; the head predicate is the name.
    pub fn new(name: &str, definition: ConjunctiveQuery) -> View {
        View { name: RelName::new(name), definition }
    }
}

/// Errors from unfolding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ViewError {
    /// A view atom's arity differs from its definition's head width.
    ArityMismatch {
        /// The offending view.
        view: RelName,
        /// Arity used in the rewriting.
        used: usize,
        /// Head width of the definition.
        declared: usize,
    },
}

impl fmt::Display for ViewError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViewError::ArityMismatch { view, used, declared } => write!(
                f,
                "view `{view}` used with arity {used}, defined with head width {declared}"
            ),
        }
    }
}

impl std::error::Error for ViewError {}

/// Unfolds every view atom in `rewriting` into the view's body (fresh
/// variables per occurrence, head unified with the atom's arguments).
/// Non-view atoms pass through.
pub fn unfold(rewriting: &ConjunctiveQuery, views: &[View]) -> Result<ConjunctiveQuery, ViewError> {
    let by_name: HashMap<RelName, &View> = views.iter().map(|v| (v.name, v)).collect();
    let mut body = Vec::new();
    let mut equalities = Vec::new();
    for atom in &rewriting.body {
        match by_name.get(&atom.rel) {
            None => body.push(atom.clone()),
            Some(view) => {
                if view.definition.head.len() != atom.args.len() {
                    return Err(ViewError::ArityMismatch {
                        view: view.name,
                        used: atom.args.len(),
                        declared: view.definition.head.len(),
                    });
                }
                let (copy, _) = view.definition.rename_apart(&format!("u{}", view.name));
                // Unify the copy's head with the atom's arguments.
                for (head_term, arg) in copy.head.iter().zip(atom.args.iter()) {
                    equalities.push((*head_term, *arg));
                }
                body.extend(copy.body.iter().cloned());
            }
        }
    }
    let out = ConjunctiveQuery::new(rewriting.head.clone(), body, &equalities);
    Ok(ConjunctiveQuery { unsatisfiable: out.unsatisfiable || rewriting.unsatisfiable, ..out })
}

/// Whether `rewriting` (over views) is a **sound** rewriting of `query`
/// (over base relations): its expansion is contained in the query.
pub fn rewriting_sound(
    rewriting: &ConjunctiveQuery,
    views: &[View],
    query: &ConjunctiveQuery,
) -> Result<bool, ViewError> {
    Ok(is_contained_in(&unfold(rewriting, views)?, query))
}

/// Whether `rewriting` is an **equivalent** rewriting of `query`.
pub fn rewriting_equivalent(
    rewriting: &ConjunctiveQuery,
    views: &[View],
    query: &ConjunctiveQuery,
) -> Result<bool, ViewError> {
    let expansion = unfold(rewriting, views)?;
    Ok(is_contained_in(&expansion, query) && is_contained_in(query, &expansion))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_query;

    fn view(name: &str, def: &str) -> View {
        View::new(name, parse_query(def).unwrap())
    }

    #[test]
    fn unfolding_expands_view_atoms() {
        // V(x, z) := E(x, y), E(y, z); rewriting uses V twice.
        let views = vec![view("V", "v(X, Z) :- E(X, Y), E(Y, Z).")];
        let rewriting = parse_query("q(A, C) :- V(A, B), V(B, C).").unwrap();
        let expansion = unfold(&rewriting, &views).unwrap();
        // Two copies of the 2-atom body.
        assert_eq!(expansion.body.len(), 4);
        assert!(expansion.body.iter().all(|a| a.rel == RelName::new("E")));
        // The expansion is the 4-path query.
        let four_path = parse_query("q(A, E) :- E(A, B), E(B, C), E(C, D), E(D, E).").unwrap();
        assert!(crate::containment::equivalent(&expansion, &four_path));
    }

    #[test]
    fn equivalent_rewriting_is_recognized() {
        let views = vec![view("V", "v(X, Z) :- E(X, Y), E(Y, Z).")];
        let query = parse_query("q(A, C) :- E(A, B1), E(B1, B2), E(B2, B3), E(B3, C).").unwrap();
        let rewriting = parse_query("q(A, C) :- V(A, B), V(B, C).").unwrap();
        assert!(rewriting_equivalent(&rewriting, &views, &query).unwrap());
    }

    #[test]
    fn sound_but_incomplete_rewriting() {
        // The view loses the middle vertex; a rewriting that re-joins on it
        // is sound but stricter than the 2-path query… here: V ∘ filter.
        let views = vec![view("V", "v(X, Z) :- E(X, Y), E(Y, Z).")];
        let query = parse_query("q(A, C) :- E(A, B), E(B, C).").unwrap();
        // Rewriting demands an extra loop: sound, not equivalent.
        let strict = parse_query("q(A, C) :- V(A, C), V(C, C).").unwrap();
        assert!(rewriting_sound(&strict, &views, &query).unwrap());
        assert!(!rewriting_equivalent(&strict, &views, &query).unwrap());
    }

    #[test]
    fn unsound_rewriting_is_rejected() {
        let views = vec![view("V", "v(X) :- E(X, Y).")];
        let query = parse_query("q(X) :- E(X, X).").unwrap();
        // "Has an outgoing edge" does not imply "has a self-loop".
        let rewriting = parse_query("q(X) :- V(X).").unwrap();
        assert!(!rewriting_sound(&rewriting, &views, &query).unwrap());
    }

    #[test]
    fn view_constants_and_repeats_unify() {
        let views = vec![view("V", "v(X, X, 1) :- E(X, X).")];
        let rewriting = parse_query("q(A) :- V(A, A, 1).").unwrap();
        let expansion = unfold(&rewriting, &views).unwrap();
        assert!(!expansion.unsatisfiable);
        let direct = parse_query("q(A) :- E(A, A).").unwrap();
        assert!(crate::containment::equivalent(&expansion, &direct));
        // Mismatched constant makes the expansion unsatisfiable.
        let bad = parse_query("q(A) :- V(A, A, 2).").unwrap();
        assert!(unfold(&bad, &views).unwrap().unsatisfiable);
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let views = vec![view("V", "v(X, Z) :- E(X, Z).")];
        let rewriting = parse_query("q(A) :- V(A).").unwrap();
        assert!(matches!(unfold(&rewriting, &views), Err(ViewError::ArityMismatch { .. })));
    }
}
