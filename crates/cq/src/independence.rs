//! Update independence of conjunctive queries (Levy & Sagiv, ref \[31\] of
//! the paper; listed in its conclusions as the application to carry over).
//!
//! A query is *independent* of a class of updates when its answer cannot
//! change under any such update. For monotone conjunctive queries the two
//! interesting classes reduce to containment checks:
//!
//! * **Insertion independence** w.r.t. relation `R`: inserting a tuple can
//!   only add derivations that use the new tuple at some `R`-atom. `Q` is
//!   independent iff for every `R`-atom `a`, every such derivation's
//!   answer was already derivable — i.e. `Q \ a ⊑ Q`, where `Q \ a` drops
//!   the atom (the new tuple is arbitrary, so its positions become
//!   unconstrained). If a head variable occurs only in `a`, the new
//!   derivations produce genuinely new tuples and independence fails.
//! * **Deletion independence** w.r.t. `R`: answers can only shrink; they
//!   never do iff `Q` is equivalent to a query without any `R`-atoms —
//!   i.e. minimization eliminates every `R`-atom.

use crate::containment::is_contained_in;
use crate::minimize::minimize;
use crate::query::ConjunctiveQuery;
use crate::schema::RelName;

/// Whether `q`'s answer is unchanged by inserting any single tuple into
/// `rel` (and hence, by induction, any set of tuples).
pub fn independent_of_insertions(q: &ConjunctiveQuery, rel: RelName) -> bool {
    if q.unsatisfiable {
        return true;
    }
    for (i, atom) in q.body.iter().enumerate() {
        if atom.rel != rel {
            continue;
        }
        let mut dropped = q.clone();
        dropped.body.remove(i);
        // Head safety after dropping: a head variable bound only by the
        // dropped atom ranges over the (arbitrary) new tuple — new answers
        // are unavoidable on suitable databases.
        let body_vars = dropped.body_vars();
        if !dropped.head_vars().iter().all(|v| body_vars.contains(v)) {
            return false;
        }
        if !is_contained_in(&dropped, q) {
            return false;
        }
    }
    true
}

/// Whether `q`'s answer is unchanged by deleting tuples from `rel`.
pub fn independent_of_deletions(q: &ConjunctiveQuery, rel: RelName) -> bool {
    if q.unsatisfiable {
        return true;
    }
    // Sufficient and necessary for CQs: the core has no R-atoms. (If the
    // core keeps an R-atom, shrinking R below the canonical database's
    // needs removes an answer; if not, Q ignores R.)
    minimize(q).body.iter().all(|a| a.rel != rel)
}

/// Whether `q` is independent of *all* updates (insertions and deletions)
/// to `rel`.
pub fn independent_of_updates(q: &ConjunctiveQuery, rel: RelName) -> bool {
    independent_of_insertions(q, rel) && independent_of_deletions(q, rel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Database;
    use crate::eval::evaluate;
    use crate::parse::parse_query;
    use co_object::Atom;

    fn rel(name: &str) -> RelName {
        RelName::new(name)
    }

    #[test]
    fn queries_ignore_unmentioned_relations() {
        let q = parse_query("q(X) :- S(X, Y).").unwrap();
        assert!(independent_of_updates(&q, rel("R")));
    }

    #[test]
    fn direct_dependence_fails_both() {
        let q = parse_query("q(X) :- R(X, Y).").unwrap();
        assert!(!independent_of_insertions(&q, rel("R")));
        assert!(!independent_of_deletions(&q, rel("R")));
    }

    #[test]
    fn redundant_atoms_give_deletion_sensitivity_but_not_always() {
        // R-atom is redundant given the other R-atom… a single redundant
        // self-join: q(X) :- R(X, Y), R(X, Z). Still depends on R.
        let q = parse_query("q(X) :- R(X, Y), R(X, Z).").unwrap();
        assert!(!independent_of_deletions(&q, rel("R")));
        // But a query whose R-atom folds into an S-atom pattern cannot
        // exist (different relations); instead: R-atom implied by nothing.
    }

    #[test]
    fn insertion_independence_with_redundant_atom() {
        // The second R-atom is implied by the first (drop it: q' ⊑ q).
        // Inserting into R can still create derivations through the FIRST
        // atom, so full insertion independence fails; but the check is
        // per-atom — construct a query where every R-atom is implied:
        // q(X) :- S(X), R(Y, Y)… dropping R leaves q'(X) :- S(X) which is
        // NOT contained in q (q requires some R loop) — so not independent:
        // inserting a loop into empty R adds answers. Correct!
        let q = parse_query("q(X) :- S(X), R(Y, Y).").unwrap();
        assert!(!independent_of_insertions(&q, rel("R")));
        // Semantics check: adding R(1,1) to a DB with S(5) adds an answer.
        let before = Database::from_ints(&[("S", &[&[5]])]);
        let mut after = before.clone();
        after.insert(rel("R"), vec![Atom::int(1), Atom::int(1)]);
        assert!(evaluate(&q, &before).is_empty());
        assert!(!evaluate(&q, &after).is_empty());
    }

    #[test]
    fn decisions_match_semantics_on_samples() {
        let queries = [
            "q(X) :- S(X, Y).",
            "q(X) :- R(X, Y).",
            "q(X) :- S(X, Y), R(X, Y).",
            "q(X) :- S(X, X), R(Y, Z).",
        ];
        for src in queries {
            let q = parse_query(src).unwrap();
            let ins = independent_of_insertions(&q, rel("R"));
            // Semantic probe: insert one tuple into a few random databases
            // and watch for new answers.
            let mut violated = false;
            for seed in 0..30u64 {
                let db = random_db(seed);
                let mut db2 = db.clone();
                db2.insert(
                    rel("R"),
                    vec![Atom::int((seed % 3) as i64), Atom::int(((seed / 3) % 3) as i64)],
                );
                let r1 = evaluate(&q, &db);
                let r2 = evaluate(&q, &db2);
                if !r2.is_subset(&r1) {
                    violated = true;
                }
            }
            if ins {
                assert!(!violated, "{src}: decided independent but probe violated");
            }
        }
    }

    fn random_db(seed: u64) -> Database {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut db = Database::new();
        for name in ["R", "S"] {
            for _ in 0..rng.gen_range(0..4) {
                db.insert(
                    rel(name),
                    vec![Atom::int(rng.gen_range(0..3)), Atom::int(rng.gen_range(0..3))],
                );
            }
        }
        db
    }
}
