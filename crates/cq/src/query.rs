//! Conjunctive queries over flat relations.
//!
//! Standard notation as in the paper (and Ullman \[41\]):
//!
//! ```text
//! Q(x̄) :- R1(t̄1), …, Rm(t̄m)
//! ```
//!
//! where each term is a variable or a constant. Equality conditions
//! `x = y` / `x = c` are eliminated up front by substitution
//! ([`ConjunctiveQuery::new`] takes an optional equality list); equating two
//! distinct constants makes the query *unsatisfiable*, which we represent
//! explicitly (such a query returns the empty relation on every database —
//! the paper's empty-set analysis needs this case to be first-class).

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use co_object::Atom;

use crate::schema::{RelName, Schema, Var};

/// A term: variable or constant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A query variable.
    Var(Var),
    /// An atomic constant.
    Const(Atom),
}

impl Term {
    /// Convenience: a named variable.
    pub fn var(name: &str) -> Term {
        Term::Var(Var::new(name))
    }

    /// Convenience: an integer constant.
    pub fn int(i: i64) -> Term {
        Term::Const(Atom::int(i))
    }

    /// The variable inside, if any.
    pub fn as_var(&self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }

    /// The constant inside, if any.
    pub fn as_const(&self) -> Option<Atom> {
        match self {
            Term::Const(a) => Some(*a),
            Term::Var(_) => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(a) => write!(f, "{a}"),
        }
    }
}

/// One body atom `R(t1, …, tk)`.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryAtom {
    /// Relation name.
    pub rel: RelName,
    /// Argument terms.
    pub args: Vec<Term>,
}

impl QueryAtom {
    /// Builds an atom.
    pub fn new(rel: &str, args: Vec<Term>) -> QueryAtom {
        QueryAtom { rel: RelName::new(rel), args }
    }

    /// Applies a variable substitution to the arguments.
    pub fn substitute(&self, subst: &HashMap<Var, Term>) -> QueryAtom {
        QueryAtom {
            rel: self.rel,
            args: self
                .args
                .iter()
                .map(|t| match t {
                    Term::Var(v) => *subst.get(v).unwrap_or(t),
                    Term::Const(_) => *t,
                })
                .collect(),
        }
    }

    /// The variables occurring in the atom.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.args.iter().filter_map(Term::as_var)
    }
}

impl fmt::Display for QueryAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.rel)?;
        for (i, t) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// An equality condition between two terms, eliminated at construction.
pub type Equality = (Term, Term);

/// Errors from constructing or validating a conjunctive query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// A head variable does not occur in the body (unsafe query).
    UnsafeHeadVar(Var),
    /// An atom's arity disagrees with the schema.
    ArityMismatch {
        /// Relation with the bad atom.
        rel: RelName,
        /// Arity found in the atom.
        found: usize,
        /// Arity declared in the schema.
        declared: usize,
    },
    /// An atom references a relation the schema does not declare.
    UnknownRelation(RelName),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnsafeHeadVar(v) => {
                write!(f, "head variable `{v}` does not occur in the body")
            }
            QueryError::ArityMismatch { rel, found, declared } => {
                write!(f, "atom over `{rel}` has arity {found}, schema declares {declared}")
            }
            QueryError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
        }
    }
}

impl std::error::Error for QueryError {}

/// A conjunctive query `Q(head) :- body`, with equalities pre-substituted.
///
/// `unsatisfiable` marks queries whose equality conditions equated distinct
/// constants: they evaluate to the empty relation on every database.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConjunctiveQuery {
    /// Head (output) terms. Constants are allowed in heads.
    pub head: Vec<Term>,
    /// Body atoms.
    pub body: Vec<QueryAtom>,
    /// True when the equality conditions were contradictory.
    pub unsatisfiable: bool,
}

impl ConjunctiveQuery {
    /// Builds a query, eliminating `equalities` by substitution.
    ///
    /// The substitution uses a union–find over variables; each class maps to
    /// its constant if one is present (two distinct constants mark the query
    /// unsatisfiable) or to its least variable otherwise.
    pub fn new(head: Vec<Term>, body: Vec<QueryAtom>, equalities: &[Equality]) -> ConjunctiveQuery {
        let (subst, unsatisfiable) = resolve_equalities(equalities);
        let head = head
            .iter()
            .map(|t| match t {
                Term::Var(v) => *subst.get(v).unwrap_or(t),
                Term::Const(_) => *t,
            })
            .collect();
        let body = body.iter().map(|a| a.substitute(&subst)).collect();
        ConjunctiveQuery { head, body, unsatisfiable }
    }

    /// A query with no equality conditions.
    pub fn plain(head: Vec<Term>, body: Vec<QueryAtom>) -> ConjunctiveQuery {
        ConjunctiveQuery { head, body, unsatisfiable: false }
    }

    /// Checks safety and schema conformance.
    pub fn validate(&self, schema: &Schema) -> Result<(), QueryError> {
        let body_vars = self.body_vars();
        for t in &self.head {
            if let Term::Var(v) = t {
                if !body_vars.contains(v) {
                    return Err(QueryError::UnsafeHeadVar(*v));
                }
            }
        }
        for atom in &self.body {
            match schema.arity(atom.rel) {
                None => return Err(QueryError::UnknownRelation(atom.rel)),
                Some(a) if a != atom.args.len() => {
                    return Err(QueryError::ArityMismatch {
                        rel: atom.rel,
                        found: atom.args.len(),
                        declared: a,
                    })
                }
                Some(_) => {}
            }
        }
        Ok(())
    }

    /// All variables occurring in the body, sorted.
    pub fn body_vars(&self) -> BTreeSet<Var> {
        self.body.iter().flat_map(|a| a.vars()).collect()
    }

    /// All variables occurring in the head, sorted.
    pub fn head_vars(&self) -> BTreeSet<Var> {
        self.head.iter().filter_map(Term::as_var).collect()
    }

    /// Head arity.
    pub fn arity(&self) -> usize {
        self.head.len()
    }

    /// Renames every body variable to a fresh one (head terms renamed
    /// consistently). Used to build the *witness copies* of the simulation
    /// procedure and for capture-free combination of queries.
    pub fn rename_apart(&self, tag: &str) -> (ConjunctiveQuery, HashMap<Var, Var>) {
        let mut map: HashMap<Var, Var> = HashMap::new();
        for v in self.body_vars() {
            map.insert(v, Var::fresh(&format!("{tag}{}", v.name())));
        }
        let subst: HashMap<Var, Term> = map.iter().map(|(&v, &w)| (v, Term::Var(w))).collect();
        let q = ConjunctiveQuery {
            head: self
                .head
                .iter()
                .map(|t| match t {
                    Term::Var(v) => *subst.get(v).unwrap_or(t),
                    Term::Const(_) => *t,
                })
                .collect(),
            body: self.body.iter().map(|a| a.substitute(&subst)).collect(),
            unsatisfiable: self.unsatisfiable,
        };
        (q, map)
    }

    /// Applies a substitution to head and body.
    pub fn substitute(&self, subst: &HashMap<Var, Term>) -> ConjunctiveQuery {
        ConjunctiveQuery {
            head: self
                .head
                .iter()
                .map(|t| match t {
                    Term::Var(v) => *subst.get(v).unwrap_or(t),
                    Term::Const(_) => *t,
                })
                .collect(),
            body: self.body.iter().map(|a| a.substitute(subst)).collect(),
            unsatisfiable: self.unsatisfiable,
        }
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q(")?;
        for (i, t) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ") :- ")?;
        if self.unsatisfiable {
            write!(f, "false")?;
            if !self.body.is_empty() {
                write!(f, ", ")?;
            }
        }
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        if self.body.is_empty() && !self.unsatisfiable {
            write!(f, "true")?;
        }
        Ok(())
    }
}

/// Union–find resolution of equality conditions into a substitution.
///
/// Returns the substitution and whether a contradiction (two distinct
/// constants equated) was found.
fn resolve_equalities(equalities: &[Equality]) -> (HashMap<Var, Term>, bool) {
    // Union-find over variables, with an optional constant per class.
    let mut parent: HashMap<Var, Var> = HashMap::new();
    let mut constant: HashMap<Var, Atom> = HashMap::new();
    let mut unsat = false;

    fn find(parent: &mut HashMap<Var, Var>, v: Var) -> Var {
        let p = *parent.entry(v).or_insert(v);
        if p == v {
            return v;
        }
        let root = find(parent, p);
        parent.insert(v, root);
        root
    }

    for (a, b) in equalities {
        match (a, b) {
            (Term::Const(x), Term::Const(y)) => {
                if x != y {
                    unsat = true;
                }
            }
            (Term::Var(v), Term::Const(c)) | (Term::Const(c), Term::Var(v)) => {
                let r = find(&mut parent, *v);
                match constant.get(&r) {
                    Some(&existing) if existing != *c => unsat = true,
                    _ => {
                        constant.insert(r, *c);
                    }
                }
            }
            (Term::Var(v), Term::Var(w)) => {
                let rv = find(&mut parent, *v);
                let rw = find(&mut parent, *w);
                if rv != rw {
                    // Keep the smaller variable as root for determinism.
                    let (root, child) = if rv <= rw { (rv, rw) } else { (rw, rv) };
                    parent.insert(child, root);
                    match (constant.get(&root).copied(), constant.get(&child).copied()) {
                        (Some(x), Some(y)) if x != y => unsat = true,
                        (None, Some(y)) => {
                            constant.insert(root, y);
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    let vars: Vec<Var> = parent.keys().copied().collect();
    let mut subst = HashMap::new();
    for v in vars {
        let r = find(&mut parent, v);
        let target = match constant.get(&r) {
            Some(&c) => Term::Const(c),
            None => Term::Var(r),
        };
        if target != Term::Var(v) {
            subst.insert(v, target);
        }
    }
    (subst, unsat)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(name: &str) -> Term {
        Term::var(name)
    }

    #[test]
    fn equalities_substitute_vars() {
        // q(x) :- R(x, y), y = z, S(z)  ⟹  q(x) :- R(x, y), S(y)
        let q = ConjunctiveQuery::new(
            vec![v("x")],
            vec![QueryAtom::new("R", vec![v("x"), v("y")]), QueryAtom::new("S", vec![v("z")])],
            &[(v("y"), v("z"))],
        );
        assert!(!q.unsatisfiable);
        assert_eq!(q.body[0].args[1], q.body[1].args[0]);
    }

    #[test]
    fn equalities_propagate_constants() {
        let q = ConjunctiveQuery::new(
            vec![v("x")],
            vec![QueryAtom::new("R", vec![v("x"), v("y")])],
            &[(v("y"), Term::int(5))],
        );
        assert_eq!(q.body[0].args[1], Term::int(5));
    }

    #[test]
    fn contradictory_constants_mark_unsat() {
        let q = ConjunctiveQuery::new(
            vec![],
            vec![QueryAtom::new("R", vec![v("x")])],
            &[(v("x"), Term::int(1)), (v("x"), Term::int(2))],
        );
        assert!(q.unsatisfiable);
        let q2 = ConjunctiveQuery::new(vec![], vec![], &[(Term::int(1), Term::int(2))]);
        assert!(q2.unsatisfiable);
    }

    #[test]
    fn chained_equalities_resolve_transitively() {
        let q = ConjunctiveQuery::new(
            vec![v("a")],
            vec![QueryAtom::new("R", vec![v("a"), v("b"), v("c")])],
            &[(v("a"), v("b")), (v("b"), v("c")), (v("c"), Term::int(3))],
        );
        assert_eq!(q.head[0], Term::int(3));
        assert!(q.body[0].args.iter().all(|&t| t == Term::int(3)));
    }

    #[test]
    fn validation_checks_safety_and_schema() {
        let schema = Schema::with_relations(&[("R", &["A", "B"])]);
        let good =
            ConjunctiveQuery::plain(vec![v("x")], vec![QueryAtom::new("R", vec![v("x"), v("y")])]);
        good.validate(&schema).unwrap();

        let unsafe_q =
            ConjunctiveQuery::plain(vec![v("z")], vec![QueryAtom::new("R", vec![v("x"), v("y")])]);
        assert!(matches!(unsafe_q.validate(&schema), Err(QueryError::UnsafeHeadVar(_))));

        let bad_arity = ConjunctiveQuery::plain(vec![], vec![QueryAtom::new("R", vec![v("x")])]);
        assert!(matches!(bad_arity.validate(&schema), Err(QueryError::ArityMismatch { .. })));

        let unknown = ConjunctiveQuery::plain(vec![], vec![QueryAtom::new("T", vec![v("x")])]);
        assert!(matches!(unknown.validate(&schema), Err(QueryError::UnknownRelation(_))));
    }

    #[test]
    fn rename_apart_is_capture_free() {
        let q =
            ConjunctiveQuery::plain(vec![v("x")], vec![QueryAtom::new("R", vec![v("x"), v("y")])]);
        let (r, map) = q.rename_apart("w");
        assert_eq!(map.len(), 2);
        assert!(r.body_vars().is_disjoint(&q.body_vars()));
        assert_eq!(r.body.len(), 1);
        // Head renamed consistently with body.
        assert_eq!(r.head[0], r.body[0].args[0]);
    }

    #[test]
    fn display_is_datalog_like() {
        let q = ConjunctiveQuery::plain(
            vec![v("x"), Term::int(1)],
            vec![QueryAtom::new("R", vec![v("x"), Term::int(1)])],
        );
        assert_eq!(q.to_string(), "q(x, 1) :- R(x, 1)");
    }
}
