//! Seeded random and structured generators for conjunctive queries and
//! databases — the workload side of experiments E2–E4.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use co_object::Atom;

use crate::db::Database;
use crate::query::{ConjunctiveQuery, QueryAtom, Term};
use crate::schema::Var;

/// Configuration for random query/database generation.
#[derive(Clone, Debug)]
pub struct CqGenConfig {
    /// Number of relation names to draw from (`R0`, `R1`, …).
    pub relations: usize,
    /// Arity of every generated relation.
    pub arity: usize,
    /// Body atoms per query.
    pub atoms: usize,
    /// Size of the variable pool (small pools create joins).
    pub var_pool: usize,
    /// Probability (percent) of a constant argument.
    pub const_pct: u32,
    /// Constant pool size.
    pub const_pool: i64,
    /// Head width (number of head terms, drawn from body variables).
    pub head_width: usize,
}

impl Default for CqGenConfig {
    fn default() -> Self {
        CqGenConfig {
            relations: 2,
            arity: 2,
            atoms: 3,
            var_pool: 4,
            const_pct: 15,
            const_pool: 3,
            head_width: 2,
        }
    }
}

/// Seeded generator of random conjunctive queries and small databases.
pub struct CqGen {
    rng: StdRng,
    config: CqGenConfig,
}

impl CqGen {
    /// Creates a generator.
    pub fn new(seed: u64, config: CqGenConfig) -> CqGen {
        CqGen { rng: StdRng::seed_from_u64(seed), config }
    }

    fn term(&mut self) -> Term {
        if self.rng.gen_range(0..100) < self.config.const_pct {
            Term::Const(Atom::int(self.rng.gen_range(0..self.config.const_pool)))
        } else {
            Term::var(&format!("v{}", self.rng.gen_range(0..self.config.var_pool)))
        }
    }

    /// Generates a random (safe) conjunctive query.
    pub fn query(&mut self) -> ConjunctiveQuery {
        let body: Vec<QueryAtom> = (0..self.config.atoms)
            .map(|_| {
                let rel = format!("R{}", self.rng.gen_range(0..self.config.relations));
                let args = (0..self.config.arity).map(|_| self.term()).collect();
                QueryAtom { rel: crate::schema::RelName::new(&rel), args }
            })
            .collect();
        // Head: draw from body variables to guarantee safety.
        let vars: Vec<Var> = body.iter().flat_map(|a| a.vars()).collect();
        let head = (0..self.config.head_width)
            .map(|_| {
                if vars.is_empty() {
                    Term::int(0)
                } else {
                    Term::Var(vars[self.rng.gen_range(0..vars.len())])
                }
            })
            .collect();
        ConjunctiveQuery::plain(head, body)
    }

    /// Generates a random database over the generator's schema.
    pub fn database(&mut self, tuples_per_relation: usize, domain: i64) -> Database {
        let mut db = Database::new();
        for r in 0..self.config.relations {
            let name = crate::schema::RelName::new(&format!("R{r}"));
            for _ in 0..tuples_per_relation {
                let t = (0..self.config.arity)
                    .map(|_| Atom::int(self.rng.gen_range(0..domain)))
                    .collect();
                db.insert(name, t);
            }
        }
        db
    }
}

/// The path (chain) query `q(x0, xn) :- E(x0,x1), …, E(x(n-1),xn)`.
///
/// Chain queries are the tractable end of experiment E2: containment
/// between chains is decided in polynomial time by the backtracking engine
/// because every partial assignment extends deterministically.
pub fn chain_query(n: usize) -> ConjunctiveQuery {
    assert!(n >= 1, "chain length must be ≥ 1");
    let var = |i: usize| Term::var(&format!("x{i}"));
    let body = (0..n).map(|i| QueryAtom::new("E", vec![var(i), var(i + 1)])).collect();
    ConjunctiveQuery::plain(vec![var(0), var(n)], body)
}

/// The Boolean cycle query `q() :- E(x0,x1), …, E(x(n-1),x0)`.
pub fn cycle_query(n: usize) -> ConjunctiveQuery {
    assert!(n >= 1, "cycle length must be ≥ 1");
    let var = |i: usize| Term::var(&format!("c{i}"));
    let body = (0..n).map(|i| QueryAtom::new("E", vec![var(i), var((i + 1) % n)])).collect();
    ConjunctiveQuery::plain(vec![], body)
}

/// A star query: `q(c) :- R(c, x1), …, R(c, xn)` — n leaves off one center.
pub fn star_query(n: usize) -> ConjunctiveQuery {
    let body = (0..n)
        .map(|i| QueryAtom::new("R", vec![Term::var("c"), Term::var(&format!("l{i}"))]))
        .collect();
    ConjunctiveQuery::plain(vec![Term::var("c")], body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::is_contained_in;
    use crate::eval::evaluate;

    #[test]
    fn random_queries_are_safe_and_deterministic() {
        let mut g1 = CqGen::new(9, CqGenConfig::default());
        let mut g2 = CqGen::new(9, CqGenConfig::default());
        for _ in 0..10 {
            let q1 = g1.query();
            let q2 = g2.query();
            assert_eq!(q1, q2);
            for v in q1.head_vars() {
                assert!(q1.body_vars().contains(&v));
            }
        }
    }

    #[test]
    fn chains_contain_longer_chains() {
        // A length-3 path implies a length-1 path between different
        // endpoints? No — heads differ. But chain(n) ⊑ chain(1) via folding
        // is false; the classical fact is chain(n) ⊑ chain(m) iff m ≤ n is
        // *not* generally true with fixed endpoints. What does hold: every
        // chain is contained in itself and the Boolean cycle facts below.
        for n in 1..5 {
            let q = chain_query(n);
            assert!(is_contained_in(&q, &q));
        }
    }

    #[test]
    fn cycle_containment_is_divisibility_like() {
        // cycle(2) has a hom into cycle(4)'s canonical db? cycle(4) ⊑ cycle(2)
        // iff there is a hom cycle(2) → C4, which requires an odd/even walk:
        // C4 is bipartite so a 2-cycle hom needs an edge both ways — absent.
        let c2 = cycle_query(2);
        let c4 = cycle_query(4);
        // hom C4 → C2 exists (wrap around), so cycle(2)'s answers ⊆ … :
        // precisely: c2 ⊑ c4 iff hom(c4 body → frozen c2). frozen c2 = a 2-cycle;
        // C4 maps into a 2-cycle by parity. So c2 ⊑ c4.
        assert!(is_contained_in(&c2, &c4));
        // c4 ⊑ c2 iff hom(C2 → frozen C4): needs adjacent back-and-forth
        // edges in a directed 4-cycle — absent.
        assert!(!is_contained_in(&c4, &c2));
    }

    #[test]
    fn star_queries_minimize_to_one_leaf() {
        let q = star_query(4);
        let m = crate::minimize::minimize(&q);
        assert_eq!(m.body.len(), 1);
    }

    #[test]
    fn random_database_respects_size() {
        let mut g = CqGen::new(1, CqGenConfig::default());
        let db = g.database(5, 10);
        assert!(db.fact_count() <= 10);
        let q = g.query();
        // Evaluation terminates and produces tuples of the right arity.
        let rel = evaluate(&q, &db);
        for t in rel.iter() {
            assert_eq!(t.len(), q.arity());
        }
    }
}
