//! The backtracking homomorphism engine.
//!
//! Everything NP-complete in this reproduction — classical containment \[11\],
//! simulation and strong simulation (§5–6 of the paper), aggregate
//! equivalence (§7) — bottoms out in one search problem: find an assignment
//! of query variables to database atoms under which every body atom becomes
//! a fact of the database, subject to some variables being pre-bound.
//!
//! # Candidate generation (DESIGN.md §9, §14)
//!
//! The engine runs in one of several [`CandidateStrategy`] modes:
//!
//! * [`CandidateStrategy::Indexed`]: at every search node the engine picks
//!   the remaining atom with the **fewest live candidates** (MRV — minimum
//!   remaining values), where candidates come from the relation's
//!   lazily-built hash index on the atom's currently-bound argument
//!   positions ([`crate::db::Relation::pattern_index`]). Only tuples that
//!   agree with the partial assignment on the bound positions are ever
//!   probed.
//! * [`CandidateStrategy::Bitset`]: MRV over **packed bitset domains**
//!   ([`crate::db::Relation::bit_index`]) — a candidate domain is the
//!   word-wise AND of per-column value bitsets, `forbidden` values are
//!   masked out with AND-NOT before any probe, and the MRV count is a
//!   popcount. The word-parallel sibling of `Indexed`.
//! * [`CandidateStrategy::LinearScan`]: the original kernel — a static
//!   greedy atom order fixed up front ([`plan_order`]) and a full scan of
//!   each atom's relation at every depth. Kept as the differential-testing
//!   oracle and as the baseline the `co-bench perf` harness measures
//!   speedups against.
//! * [`CandidateStrategy::Adaptive`] (the default): picks per problem —
//!   instances whose largest scanned relation sits under a threshold use
//!   `LinearScan` so they never pay index-build cost, everything else
//!   uses `Indexed`.
//!
//! All strategies visit exactly the same solution set, respect the same
//! `forbidden` semantics, and charge the step budget the same way: **one
//! step per candidate-tuple probe**. (Indexed and bitset search probe
//! fewer candidates, so a budget generous enough for the linear scan is
//! always generous enough for them on the same instance.)
//!
//! The engine can report the first solution, enumerate all solutions
//! through a callback, or count solutions, and carries an optional step
//! budget so callers with worst-case-exponential workloads (the hard
//! instances of E2–E4) can bail out deterministically.
//!
//! # Intra-request parallelism (DESIGN.md §14)
//!
//! [`HomProblem::first`] and [`HomProblem::solutions`] can fan the **root**
//! MRV atom's candidate list out across a scoped work-stealing pool
//! ([`co_object::par`]): each worker owns a disjoint set of root
//! candidates and runs the ordinary sequential engine below its root
//! binding. First-success cancels siblings (benignly — the request budget
//! does not expire); enumeration merges per-candidate solution lists in
//! candidate order, so the solution *set* is identical to a sequential
//! run. A sequential trial with a small internal probe cap runs first, so
//! easy instances never pay thread spawn cost. Problems with an explicit
//! [`HomProblem::with_budget`] step budget always run sequentially — the
//! deterministic probe accounting is part of that API's contract.

use std::collections::{HashMap, HashSet};
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

use co_object::interrupt::{self, SharedBudget};
use co_object::{par, Atom};
use co_trace::kernel::{self, Metric};

use crate::db::{BitIndex, Database, PatternIndex, PositionMask, Relation, Tuple};
use crate::query::{QueryAtom, Term};
use crate::schema::Var;

/// A variable assignment produced by the engine.
pub type Assignment = HashMap<Var, Atom>;

/// Outcome of a bounded search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SearchOutcome {
    /// Search space exhausted (all solutions were visited).
    Exhausted,
    /// The callback requested an early stop.
    Stopped,
    /// The step budget ran out before the search finished.
    BudgetExceeded,
    /// The thread-local [`co_object::interrupt`] budget (deadline or step
    /// count installed by a serving layer) expired mid-search. Unlike
    /// [`SearchOutcome::BudgetExceeded`] this is sticky for the whole
    /// request: every subsequent probe on the thread fails too, so callers
    /// must abandon the decision rather than retry.
    Interrupted,
}

/// How the engine generates candidate tuples for an atom.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CandidateStrategy {
    /// Hash-index candidates on bound positions + runtime MRV atom
    /// selection.
    Indexed,
    /// Full-relation scans in a static greedy atom order (the original
    /// kernel; oracle and benchmark baseline).
    LinearScan,
    /// Packed `u64` bitset domains per atom: candidate generation,
    /// `forbidden` filtering, and MRV counting are word-parallel.
    Bitset,
    /// Per-problem pick (the default): `LinearScan` below
    /// [`ADAPTIVE_THRESHOLD`], `Indexed` above it.
    Adaptive,
}

/// `Adaptive` cutoff on the *largest relation* any atom scans: below it,
/// per-depth full scans are cheap and index builds cost more than they
/// save, regardless of how many atoms there are. The `BENCH_PR2.json`
/// small-instance regressions — 3-coloring (6-fact frozen relations,
/// dozens of atoms), containment stacks (n-fact relations, n atoms up to
/// 32), positive simulation — all scan relations well under this; the
/// indexed wins (chain joins and witness-copy searches over relations of
/// hundreds to thousands of facts) all sit well above it. Atom count is
/// deliberately *not* a factor: many atoms over tiny relations is exactly
/// where the static-order scan beats paying an index build per atom.
pub const ADAPTIVE_THRESHOLD: usize = 64;

/// Process-wide default strategy, overridable per problem with
/// [`HomProblem::with_strategy`]. Exists so the `co-bench perf` harness can
/// A/B the *entire* decision stack (containment, simulation, COQL, service)
/// without threading a parameter through every layer.
static DEFAULT_STRATEGY: AtomicU8 = AtomicU8::new(DEFAULT_STRATEGY_ADAPTIVE);

const DEFAULT_STRATEGY_ADAPTIVE: u8 = 3;

/// Sets the process-wide default [`CandidateStrategy`].
///
/// Intended for benchmarking and differential testing only; production
/// callers should leave the default ([`CandidateStrategy::Adaptive`])
/// alone.
pub fn set_default_strategy(s: CandidateStrategy) {
    let code = match s {
        CandidateStrategy::Indexed => 0,
        CandidateStrategy::LinearScan => 1,
        CandidateStrategy::Bitset => 2,
        CandidateStrategy::Adaptive => DEFAULT_STRATEGY_ADAPTIVE,
    };
    DEFAULT_STRATEGY.store(code, Ordering::Relaxed);
}

/// The current process-wide default [`CandidateStrategy`].
pub fn default_strategy() -> CandidateStrategy {
    match DEFAULT_STRATEGY.load(Ordering::Relaxed) {
        0 => CandidateStrategy::Indexed,
        1 => CandidateStrategy::LinearScan,
        2 => CandidateStrategy::Bitset,
        _ => CandidateStrategy::Adaptive,
    }
}

/// A homomorphism search problem: match `atoms` into `db`, extending
/// `fixed`.
pub struct HomProblem<'a> {
    atoms: &'a [QueryAtom],
    db: &'a Database,
    fixed: Assignment,
    budget: Option<u64>,
    forbidden: HashMap<Var, HashSet<Atom>>,
    strategy: Option<CandidateStrategy>,
    threads: Option<usize>,
}

impl<'a> HomProblem<'a> {
    /// Creates a problem with no pre-bound variables.
    pub fn new(atoms: &'a [QueryAtom], db: &'a Database) -> HomProblem<'a> {
        HomProblem {
            atoms,
            db,
            fixed: Assignment::new(),
            budget: None,
            forbidden: HashMap::new(),
            strategy: None,
            threads: None,
        }
    }

    /// Pre-binds variables (e.g. head variables for containment checks).
    pub fn with_fixed(mut self, fixed: Assignment) -> HomProblem<'a> {
        self.fixed = fixed;
        self
    }

    /// Sets a step budget; each candidate-tuple probe costs one step.
    pub fn with_budget(mut self, steps: u64) -> HomProblem<'a> {
        self.budget = Some(steps);
        self
    }

    /// Forbids specific values for specific variables. Checked during the
    /// backtracking (not as a post-filter), so a forbidden binding prunes
    /// its whole subtree — the simulation procedures' index-avoidance
    /// condition relies on this for tractability on easy instances.
    pub fn with_forbidden(mut self, forbidden: HashMap<Var, HashSet<Atom>>) -> HomProblem<'a> {
        self.forbidden = forbidden;
        self
    }

    /// Overrides the candidate-generation strategy for this problem (the
    /// default is the process-wide [`default_strategy`]).
    pub fn with_strategy(mut self, strategy: CandidateStrategy) -> HomProblem<'a> {
        self.strategy = Some(strategy);
        self
    }

    /// Overrides the kernel thread count for this problem (`1` forces a
    /// sequential search; the default is the process-global
    /// [`co_object::par::effective_threads`]).
    pub fn with_threads(mut self, threads: usize) -> HomProblem<'a> {
        self.threads = Some(threads.max(1));
        self
    }

    /// Threads this problem may actually use (never fans out on a pool
    /// worker, and never with an explicit step budget — its deterministic
    /// probe accounting is part of the API contract).
    fn effective_threads(&self) -> usize {
        if par::in_worker() || self.budget.is_some() {
            return 1;
        }
        self.threads.unwrap_or_else(par::effective_threads)
    }

    /// The strategy this problem will run under, with `Adaptive` resolved
    /// against the instance size.
    fn resolved_strategy(&self) -> CandidateStrategy {
        let strategy = self.strategy.unwrap_or_else(default_strategy);
        if strategy != CandidateStrategy::Adaptive {
            return strategy;
        }
        // Resolved over the database's relations (a handful) rather than
        // per atom: strictly cheaper, and on the tiny instances this pick
        // exists for, the resolution itself must not show up in profiles.
        let largest: usize = self.db.iter().map(|(_, r)| r.len()).max().unwrap_or(0);
        if largest < ADAPTIVE_THRESHOLD {
            CandidateStrategy::LinearScan
        } else {
            CandidateStrategy::Indexed
        }
    }

    /// Trivial refutations shared by every entry point: an atom over an
    /// empty relation, or a fixed binding violating a forbidden set.
    fn preflight(&self) -> bool {
        for atom in self.atoms {
            match self.db.relation_ref(atom.rel) {
                Some(r) if !r.is_empty() => {}
                _ => return false,
            }
        }
        for (v, a) in &self.fixed {
            if self.forbidden.get(v).is_some_and(|set| set.contains(a)) {
                return false;
            }
        }
        true
    }

    /// Finds the first solution, if any.
    ///
    /// Returns `Err(BudgetExceeded)`/`Err(Interrupted)` only when the
    /// budget ran out *before* a solution was found. May fan the root
    /// candidates out across kernel threads (see the module docs); the
    /// Some/None verdict is deterministic, but *which* witness comes back
    /// can differ run to run under parallelism.
    pub fn first(self) -> Result<Option<Assignment>, SearchOutcome> {
        let threads = self.effective_threads();
        if threads <= 1 {
            return self.first_sequential();
        }
        // Sequential trial: easy instances finish inside the cap and
        // never pay thread spawn cost.
        let trial = HomProblem {
            atoms: self.atoms,
            db: self.db,
            fixed: self.fixed.clone(),
            budget: Some(PARALLEL_TRIAL_PROBES),
            forbidden: self.forbidden.clone(),
            strategy: self.strategy,
            threads: Some(1),
        };
        match trial.first_sequential() {
            Err(SearchOutcome::BudgetExceeded) => {}
            decided => return decided,
        }
        self.run_parallel(threads, true).map(|mut sols| sols.pop())
    }

    fn first_sequential(self) -> Result<Option<Assignment>, SearchOutcome> {
        let mut found = None;
        let outcome = self.for_each(|a| {
            found = Some(a.clone());
            ControlFlow::Break(())
        });
        match (found, outcome) {
            (Some(a), _) => Ok(Some(a)),
            (None, out @ (SearchOutcome::BudgetExceeded | SearchOutcome::Interrupted)) => Err(out),
            (None, _) => Ok(None),
        }
    }

    /// Whether any solution exists (budget-less convenience).
    pub fn exists(self) -> bool {
        matches!(self.first(), Ok(Some(_)))
    }

    /// Enumerates the complete solution set, in a deterministic order for
    /// a fixed thread count. May fan out across kernel threads; the merge
    /// concatenates per-root-candidate solution lists in candidate order,
    /// so the solution *set* always equals a sequential enumeration.
    pub fn solutions(self) -> Result<Vec<Assignment>, SearchOutcome> {
        let threads = self.effective_threads();
        if threads <= 1 {
            return self.solutions_sequential();
        }
        let trial = HomProblem {
            atoms: self.atoms,
            db: self.db,
            fixed: self.fixed.clone(),
            budget: Some(PARALLEL_TRIAL_PROBES),
            forbidden: self.forbidden.clone(),
            strategy: self.strategy,
            threads: Some(1),
        };
        match trial.solutions_sequential() {
            Err(SearchOutcome::BudgetExceeded) => {}
            decided => return decided,
        }
        self.run_parallel(threads, false)
    }

    fn solutions_sequential(self) -> Result<Vec<Assignment>, SearchOutcome> {
        let mut solutions = Vec::new();
        let outcome = self.for_each(|a| {
            solutions.push(a.clone());
            ControlFlow::Continue(())
        });
        match outcome {
            SearchOutcome::Exhausted | SearchOutcome::Stopped => Ok(solutions),
            out => Err(out),
        }
    }

    /// Enumerates solutions through `visit`; stops early on `Break`.
    /// Always sequential (the callback is `FnMut`); [`HomProblem::first`]
    /// and [`HomProblem::solutions`] are the parallel entry points.
    pub fn for_each(self, mut visit: impl FnMut(&Assignment) -> ControlFlow<()>) -> SearchOutcome {
        if !self.preflight() {
            return SearchOutcome::Exhausted;
        }
        search(
            self.atoms,
            self.db,
            self.resolved_strategy(),
            self.fixed,
            self.budget,
            &self.forbidden,
            &mut visit,
        )
    }

    /// The root MRV split: the atom with the fewest candidates under the
    /// fixed bindings, and its candidate tuple ids in snapshot order.
    fn root_split(&self) -> (usize, Arc<Vec<Tuple>>, Vec<u32>) {
        let mut key = Vec::new();
        let mut best: Option<(usize, usize, PositionMask)> = None;
        for (i, atom) in self.atoms.iter().enumerate() {
            let rel = self.db.relation_ref(atom.rel).expect("preflight checked relations");
            let mask = bound_pattern(atom, &self.fixed, &mut key);
            let count =
                if mask == 0 { rel.len() } else { rel.pattern_index(mask).candidate_count(&key) };
            if best.is_none_or(|(c, _, _)| count < c) {
                best = Some((count, i, mask));
            }
        }
        let (_, i, mask) = best.expect("root_split needs at least one atom");
        let atom = &self.atoms[i];
        let rel = self.db.relation_ref(atom.rel).expect("preflight checked relations");
        let snapshot = rel.snapshot();
        let ids = if mask == 0 {
            (0..snapshot.len() as u32).collect()
        } else {
            bound_pattern(atom, &self.fixed, &mut key);
            rel.pattern_index(mask).candidates(&key).to_vec()
        };
        (i, snapshot, ids)
    }

    /// The parallel phase shared by [`HomProblem::first`] (`stop_on_first`)
    /// and [`HomProblem::solutions`]: workers claim root candidates from a
    /// work-stealing feeder, bind them, and run the sequential engine
    /// below; budgets are sliced from a [`SharedBudget`] and kernel
    /// counters are absorbed back into this thread after the join.
    fn run_parallel(
        self,
        threads: usize,
        stop_on_first: bool,
    ) -> Result<Vec<Assignment>, SearchOutcome> {
        if !self.preflight() {
            return Ok(Vec::new());
        }
        let strategy = self.resolved_strategy();
        let (root, snapshot, candidates) = self.root_split();
        let root_atom = &self.atoms[root];
        let shared = SharedBudget::fork_current();
        let winner: Mutex<Option<Assignment>> = Mutex::new(None);
        type WorkerYield = (Vec<(usize, Vec<Assignment>)>, bool, kernel::Counters);
        let (worker_results, stats): (Vec<WorkerYield>, _) =
            par::run_workers(threads, candidates.len(), 1, |me, feeder| {
                let before = kernel::snapshot();
                let guard = interrupt::install_shared(&shared);
                let mut mine: Vec<(usize, Vec<Assignment>)> = Vec::new();
                let mut interrupted = false;
                'chunks: while let Some(range) = feeder.next(me) {
                    for ci in range {
                        // Account the root probe exactly like the engines.
                        kernel::bump(Metric::HomProbes);
                        if interrupt::probe().is_err() {
                            interrupted = true;
                            break 'chunks;
                        }
                        let mut binding = self.fixed.clone();
                        let Some(_newly) = try_bind(
                            &mut binding,
                            &self.forbidden,
                            root_atom,
                            &snapshot[candidates[ci] as usize],
                        ) else {
                            continue;
                        };
                        let mut sols = Vec::new();
                        let outcome = search(
                            self.atoms,
                            self.db,
                            strategy,
                            binding,
                            None,
                            &self.forbidden,
                            &mut |a: &Assignment| {
                                sols.push(a.clone());
                                if stop_on_first {
                                    ControlFlow::Break(())
                                } else {
                                    ControlFlow::Continue(())
                                }
                            },
                        );
                        match outcome {
                            SearchOutcome::Exhausted | SearchOutcome::Stopped => {}
                            SearchOutcome::Interrupted | SearchOutcome::BudgetExceeded => {
                                interrupted = true;
                                break 'chunks;
                            }
                        }
                        if !sols.is_empty() {
                            if stop_on_first {
                                let mut slot = winner.lock().expect("winner lock poisoned");
                                if slot.is_none() {
                                    *slot = sols.pop();
                                }
                                feeder.stop();
                                shared.cancel();
                                break 'chunks;
                            }
                            mine.push((ci, sols));
                        }
                    }
                }
                drop(guard);
                (mine, interrupted, kernel::snapshot().delta(&before))
            });
        shared.rejoin();
        par::note_engaged(stats.threads);
        kernel::bump_by(Metric::KernelParallelBranches, stats.branches);
        kernel::bump_by(Metric::KernelSteals, stats.steals);
        let mut interrupted_any = shared.is_expired();
        let mut per_candidate: Vec<(usize, Vec<Assignment>)> = Vec::new();
        for (mine, interrupted, delta) in worker_results {
            kernel::absorb(&delta);
            interrupted_any |= interrupted;
            per_candidate.extend(mine);
        }
        if stop_on_first {
            if let Some(found) = winner.into_inner().expect("winner lock poisoned") {
                return Ok(vec![found]);
            }
        }
        if interrupted_any {
            return Err(SearchOutcome::Interrupted);
        }
        // Deterministic merge: per-root-candidate lists in candidate order.
        per_candidate.sort_by_key(|(ci, _)| *ci);
        Ok(per_candidate.into_iter().flat_map(|(_, sols)| sols).collect())
    }
}

/// Internal probe cap for the sequential trial that precedes a parallel
/// fan-out: instances that finish within it stay exactly sequential.
const PARALLEL_TRIAL_PROBES: u64 = 4096;

/// Runs the resolved engine over `atoms` with `binding` pre-applied.
/// `strategy` must not be [`CandidateStrategy::Adaptive`] (resolve first),
/// and callers are responsible for the [`HomProblem::preflight`] checks.
fn search(
    atoms: &[QueryAtom],
    db: &Database,
    strategy: CandidateStrategy,
    binding: Assignment,
    budget: Option<u64>,
    forbidden: &HashMap<Var, HashSet<Atom>>,
    visit: &mut dyn FnMut(&Assignment) -> ControlFlow<()>,
) -> SearchOutcome {
    let rels: Vec<&Relation> = atoms
        .iter()
        .map(|a| db.relation_ref(a.rel).expect("empty-relation fast path already handled"))
        .collect();
    match strategy {
        CandidateStrategy::Indexed => {
            let mut state = IndexedSearch {
                atoms,
                rels: &rels,
                snapshots: rels.iter().map(|r| r.snapshot()).collect(),
                index_cache: vec![HashMap::new(); atoms.len()],
                scratch: Vec::new(),
                remaining: (0..atoms.len()).collect(),
                binding,
                steps_left: budget,
                forbidden,
                visit,
            };
            state.run()
        }
        CandidateStrategy::Bitset => {
            let mut state = BitsetSearch {
                atoms,
                rels: &rels,
                snapshots: rels.iter().map(|r| r.snapshot()).collect(),
                bit_cache: vec![HashMap::new(); atoms.len()],
                scratch: Vec::new(),
                remaining: (0..atoms.len()).collect(),
                binding,
                steps_left: budget,
                forbidden,
                visit,
            };
            state.run()
        }
        CandidateStrategy::LinearScan => {
            let order = plan_order(atoms, &binding, db);
            let mut state = LinearSearch {
                atoms,
                order: &order,
                snapshots: rels.iter().map(|r| r.snapshot()).collect(),
                binding,
                steps_left: budget,
                forbidden,
                visit,
            };
            state.run(0)
        }
        CandidateStrategy::Adaptive => unreachable!("Adaptive is resolved before dispatch"),
    }
}

/// Shared binding/undo logic: attempts to bind `atom`'s arguments against
/// `tuple` under `binding`; on success returns the variables newly bound
/// (for undo), on conflict returns `None` with `binding` unchanged.
fn try_bind(
    binding: &mut Assignment,
    forbidden: &HashMap<Var, HashSet<Atom>>,
    atom: &QueryAtom,
    tuple: &[Atom],
) -> Option<Vec<Var>> {
    debug_assert_eq!(atom.args.len(), tuple.len(), "arity checked by caller");
    let mut newly = Vec::new();
    for (term, &value) in atom.args.iter().zip(tuple.iter()) {
        let ok = match term {
            Term::Const(c) => *c == value,
            Term::Var(v) => match binding.get(v) {
                Some(&bound) => bound == value,
                None => {
                    if forbidden.get(v).is_some_and(|set| set.contains(&value)) {
                        false
                    } else {
                        binding.insert(*v, value);
                        newly.push(*v);
                        true
                    }
                }
            },
        };
        if !ok {
            for v in newly {
                binding.remove(&v);
            }
            return None;
        }
    }
    Some(newly)
}

/// Fills `key` with `atom`'s determined argument values (constants and
/// bound variables) in column order and returns the bound-position mask.
/// Positions ≥ 64 never enter the mask (they stay consistency-checked by
/// [`try_bind`]). Takes the buffer by `&mut` so the hot MRV loop reuses
/// one allocation across every (node, atom) probe.
fn bound_pattern(atom: &QueryAtom, binding: &Assignment, key: &mut Vec<Atom>) -> PositionMask {
    key.clear();
    let mut mask: PositionMask = 0;
    for (pos, term) in atom.args.iter().enumerate() {
        if pos >= 64 {
            break;
        }
        let value = match term {
            Term::Const(c) => Some(*c),
            Term::Var(v) => binding.get(v).copied(),
        };
        if let Some(a) = value {
            mask |= 1 << pos;
            key.push(a);
        }
    }
    mask
}

/// The indexed engine: dynamic MRV atom selection over index-generated
/// candidate lists.
struct IndexedSearch<'a, 'f> {
    atoms: &'a [QueryAtom],
    rels: &'a [&'a Relation],
    snapshots: Vec<Arc<Vec<Tuple>>>,
    /// Per-atom memo of the relation's pattern indexes, so the MRV loop
    /// pays one lock-free local hash probe instead of a `RwLock` round
    /// trip through the relation per candidate count.
    index_cache: Vec<HashMap<PositionMask, Arc<PatternIndex>>>,
    /// Reusable key buffer for [`bound_pattern`].
    scratch: Vec<Atom>,
    /// Indices of atoms not yet matched.
    remaining: Vec<usize>,
    binding: Assignment,
    steps_left: Option<u64>,
    forbidden: &'a HashMap<Var, HashSet<Atom>>,
    visit: &'f mut dyn FnMut(&Assignment) -> ControlFlow<()>,
}

impl IndexedSearch<'_, '_> {
    /// The cached candidate count for atom `i` under the current binding.
    /// Leaves the matching key in `self.scratch`.
    fn candidate_count(&mut self, i: usize) -> (usize, PositionMask) {
        let mask = bound_pattern(&self.atoms[i], &self.binding, &mut self.scratch);
        if mask == 0 {
            return (self.snapshots[i].len(), mask);
        }
        let rel = self.rels[i];
        let idx = match self.index_cache[i].entry(mask) {
            std::collections::hash_map::Entry::Occupied(e) => {
                kernel::bump(Metric::HomIndexHits);
                e.into_mut()
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                kernel::bump(Metric::HomIndexBuilds);
                v.insert(rel.pattern_index(mask))
            }
        };
        (idx.candidate_count(&self.scratch), mask)
    }

    fn run(&mut self) -> SearchOutcome {
        if self.remaining.is_empty() {
            kernel::bump(Metric::HomSolutions);
            return match (self.visit)(&self.binding) {
                ControlFlow::Break(()) => SearchOutcome::Stopped,
                ControlFlow::Continue(()) => SearchOutcome::Exhausted,
            };
        }
        // MRV: the remaining atom with the fewest index candidates under
        // the current binding; ties break on original position for
        // determinism. `pick` is a position in `self.remaining`. A zero
        // count is a proven dead end — no atom choice can rescue the node,
        // so the scan stops immediately (forward-checking-style pruning;
        // no candidates are probed either way, so budget semantics and the
        // solution set are unaffected).
        let mut pick = 0;
        let mut pick_atom = usize::MAX;
        let mut pick_mask: PositionMask = 0;
        let mut best = usize::MAX;
        for slot in 0..self.remaining.len() {
            let i = self.remaining[slot];
            let (count, mask) = self.candidate_count(i);
            if count < best || (count == best && i < pick_atom) {
                best = count;
                pick = slot;
                pick_atom = i;
                pick_mask = mask;
            }
            if best == 0 {
                break;
            }
        }
        let i = self.remaining.swap_remove(pick);
        let snapshot = Arc::clone(&self.snapshots[i]);
        let atom = &self.atoms[i];
        let index = if pick_mask == 0 {
            None
        } else {
            // Re-derive the key for the picked atom (the scratch buffer may
            // hold a later atom's key) and fetch the memoized index.
            bound_pattern(atom, &self.binding, &mut self.scratch);
            Some(Arc::clone(&self.index_cache[i][&pick_mask]))
        };
        let outcome = (|| {
            let probe = |this: &mut Self, tuple: &[Atom]| -> Result<(), SearchOutcome> {
                kernel::bump(Metric::HomProbes);
                if let Some(budget) = &mut this.steps_left {
                    if *budget == 0 {
                        return Err(SearchOutcome::BudgetExceeded);
                    }
                    *budget -= 1;
                }
                if interrupt::probe().is_err() {
                    return Err(SearchOutcome::Interrupted);
                }
                if let Some(newly) = try_bind(&mut this.binding, this.forbidden, atom, tuple) {
                    let outcome = this.run();
                    for v in newly {
                        this.binding.remove(&v);
                    }
                    match outcome {
                        SearchOutcome::Exhausted => {}
                        stop => return Err(stop),
                    }
                }
                Ok(())
            };
            match &index {
                Some(idx) => {
                    for &id in idx.candidates(&self.scratch) {
                        probe(self, &snapshot[id as usize])?;
                    }
                }
                None => {
                    for tuple in snapshot.iter() {
                        probe(self, tuple)?;
                    }
                }
            }
            Ok(())
        })();
        // Undo the atom selection on every path (including early stops).
        self.remaining.push(i);
        let last = self.remaining.len() - 1;
        self.remaining.swap(pick, last);
        match outcome {
            Ok(()) => {
                // Candidate list exhausted without an early stop below this
                // node: the search backtracks past the MRV pick.
                kernel::bump(Metric::HomBacktracks);
                SearchOutcome::Exhausted
            }
            Err(stop) => stop,
        }
    }
}

/// The bitset engine: MRV over packed candidate domains.
///
/// For each remaining atom, the candidate domain is a packed bitset over
/// the relation snapshot, built word-parallel: AND the per-column value
/// bitsets of every determined argument position, then AND-NOT the
/// bitsets of `forbidden` values at unbound-variable positions. MRV picks
/// the atom with the smallest popcount; only set bits are ever probed.
///
/// Probes charge budgets exactly like the other engines (one step per
/// probed candidate), but because `forbidden` values are masked out
/// *before* probing, the bitset engine can probe strictly fewer
/// candidates than `Indexed` on forbidden-heavy instances — the solution
/// set is unchanged (those probes fail in [`try_bind`] anyway).
struct BitsetSearch<'a, 'f> {
    atoms: &'a [QueryAtom],
    rels: &'a [&'a Relation],
    snapshots: Vec<Arc<Vec<Tuple>>>,
    /// Per-atom memo of the relation's per-column bit indexes (one lock
    /// round trip per (atom, column), then lock-free).
    bit_cache: Vec<HashMap<usize, Arc<BitIndex>>>,
    /// Reusable domain buffer for the MRV counting pass.
    scratch: Vec<u64>,
    /// Indices of atoms not yet matched.
    remaining: Vec<usize>,
    binding: Assignment,
    steps_left: Option<u64>,
    forbidden: &'a HashMap<Var, HashSet<Atom>>,
    visit: &'f mut dyn FnMut(&Assignment) -> ControlFlow<()>,
}

impl BitsetSearch<'_, '_> {
    /// The memoized per-column bit index for atom `i`, column `pos`.
    fn bit_index(&mut self, i: usize, pos: usize) -> Arc<BitIndex> {
        match self.bit_cache[i].entry(pos) {
            std::collections::hash_map::Entry::Occupied(e) => {
                kernel::bump(Metric::HomIndexHits);
                Arc::clone(e.get())
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                kernel::bump(Metric::HomIndexBuilds);
                Arc::clone(v.insert(self.rels[i].bit_index(pos)))
            }
        }
    }

    /// Builds atom `i`'s candidate domain under the current binding into
    /// `out` and returns its popcount.
    fn domain_into(&mut self, i: usize, out: &mut Vec<u64>) -> usize {
        let n = self.snapshots[i].len();
        let words = n.div_ceil(64);
        out.clear();
        let mut initialized = false;
        for pos in 0..self.atoms[i].args.len() {
            let term = &self.atoms[i].args[pos];
            let value = match term {
                Term::Const(c) => Some(*c),
                Term::Var(v) => self.binding.get(v).copied(),
            };
            if let Some(a) = value {
                let idx = self.bit_index(i, pos);
                match idx.bits(a) {
                    Some(bits) => {
                        if initialized {
                            for (w, &b) in out.iter_mut().zip(bits) {
                                *w &= b;
                            }
                        } else {
                            out.extend_from_slice(bits);
                            initialized = true;
                        }
                    }
                    None => {
                        // Value absent from the column: empty domain.
                        out.clear();
                        out.resize(words, 0);
                        return 0;
                    }
                }
            } else if let Term::Var(v) = term {
                if let Some(banned) = self.forbidden.get(v) {
                    let idx = self.bit_index(i, pos);
                    for &a in banned {
                        if let Some(bits) = idx.bits(a) {
                            if !initialized {
                                *out = idx.full_domain();
                                initialized = true;
                            }
                            for (w, &b) in out.iter_mut().zip(bits) {
                                *w &= !b;
                            }
                        }
                    }
                }
            }
        }
        if !initialized {
            *out = self.bit_index(i, 0).full_domain();
        }
        out.iter().map(|w| w.count_ones() as usize).sum()
    }

    fn run(&mut self) -> SearchOutcome {
        if self.remaining.is_empty() {
            kernel::bump(Metric::HomSolutions);
            return match (self.visit)(&self.binding) {
                ControlFlow::Break(()) => SearchOutcome::Stopped,
                ControlFlow::Continue(()) => SearchOutcome::Exhausted,
            };
        }
        // MRV by popcount; ties break on original position, zero counts
        // stop the scan — exactly the `IndexedSearch` node discipline.
        let mut pick = 0;
        let mut pick_atom = usize::MAX;
        let mut best = usize::MAX;
        let mut scratch = std::mem::take(&mut self.scratch);
        for slot in 0..self.remaining.len() {
            let i = self.remaining[slot];
            let count = self.domain_into(i, &mut scratch);
            if count < best || (count == best && i < pick_atom) {
                best = count;
                pick = slot;
                pick_atom = i;
            }
            if best == 0 {
                break;
            }
        }
        let i = self.remaining.swap_remove(pick);
        // Re-derive the picked atom's domain (the scratch holds a later
        // atom's); it lives across the recursion, so it gets its own
        // buffer while the scratch goes back for the children to reuse.
        let mut domain = Vec::new();
        self.domain_into(i, &mut domain);
        self.scratch = scratch;
        let snapshot = Arc::clone(&self.snapshots[i]);
        let atom = &self.atoms[i];
        let outcome = (|| {
            for (w, &word) in domain.iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let id = w * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    kernel::bump(Metric::HomProbes);
                    if let Some(budget) = &mut self.steps_left {
                        if *budget == 0 {
                            return Err(SearchOutcome::BudgetExceeded);
                        }
                        *budget -= 1;
                    }
                    if interrupt::probe().is_err() {
                        return Err(SearchOutcome::Interrupted);
                    }
                    if let Some(newly) =
                        try_bind(&mut self.binding, self.forbidden, atom, &snapshot[id])
                    {
                        let outcome = self.run();
                        for v in newly {
                            self.binding.remove(&v);
                        }
                        match outcome {
                            SearchOutcome::Exhausted => {}
                            stop => return Err(stop),
                        }
                    }
                }
            }
            Ok(())
        })();
        self.remaining.push(i);
        let last = self.remaining.len() - 1;
        self.remaining.swap(pick, last);
        match outcome {
            Ok(()) => {
                kernel::bump(Metric::HomBacktracks);
                SearchOutcome::Exhausted
            }
            Err(stop) => stop,
        }
    }
}

/// The original kernel: static plan, full-relation scans. Retained verbatim
/// as the oracle for differential tests and the `co-bench perf` baseline.
struct LinearSearch<'a, 'f> {
    atoms: &'a [QueryAtom],
    order: &'a [usize],
    snapshots: Vec<Arc<Vec<Tuple>>>,
    binding: Assignment,
    steps_left: Option<u64>,
    forbidden: &'a HashMap<Var, HashSet<Atom>>,
    visit: &'f mut dyn FnMut(&Assignment) -> ControlFlow<()>,
}

impl LinearSearch<'_, '_> {
    fn run(&mut self, depth: usize) -> SearchOutcome {
        if depth == self.order.len() {
            kernel::bump(Metric::HomSolutions);
            return match (self.visit)(&self.binding) {
                ControlFlow::Break(()) => SearchOutcome::Stopped,
                ControlFlow::Continue(()) => SearchOutcome::Exhausted,
            };
        }
        let i = self.order[depth];
        let atom = &self.atoms[i];
        let snapshot = Arc::clone(&self.snapshots[i]);
        // Deterministic iteration for reproducible search behaviour.
        for tuple in snapshot.iter() {
            kernel::bump(Metric::HomProbes);
            if let Some(budget) = &mut self.steps_left {
                if *budget == 0 {
                    return SearchOutcome::BudgetExceeded;
                }
                *budget -= 1;
            }
            if interrupt::probe().is_err() {
                return SearchOutcome::Interrupted;
            }
            if let Some(newly_bound) = try_bind(&mut self.binding, self.forbidden, atom, tuple) {
                let outcome = self.run(depth + 1);
                for v in newly_bound {
                    self.binding.remove(&v);
                }
                match outcome {
                    SearchOutcome::Exhausted => {}
                    stop => return stop,
                }
            }
        }
        kernel::bump(Metric::HomBacktracks);
        SearchOutcome::Exhausted
    }
}

/// Greedy static atom ordering: repeatedly pick the atom with the most
/// already-bound argument positions, breaking ties by the smaller
/// *constant-filtered* candidate count, then by original position (for
/// determinism).
///
/// Candidate counts come from each relation's hash index on the atom's
/// constant positions, so `R(1, y)` is costed by the tuples matching `1` —
/// not all of `R`. Unbound-variable counts are maintained incrementally
/// through a variable → atoms occurrence map instead of being recomputed
/// with a full `atoms × arity` rescan per selection round.
fn plan_order(atoms: &[QueryAtom], fixed: &Assignment, db: &Database) -> Vec<usize> {
    let mut bound: HashSet<Var> = fixed.keys().copied().collect();

    // Constant-filtered base size per atom (pre-filtering satellite): the
    // number of tuples matching the atom's constant arguments.
    let sizes: Vec<usize> = atoms
        .iter()
        .map(|atom| {
            let Some(rel) = db.relation_ref(atom.rel) else { return 0 };
            let consts: Vec<(usize, Atom)> = atom
                .args
                .iter()
                .enumerate()
                .filter_map(|(pos, t)| t.as_const().map(|c| (pos, c)))
                .filter(|(pos, _)| *pos < 64)
                .collect();
            if consts.is_empty() {
                return rel.len();
            }
            let mask: PositionMask = consts.iter().fold(0, |m, (pos, _)| m | 1 << pos);
            let key: Vec<Atom> = consts.iter().map(|(_, c)| *c).collect();
            rel.pattern_index(mask).candidate_count(&key)
        })
        .collect();

    // Incremental unbound counts: occurrences[v] lists (atom, multiplicity).
    let mut unbound: Vec<usize> = vec![0; atoms.len()];
    let mut occurrences: HashMap<Var, Vec<usize>> = HashMap::new();
    for (i, atom) in atoms.iter().enumerate() {
        for v in atom.vars() {
            if !bound.contains(&v) {
                unbound[i] += 1;
                occurrences.entry(v).or_default().push(i);
            }
        }
    }

    let mut remaining: Vec<usize> = (0..atoms.len()).collect();
    let mut order = Vec::with_capacity(atoms.len());
    while !remaining.is_empty() {
        let best = remaining
            .iter()
            .enumerate()
            .min_by_key(|(_, &i)| (unbound[i], sizes[i], i))
            .map(|(pos, _)| pos)
            .expect("remaining is non-empty");
        let i = remaining.swap_remove(best);
        for v in atoms[i].vars() {
            if bound.insert(v) {
                for &j in occurrences.get(&v).into_iter().flatten() {
                    unbound[j] -= 1;
                }
            }
        }
        order.push(i);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Term;

    fn v(name: &str) -> Term {
        Term::var(name)
    }

    /// Runs the same closure under all three concrete strategies and
    /// asserts identical results.
    fn both<R: PartialEq + std::fmt::Debug>(f: impl Fn(CandidateStrategy) -> R) -> R {
        let indexed = f(CandidateStrategy::Indexed);
        let linear = f(CandidateStrategy::LinearScan);
        let bitset = f(CandidateStrategy::Bitset);
        assert_eq!(indexed, linear, "Indexed and LinearScan disagree");
        assert_eq!(indexed, bitset, "Indexed and Bitset disagree");
        indexed
    }

    #[test]
    fn finds_simple_match() {
        let db = Database::from_ints(&[("R", &[&[1, 2], &[2, 3]])]);
        let atoms = vec![
            QueryAtom::new("R", vec![v("x"), v("y")]),
            QueryAtom::new("R", vec![v("y"), v("z")]),
        ];
        let sol = HomProblem::new(&atoms, &db).first().unwrap().unwrap();
        assert_eq!(sol[&Var::new("x")], Atom::int(1));
        assert_eq!(sol[&Var::new("y")], Atom::int(2));
        assert_eq!(sol[&Var::new("z")], Atom::int(3));
    }

    use crate::schema::Var;

    #[test]
    fn respects_fixed_bindings() {
        let db = Database::from_ints(&[("R", &[&[1, 2], &[2, 3]])]);
        let atoms = vec![QueryAtom::new("R", vec![v("x"), v("y")])];
        let mut fixed = Assignment::new();
        fixed.insert(Var::new("x"), Atom::int(2));
        let sol = HomProblem::new(&atoms, &db).with_fixed(fixed).first().unwrap().unwrap();
        assert_eq!(sol[&Var::new("y")], Atom::int(3));
    }

    #[test]
    fn detects_no_match() {
        let db = Database::from_ints(&[("R", &[&[1, 2]])]);
        let atoms = vec![
            QueryAtom::new("R", vec![v("x"), v("x")]), // needs a loop
        ];
        assert!(!both(|s| HomProblem::new(&atoms, &db).with_strategy(s).exists()));
    }

    #[test]
    fn empty_relation_short_circuits() {
        let db = Database::from_ints(&[("R", &[&[1, 2]])]);
        let atoms = vec![QueryAtom::new("S", vec![v("x")])];
        assert!(!both(|s| HomProblem::new(&atoms, &db).with_strategy(s).exists()));
    }

    #[test]
    fn enumerates_all_solutions() {
        let db = Database::from_ints(&[("R", &[&[1], &[2], &[3]])]);
        let atoms = vec![QueryAtom::new("R", vec![v("x")])];
        let seen = both(|s| {
            let mut seen = Vec::new();
            let outcome = HomProblem::new(&atoms, &db).with_strategy(s).for_each(|a| {
                seen.push(a[&Var::new("x")]);
                ControlFlow::Continue(())
            });
            assert_eq!(outcome, SearchOutcome::Exhausted);
            seen.sort();
            seen
        });
        assert_eq!(seen, vec![Atom::int(1), Atom::int(2), Atom::int(3)]);
    }

    #[test]
    fn budget_is_enforced() {
        // Cross product with no solution: x must equal y via S, absent.
        let tuples: Vec<Vec<i64>> = (0..50).map(|i| vec![i]).collect();
        let refs: Vec<&[i64]> = tuples.iter().map(|t| t.as_slice()).collect();
        let db = Database::from_ints(&[("R", &refs)]);
        let atoms = vec![
            QueryAtom::new("R", vec![v("a")]),
            QueryAtom::new("R", vec![v("b")]),
            QueryAtom::new("S", vec![v("a"), v("b")]),
        ];
        // S is empty → short-circuit even with a tiny budget.
        assert!(!both(|s| HomProblem::new(&atoms, &db).with_strategy(s).with_budget(1).exists()));

        // Without the empty relation, a tiny budget must trip: R has 50
        // tuples, so even indexed search probes > 10 candidates for the
        // fully-unconstrained cross product.
        let atoms2 = vec![
            QueryAtom::new("R", vec![v("a")]),
            QueryAtom::new("R", vec![v("b")]),
            QueryAtom::new("R", vec![v("c")]),
        ];
        both(|s| {
            let outcome = HomProblem::new(&atoms2, &db)
                .with_strategy(s)
                .with_budget(10)
                .for_each(|_| ControlFlow::Continue(()));
            assert_eq!(outcome, SearchOutcome::BudgetExceeded);
        });
    }

    #[test]
    fn interrupt_budget_stops_both_engines() {
        let tuples: Vec<Vec<i64>> = (0..50).map(|i| vec![i]).collect();
        let refs: Vec<&[i64]> = tuples.iter().map(|t| t.as_slice()).collect();
        let db = Database::from_ints(&[("R", &refs)]);
        let atoms = vec![
            QueryAtom::new("R", vec![v("a")]),
            QueryAtom::new("R", vec![v("b")]),
            QueryAtom::new("R", vec![v("c")]),
        ];
        both(|s| {
            let _guard = interrupt::install(interrupt::Budget { deadline: None, steps: Some(10) });
            let outcome = HomProblem::new(&atoms, &db)
                .with_strategy(s)
                .for_each(|_| ControlFlow::Continue(()));
            assert_eq!(outcome, SearchOutcome::Interrupted);
            assert!(matches!(
                HomProblem::new(&atoms, &db).with_strategy(s).first(),
                Err(SearchOutcome::Interrupted)
            ));
        });
    }

    #[test]
    fn constants_filter_candidates() {
        let db = Database::from_ints(&[("R", &[&[1, 2], &[1, 3], &[4, 5]])]);
        let atoms = vec![QueryAtom::new("R", vec![Term::int(1), v("y")])];
        let ys = both(|s| {
            let mut ys = Vec::new();
            HomProblem::new(&atoms, &db).with_strategy(s).for_each(|a| {
                ys.push(a[&Var::new("y")]);
                ControlFlow::Continue(())
            });
            ys.sort();
            ys
        });
        assert_eq!(ys, vec![Atom::int(2), Atom::int(3)]);
    }

    #[test]
    fn indexed_search_probes_fewer_candidates() {
        // A star join where the indexed engine touches only the matching
        // adjacency bucket: a budget of 4 suffices for the indexed engine
        // but trips the linear scan.
        let tuples: Vec<Vec<i64>> = (0..100).map(|i| vec![i / 10, i]).collect();
        let refs: Vec<&[i64]> = tuples.iter().map(|t| t.as_slice()).collect();
        let db = Database::from_ints(&[("R", &refs), ("S", &[&[9]])]);
        let atoms =
            vec![QueryAtom::new("S", vec![v("x")]), QueryAtom::new("R", vec![v("x"), v("y")])];
        // Indexed: probes S's single tuple, then R's x=9 bucket (10 tuples
        // max, first succeeds) — well under budget.
        let sol = HomProblem::new(&atoms, &db)
            .with_strategy(CandidateStrategy::Indexed)
            .with_budget(4)
            .first()
            .unwrap()
            .unwrap();
        assert_eq!(sol[&Var::new("x")], Atom::int(9));
        // Linear scan probes R's tuples up to the x=9 region and trips.
        assert!(matches!(
            HomProblem::new(&atoms, &db)
                .with_strategy(CandidateStrategy::LinearScan)
                .with_budget(4)
                .first(),
            Err(SearchOutcome::BudgetExceeded)
        ));
    }

    #[test]
    fn plan_order_prefers_constant_filtered_atoms() {
        // R(1, y) matches 1 tuple; T(u, w) matches 3: the constant-filtered
        // atom must be planned first even though both have one unbound var
        // after x is bound... (here both start unbound; R(1,y) has 1 unbound
        // var vs T's 2, but sizes also favour R).
        let db = Database::from_ints(&[
            ("R", &[&[1, 2], &[3, 4], &[5, 6]]),
            ("T", &[&[1, 1], &[2, 2], &[3, 3]]),
        ]);
        let atoms = vec![
            QueryAtom::new("T", vec![v("u"), v("w")]),
            QueryAtom::new("R", vec![Term::int(1), v("y")]),
        ];
        let order = plan_order(&atoms, &Assignment::new(), &db);
        assert_eq!(order[0], 1, "constant-filtered atom planned first");
    }

    #[test]
    fn default_strategy_round_trips() {
        assert_eq!(default_strategy(), CandidateStrategy::Adaptive);
        for s in [
            CandidateStrategy::Indexed,
            CandidateStrategy::LinearScan,
            CandidateStrategy::Bitset,
            CandidateStrategy::Adaptive,
        ] {
            set_default_strategy(s);
            assert_eq!(default_strategy(), s);
        }
        assert_eq!(default_strategy(), CandidateStrategy::Adaptive);
    }

    #[test]
    fn adaptive_resolves_by_instance_size() {
        let small = Database::from_ints(&[("R", &[&[1, 2]])]);
        let atoms = vec![QueryAtom::new("R", vec![v("x"), v("y")])];
        let p = HomProblem::new(&atoms, &small).with_strategy(CandidateStrategy::Adaptive);
        assert_eq!(p.resolved_strategy(), CandidateStrategy::LinearScan);

        let tuples: Vec<Vec<i64>> =
            (0..ADAPTIVE_THRESHOLD as i64).map(|i| vec![i, i + 1]).collect();
        let refs: Vec<&[i64]> = tuples.iter().map(|t| t.as_slice()).collect();
        let big = Database::from_ints(&[("R", &refs)]);
        let p = HomProblem::new(&atoms, &big).with_strategy(CandidateStrategy::Adaptive);
        assert_eq!(p.resolved_strategy(), CandidateStrategy::Indexed);

        // Explicit strategies pass through untouched.
        let p = HomProblem::new(&atoms, &small).with_strategy(CandidateStrategy::Bitset);
        assert_eq!(p.resolved_strategy(), CandidateStrategy::Bitset);
    }

    #[test]
    fn bitset_prefilters_forbidden_values() {
        // 100 tuples, 99 of them forbidden for x: the bitset engine must
        // still find the sole allowed solution, probing only unmasked
        // candidates.
        let tuples: Vec<Vec<i64>> = (0..100).map(|i| vec![i]).collect();
        let refs: Vec<&[i64]> = tuples.iter().map(|t| t.as_slice()).collect();
        let db = Database::from_ints(&[("R", &refs)]);
        let atoms = vec![QueryAtom::new("R", vec![v("x")])];
        let mut forbidden: HashMap<Var, HashSet<Atom>> = HashMap::new();
        forbidden.insert(Var::new("x"), (0..100).filter(|&i| i != 42).map(Atom::int).collect());
        let sols = both(|s| {
            let mut sols = Vec::new();
            let outcome = HomProblem::new(&atoms, &db)
                .with_strategy(s)
                .with_forbidden(forbidden.clone())
                .for_each(|a| {
                    sols.push(a[&Var::new("x")]);
                    ControlFlow::Continue(())
                });
            assert_eq!(outcome, SearchOutcome::Exhausted);
            sols
        });
        assert_eq!(sols, vec![Atom::int(42)]);
        // And the pre-filter really skips probes: budget 1 suffices for
        // Bitset where Indexed needs to probe-and-reject the forbidden 99.
        let sol = HomProblem::new(&atoms, &db)
            .with_strategy(CandidateStrategy::Bitset)
            .with_forbidden(forbidden.clone())
            .with_budget(1)
            .first()
            .unwrap()
            .unwrap();
        assert_eq!(sol[&Var::new("x")], Atom::int(42));
    }

    #[test]
    fn bitset_handles_wide_and_repeated_columns() {
        // Repeated variable (diagonal) and a 70-tuple relation so domains
        // span more than one u64 word.
        let tuples: Vec<Vec<i64>> = (0..70).map(|i| vec![i % 7, i]).collect();
        let refs: Vec<&[i64]> = tuples.iter().map(|t| t.as_slice()).collect();
        let db = Database::from_ints(&[("R", &refs)]);
        let atoms = vec![QueryAtom::new("R", vec![v("x"), v("x")])];
        let sols = both(|s| {
            let mut sols = Vec::new();
            HomProblem::new(&atoms, &db).with_strategy(s).for_each(|a| {
                sols.push(a[&Var::new("x")]);
                ControlFlow::Continue(())
            });
            sols.sort();
            sols
        });
        // x must satisfy x % 7 == x and x < 70: exactly 0..7.
        assert_eq!(sols, (0..7).map(Atom::int).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_first_agrees_with_sequential() {
        // Big enough to outlast the sequential trial's probe cap: a
        // negative join instance (no solution) over a few thousand tuples.
        let tuples: Vec<Vec<i64>> = (0..4000).map(|i| vec![i, i + 1]).collect();
        let refs: Vec<&[i64]> = tuples.iter().map(|t| t.as_slice()).collect();
        let db = Database::from_ints(&[("R", &refs)]);
        // A 3-cycle: impossible in a successor chain.
        let atoms = vec![
            QueryAtom::new("R", vec![v("x"), v("y")]),
            QueryAtom::new("R", vec![v("y"), v("z")]),
            QueryAtom::new("R", vec![v("z"), v("x")]),
        ];
        for s in
            [CandidateStrategy::Indexed, CandidateStrategy::LinearScan, CandidateStrategy::Bitset]
        {
            let seq = HomProblem::new(&atoms, &db).with_strategy(s).with_threads(1).first();
            let par = HomProblem::new(&atoms, &db).with_strategy(s).with_threads(4).first();
            assert_eq!(seq.as_ref().map(Option::is_some), par.as_ref().map(Option::is_some));
            assert_eq!(seq.unwrap(), None, "chain has no 3-cycle");
        }
        // Positive case: add one real triangle; the parallel search must
        // find a witness on it.
        let mut db2 = db.clone();
        db2.insert(crate::schema::RelName::new("R"), vec![Atom::int(9000), Atom::int(9001)]);
        db2.insert(crate::schema::RelName::new("R"), vec![Atom::int(9001), Atom::int(9002)]);
        db2.insert(crate::schema::RelName::new("R"), vec![Atom::int(9002), Atom::int(9000)]);
        let par = HomProblem::new(&atoms, &db2).with_threads(4).first().unwrap().unwrap();
        let x = par[&Var::new("x")];
        assert!([9000, 9001, 9002].map(Atom::int).contains(&x));
    }

    #[test]
    fn parallel_solutions_match_sequential_set() {
        // Enumeration across threads must yield the same solution set.
        let tuples: Vec<Vec<i64>> = (0..120).map(|i| vec![i % 12, i]).collect();
        let refs: Vec<&[i64]> = tuples.iter().map(|t| t.as_slice()).collect();
        let db = Database::from_ints(&[("R", &refs)]);
        let atoms = vec![
            QueryAtom::new("R", vec![v("x"), v("y")]),
            QueryAtom::new("R", vec![v("y"), v("z")]),
        ];
        let normalize = |mut sols: Vec<Assignment>| {
            let mut keys: Vec<Vec<(Var, Atom)>> = sols
                .drain(..)
                .map(|a| {
                    let mut pairs: Vec<(Var, Atom)> = a.into_iter().collect();
                    pairs.sort();
                    pairs
                })
                .collect();
            keys.sort();
            keys
        };
        let seq = normalize(HomProblem::new(&atoms, &db).with_threads(1).solutions().unwrap());
        let par = normalize(HomProblem::new(&atoms, &db).with_threads(4).solutions().unwrap());
        assert!(!seq.is_empty());
        assert_eq!(seq, par);
    }

    #[test]
    fn parallel_first_respects_interrupt_budget() {
        // A hopeless instance under a small interrupt budget: the parallel
        // path must return Interrupted, never a verdict.
        let tuples: Vec<Vec<i64>> = (0..4000).map(|i| vec![i, i + 1]).collect();
        let refs: Vec<&[i64]> = tuples.iter().map(|t| t.as_slice()).collect();
        let db = Database::from_ints(&[("R", &refs)]);
        let atoms = vec![
            QueryAtom::new("R", vec![v("x"), v("y")]),
            QueryAtom::new("R", vec![v("y"), v("z")]),
            QueryAtom::new("R", vec![v("z"), v("x")]),
        ];
        // Big enough to outlast the sequential trial's 4096-probe cap, so
        // the *parallel* phase is what gets interrupted.
        let _guard = interrupt::install(interrupt::Budget { deadline: None, steps: Some(6000) });
        let outcome = HomProblem::new(&atoms, &db).with_threads(4).first();
        assert!(matches!(outcome, Err(SearchOutcome::Interrupted)), "got {outcome:?}");
        // Sticky on the parent thread after rejoin.
        assert!(interrupt::probe().is_err());
    }
}
