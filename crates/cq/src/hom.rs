//! The backtracking homomorphism engine.
//!
//! Everything NP-complete in this reproduction — classical containment \[11\],
//! simulation and strong simulation (§5–6 of the paper), aggregate
//! equivalence (§7) — bottoms out in one search problem: find an assignment
//! of query variables to database atoms under which every body atom becomes
//! a fact of the database, subject to some variables being pre-bound.
//!
//! The engine uses static greedy atom ordering (most-bound-variables first,
//! smallest relation as tie-break) and early consistency pruning. It can
//! report the first solution, enumerate all solutions through a callback,
//! or count solutions, and carries an optional step budget so callers with
//! worst-case-exponential workloads (the hard instances of E2–E4) can bail
//! out deterministically.

use std::collections::{HashMap, HashSet};
use std::ops::ControlFlow;

use co_object::Atom;

use crate::db::{Database, Relation};
use crate::query::{QueryAtom, Term};
use crate::schema::Var;

/// A variable assignment produced by the engine.
pub type Assignment = HashMap<Var, Atom>;

/// Outcome of a bounded search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SearchOutcome {
    /// Search space exhausted (all solutions were visited).
    Exhausted,
    /// The callback requested an early stop.
    Stopped,
    /// The step budget ran out before the search finished.
    BudgetExceeded,
}

/// A homomorphism search problem: match `atoms` into `db`, extending
/// `fixed`.
pub struct HomProblem<'a> {
    atoms: &'a [QueryAtom],
    db: &'a Database,
    fixed: Assignment,
    budget: Option<u64>,
    forbidden: HashMap<Var, HashSet<Atom>>,
}

impl<'a> HomProblem<'a> {
    /// Creates a problem with no pre-bound variables.
    pub fn new(atoms: &'a [QueryAtom], db: &'a Database) -> HomProblem<'a> {
        HomProblem { atoms, db, fixed: Assignment::new(), budget: None, forbidden: HashMap::new() }
    }

    /// Pre-binds variables (e.g. head variables for containment checks).
    pub fn with_fixed(mut self, fixed: Assignment) -> HomProblem<'a> {
        self.fixed = fixed;
        self
    }

    /// Sets a step budget; each candidate-tuple probe costs one step.
    pub fn with_budget(mut self, steps: u64) -> HomProblem<'a> {
        self.budget = Some(steps);
        self
    }

    /// Forbids specific values for specific variables. Checked during the
    /// backtracking (not as a post-filter), so a forbidden binding prunes
    /// its whole subtree — the simulation procedures' index-avoidance
    /// condition relies on this for tractability on easy instances.
    pub fn with_forbidden(mut self, forbidden: HashMap<Var, HashSet<Atom>>) -> HomProblem<'a> {
        self.forbidden = forbidden;
        self
    }

    /// Finds the first solution, if any.
    ///
    /// Returns `Err(BudgetExceeded)` only when the budget ran out *before*
    /// a solution was found.
    pub fn first(self) -> Result<Option<Assignment>, SearchOutcome> {
        let mut found = None;
        let outcome = self.for_each(|a| {
            found = Some(a.clone());
            ControlFlow::Break(())
        });
        match (found, outcome) {
            (Some(a), _) => Ok(Some(a)),
            (None, SearchOutcome::BudgetExceeded) => Err(SearchOutcome::BudgetExceeded),
            (None, _) => Ok(None),
        }
    }

    /// Whether any solution exists (budget-less convenience).
    pub fn exists(self) -> bool {
        matches!(self.first(), Ok(Some(_)))
    }

    /// Enumerates solutions through `visit`; stops early on `Break`.
    pub fn for_each(self, mut visit: impl FnMut(&Assignment) -> ControlFlow<()>) -> SearchOutcome {
        // Unsatisfiable fast path: an atom over an empty relation.
        for atom in self.atoms {
            match self.db.relation_ref(atom.rel) {
                Some(r) if !r.is_empty() => {}
                _ => return SearchOutcome::Exhausted,
            }
        }
        // Fixed bindings themselves must respect the forbidden sets.
        for (v, a) in &self.fixed {
            if self.forbidden.get(v).is_some_and(|set| set.contains(a)) {
                return SearchOutcome::Exhausted;
            }
        }
        let order = plan_order(self.atoms, &self.fixed, self.db);
        let mut state = Search {
            atoms: self.atoms,
            order: &order,
            db: self.db,
            binding: self.fixed,
            steps_left: self.budget,
            forbidden: &self.forbidden,
            visit: &mut visit,
        };
        state.run(0)
    }
}

struct Search<'a, 'f> {
    atoms: &'a [QueryAtom],
    order: &'a [usize],
    db: &'a Database,
    binding: Assignment,
    steps_left: Option<u64>,
    forbidden: &'a HashMap<Var, HashSet<Atom>>,
    visit: &'f mut dyn FnMut(&Assignment) -> ControlFlow<()>,
}

impl Search<'_, '_> {
    fn run(&mut self, depth: usize) -> SearchOutcome {
        if depth == self.order.len() {
            return match (self.visit)(&self.binding) {
                ControlFlow::Break(()) => SearchOutcome::Stopped,
                ControlFlow::Continue(()) => SearchOutcome::Exhausted,
            };
        }
        let atom = &self.atoms[self.order[depth]];
        let rel = self.db.relation_ref(atom.rel).expect("empty-relation fast path already handled");
        // Deterministic iteration for reproducible search behaviour.
        for tuple in rel.iter_sorted() {
            if let Some(budget) = &mut self.steps_left {
                if *budget == 0 {
                    return SearchOutcome::BudgetExceeded;
                }
                *budget -= 1;
            }
            if let Some(newly_bound) = self.try_bind(atom, tuple) {
                let outcome = self.run(depth + 1);
                for v in newly_bound {
                    self.binding.remove(&v);
                }
                match outcome {
                    SearchOutcome::Exhausted => {}
                    stop => return stop,
                }
            }
        }
        SearchOutcome::Exhausted
    }

    /// Attempts to bind `atom`'s arguments against `tuple`; on success
    /// returns the variables newly bound (for undo), on conflict returns
    /// `None` with no change.
    fn try_bind(&mut self, atom: &QueryAtom, tuple: &[Atom]) -> Option<Vec<Var>> {
        debug_assert_eq!(atom.args.len(), tuple.len(), "arity checked by caller");
        let mut newly = Vec::new();
        for (term, &value) in atom.args.iter().zip(tuple.iter()) {
            let ok = match term {
                Term::Const(c) => *c == value,
                Term::Var(v) => match self.binding.get(v) {
                    Some(&bound) => bound == value,
                    None => {
                        if self.forbidden.get(v).is_some_and(|set| set.contains(&value)) {
                            false
                        } else {
                            self.binding.insert(*v, value);
                            newly.push(*v);
                            true
                        }
                    }
                },
            };
            if !ok {
                for v in newly {
                    self.binding.remove(&v);
                }
                return None;
            }
        }
        Some(newly)
    }
}

/// Greedy atom ordering: repeatedly pick the atom with the most already-
/// bound argument positions, breaking ties by smaller relation, then by
/// original position (for determinism).
fn plan_order(atoms: &[QueryAtom], fixed: &Assignment, db: &Database) -> Vec<usize> {
    let mut bound: std::collections::HashSet<Var> = fixed.keys().copied().collect();
    let mut remaining: Vec<usize> = (0..atoms.len()).collect();
    let mut order = Vec::with_capacity(atoms.len());
    while !remaining.is_empty() {
        let best = remaining
            .iter()
            .enumerate()
            .min_by_key(|(_, &i)| {
                let atom = &atoms[i];
                let unbound = atom
                    .args
                    .iter()
                    .filter(|t| matches!(t, Term::Var(v) if !bound.contains(v)))
                    .count();
                let size = db.relation_ref(atom.rel).map_or(0, Relation::len);
                (unbound, size, i)
            })
            .map(|(pos, _)| pos)
            .expect("remaining is non-empty");
        let i = remaining.swap_remove(best);
        bound.extend(atoms[i].vars());
        order.push(i);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Term;

    fn v(name: &str) -> Term {
        Term::var(name)
    }

    #[test]
    fn finds_simple_match() {
        let db = Database::from_ints(&[("R", &[&[1, 2], &[2, 3]])]);
        let atoms = vec![
            QueryAtom::new("R", vec![v("x"), v("y")]),
            QueryAtom::new("R", vec![v("y"), v("z")]),
        ];
        let sol = HomProblem::new(&atoms, &db).first().unwrap().unwrap();
        assert_eq!(sol[&Var::new("x")], Atom::int(1));
        assert_eq!(sol[&Var::new("y")], Atom::int(2));
        assert_eq!(sol[&Var::new("z")], Atom::int(3));
    }

    use crate::schema::Var;

    #[test]
    fn respects_fixed_bindings() {
        let db = Database::from_ints(&[("R", &[&[1, 2], &[2, 3]])]);
        let atoms = vec![QueryAtom::new("R", vec![v("x"), v("y")])];
        let mut fixed = Assignment::new();
        fixed.insert(Var::new("x"), Atom::int(2));
        let sol = HomProblem::new(&atoms, &db).with_fixed(fixed).first().unwrap().unwrap();
        assert_eq!(sol[&Var::new("y")], Atom::int(3));
    }

    #[test]
    fn detects_no_match() {
        let db = Database::from_ints(&[("R", &[&[1, 2]])]);
        let atoms = vec![
            QueryAtom::new("R", vec![v("x"), v("x")]), // needs a loop
        ];
        assert!(!HomProblem::new(&atoms, &db).exists());
    }

    #[test]
    fn empty_relation_short_circuits() {
        let db = Database::from_ints(&[("R", &[&[1, 2]])]);
        let atoms = vec![QueryAtom::new("S", vec![v("x")])];
        assert!(!HomProblem::new(&atoms, &db).exists());
    }

    #[test]
    fn enumerates_all_solutions() {
        let db = Database::from_ints(&[("R", &[&[1], &[2], &[3]])]);
        let atoms = vec![QueryAtom::new("R", vec![v("x")])];
        let mut seen = Vec::new();
        let outcome = HomProblem::new(&atoms, &db).for_each(|a| {
            seen.push(a[&Var::new("x")]);
            ControlFlow::Continue(())
        });
        assert_eq!(outcome, SearchOutcome::Exhausted);
        seen.sort();
        assert_eq!(seen, vec![Atom::int(1), Atom::int(2), Atom::int(3)]);
    }

    #[test]
    fn budget_is_enforced() {
        // Cross product with no solution: x must equal y via S, absent.
        let tuples: Vec<Vec<i64>> = (0..50).map(|i| vec![i]).collect();
        let refs: Vec<&[i64]> = tuples.iter().map(|t| t.as_slice()).collect();
        let db = Database::from_ints(&[("R", &refs)]);
        let atoms = vec![
            QueryAtom::new("R", vec![v("a")]),
            QueryAtom::new("R", vec![v("b")]),
            QueryAtom::new("S", vec![v("a"), v("b")]),
        ];
        // S is empty → short-circuit even with a tiny budget.
        assert!(!HomProblem::new(&atoms, &db).with_budget(1).exists());

        // Without the empty relation, a tiny budget must trip.
        let atoms2 = vec![
            QueryAtom::new("R", vec![v("a")]),
            QueryAtom::new("R", vec![v("b")]),
            QueryAtom::new("R", vec![v("c")]),
        ];
        let mut count = 0usize;
        let outcome = HomProblem::new(&atoms2, &db).with_budget(10).for_each(|_| {
            count += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(outcome, SearchOutcome::BudgetExceeded);
    }

    #[test]
    fn constants_filter_candidates() {
        let db = Database::from_ints(&[("R", &[&[1, 2], &[1, 3], &[4, 5]])]);
        let atoms = vec![QueryAtom::new("R", vec![Term::int(1), v("y")])];
        let mut ys = Vec::new();
        HomProblem::new(&atoms, &db).for_each(|a| {
            ys.push(a[&Var::new("y")]);
            ControlFlow::Continue(())
        });
        ys.sort();
        assert_eq!(ys, vec![Atom::int(2), Atom::int(3)]);
    }
}
