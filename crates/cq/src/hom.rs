//! The backtracking homomorphism engine.
//!
//! Everything NP-complete in this reproduction — classical containment \[11\],
//! simulation and strong simulation (§5–6 of the paper), aggregate
//! equivalence (§7) — bottoms out in one search problem: find an assignment
//! of query variables to database atoms under which every body atom becomes
//! a fact of the database, subject to some variables being pre-bound.
//!
//! # Candidate generation (DESIGN.md §9)
//!
//! The engine runs in one of two [`CandidateStrategy`] modes:
//!
//! * [`CandidateStrategy::Indexed`] (the default): at every search node the
//!   engine picks the remaining atom with the **fewest live candidates**
//!   (MRV — minimum remaining values), where candidates come from the
//!   relation's lazily-built hash index on the atom's currently-bound
//!   argument positions ([`crate::db::Relation::pattern_index`]). Only
//!   tuples that agree with the partial assignment on the bound positions
//!   are ever probed.
//! * [`CandidateStrategy::LinearScan`]: the original kernel — a static
//!   greedy atom order fixed up front ([`plan_order`]) and a full scan of
//!   each atom's relation at every depth. Kept as the differential-testing
//!   oracle and as the baseline the `co-bench perf` harness measures
//!   speedups against.
//!
//! Both strategies visit exactly the same solution set, respect the same
//! `forbidden` semantics, and charge the step budget identically: **one
//! step per candidate-tuple probe**. (Indexed search probes fewer
//! candidates, so a budget generous enough for the linear scan is always
//! generous enough for the indexed search on the same instance.)
//!
//! The engine can report the first solution, enumerate all solutions
//! through a callback, or count solutions, and carries an optional step
//! budget so callers with worst-case-exponential workloads (the hard
//! instances of E2–E4) can bail out deterministically.

use std::collections::{HashMap, HashSet};
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use co_object::{interrupt, Atom};
use co_trace::kernel::{self, Metric};

use crate::db::{Database, PatternIndex, PositionMask, Relation, Tuple};
use crate::query::{QueryAtom, Term};
use crate::schema::Var;

/// A variable assignment produced by the engine.
pub type Assignment = HashMap<Var, Atom>;

/// Outcome of a bounded search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SearchOutcome {
    /// Search space exhausted (all solutions were visited).
    Exhausted,
    /// The callback requested an early stop.
    Stopped,
    /// The step budget ran out before the search finished.
    BudgetExceeded,
    /// The thread-local [`co_object::interrupt`] budget (deadline or step
    /// count installed by a serving layer) expired mid-search. Unlike
    /// [`SearchOutcome::BudgetExceeded`] this is sticky for the whole
    /// request: every subsequent probe on the thread fails too, so callers
    /// must abandon the decision rather than retry.
    Interrupted,
}

/// How the engine generates candidate tuples for an atom.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CandidateStrategy {
    /// Hash-index candidates on bound positions + runtime MRV atom
    /// selection (the fast path, default).
    Indexed,
    /// Full-relation scans in a static greedy atom order (the original
    /// kernel; oracle and benchmark baseline).
    LinearScan,
}

/// Process-wide default strategy, overridable per problem with
/// [`HomProblem::with_strategy`]. Exists so the `co-bench perf` harness can
/// A/B the *entire* decision stack (containment, simulation, COQL, service)
/// without threading a parameter through every layer.
static DEFAULT_STRATEGY: AtomicU8 = AtomicU8::new(0);

/// Sets the process-wide default [`CandidateStrategy`].
///
/// Intended for benchmarking and differential testing only; production
/// callers should leave the default ([`CandidateStrategy::Indexed`]) alone.
pub fn set_default_strategy(s: CandidateStrategy) {
    DEFAULT_STRATEGY.store(s as u8, Ordering::Relaxed);
}

/// The current process-wide default [`CandidateStrategy`].
pub fn default_strategy() -> CandidateStrategy {
    match DEFAULT_STRATEGY.load(Ordering::Relaxed) {
        0 => CandidateStrategy::Indexed,
        _ => CandidateStrategy::LinearScan,
    }
}

/// A homomorphism search problem: match `atoms` into `db`, extending
/// `fixed`.
pub struct HomProblem<'a> {
    atoms: &'a [QueryAtom],
    db: &'a Database,
    fixed: Assignment,
    budget: Option<u64>,
    forbidden: HashMap<Var, HashSet<Atom>>,
    strategy: Option<CandidateStrategy>,
}

impl<'a> HomProblem<'a> {
    /// Creates a problem with no pre-bound variables.
    pub fn new(atoms: &'a [QueryAtom], db: &'a Database) -> HomProblem<'a> {
        HomProblem {
            atoms,
            db,
            fixed: Assignment::new(),
            budget: None,
            forbidden: HashMap::new(),
            strategy: None,
        }
    }

    /// Pre-binds variables (e.g. head variables for containment checks).
    pub fn with_fixed(mut self, fixed: Assignment) -> HomProblem<'a> {
        self.fixed = fixed;
        self
    }

    /// Sets a step budget; each candidate-tuple probe costs one step.
    pub fn with_budget(mut self, steps: u64) -> HomProblem<'a> {
        self.budget = Some(steps);
        self
    }

    /// Forbids specific values for specific variables. Checked during the
    /// backtracking (not as a post-filter), so a forbidden binding prunes
    /// its whole subtree — the simulation procedures' index-avoidance
    /// condition relies on this for tractability on easy instances.
    pub fn with_forbidden(mut self, forbidden: HashMap<Var, HashSet<Atom>>) -> HomProblem<'a> {
        self.forbidden = forbidden;
        self
    }

    /// Overrides the candidate-generation strategy for this problem (the
    /// default is the process-wide [`default_strategy`]).
    pub fn with_strategy(mut self, strategy: CandidateStrategy) -> HomProblem<'a> {
        self.strategy = Some(strategy);
        self
    }

    /// Finds the first solution, if any.
    ///
    /// Returns `Err(BudgetExceeded)`/`Err(Interrupted)` only when the
    /// budget ran out *before* a solution was found.
    pub fn first(self) -> Result<Option<Assignment>, SearchOutcome> {
        let mut found = None;
        let outcome = self.for_each(|a| {
            found = Some(a.clone());
            ControlFlow::Break(())
        });
        match (found, outcome) {
            (Some(a), _) => Ok(Some(a)),
            (None, out @ (SearchOutcome::BudgetExceeded | SearchOutcome::Interrupted)) => Err(out),
            (None, _) => Ok(None),
        }
    }

    /// Whether any solution exists (budget-less convenience).
    pub fn exists(self) -> bool {
        matches!(self.first(), Ok(Some(_)))
    }

    /// Enumerates solutions through `visit`; stops early on `Break`.
    pub fn for_each(self, mut visit: impl FnMut(&Assignment) -> ControlFlow<()>) -> SearchOutcome {
        // Unsatisfiable fast path: an atom over an empty relation.
        for atom in self.atoms {
            match self.db.relation_ref(atom.rel) {
                Some(r) if !r.is_empty() => {}
                _ => return SearchOutcome::Exhausted,
            }
        }
        // Fixed bindings themselves must respect the forbidden sets.
        for (v, a) in &self.fixed {
            if self.forbidden.get(v).is_some_and(|set| set.contains(a)) {
                return SearchOutcome::Exhausted;
            }
        }
        let strategy = self.strategy.unwrap_or_else(default_strategy);
        let rels: Vec<&Relation> = self
            .atoms
            .iter()
            .map(|a| self.db.relation_ref(a.rel).expect("empty-relation fast path already handled"))
            .collect();
        match strategy {
            CandidateStrategy::Indexed => {
                let mut state = IndexedSearch {
                    atoms: self.atoms,
                    rels: &rels,
                    snapshots: rels.iter().map(|r| r.snapshot()).collect(),
                    index_cache: vec![HashMap::new(); self.atoms.len()],
                    scratch: Vec::new(),
                    remaining: (0..self.atoms.len()).collect(),
                    binding: self.fixed,
                    steps_left: self.budget,
                    forbidden: &self.forbidden,
                    visit: &mut visit,
                };
                state.run()
            }
            CandidateStrategy::LinearScan => {
                let order = plan_order(self.atoms, &self.fixed, self.db);
                let mut state = LinearSearch {
                    atoms: self.atoms,
                    order: &order,
                    snapshots: rels.iter().map(|r| r.snapshot()).collect(),
                    binding: self.fixed,
                    steps_left: self.budget,
                    forbidden: &self.forbidden,
                    visit: &mut visit,
                };
                state.run(0)
            }
        }
    }
}

/// Shared binding/undo logic: attempts to bind `atom`'s arguments against
/// `tuple` under `binding`; on success returns the variables newly bound
/// (for undo), on conflict returns `None` with `binding` unchanged.
fn try_bind(
    binding: &mut Assignment,
    forbidden: &HashMap<Var, HashSet<Atom>>,
    atom: &QueryAtom,
    tuple: &[Atom],
) -> Option<Vec<Var>> {
    debug_assert_eq!(atom.args.len(), tuple.len(), "arity checked by caller");
    let mut newly = Vec::new();
    for (term, &value) in atom.args.iter().zip(tuple.iter()) {
        let ok = match term {
            Term::Const(c) => *c == value,
            Term::Var(v) => match binding.get(v) {
                Some(&bound) => bound == value,
                None => {
                    if forbidden.get(v).is_some_and(|set| set.contains(&value)) {
                        false
                    } else {
                        binding.insert(*v, value);
                        newly.push(*v);
                        true
                    }
                }
            },
        };
        if !ok {
            for v in newly {
                binding.remove(&v);
            }
            return None;
        }
    }
    Some(newly)
}

/// Fills `key` with `atom`'s determined argument values (constants and
/// bound variables) in column order and returns the bound-position mask.
/// Positions ≥ 64 never enter the mask (they stay consistency-checked by
/// [`try_bind`]). Takes the buffer by `&mut` so the hot MRV loop reuses
/// one allocation across every (node, atom) probe.
fn bound_pattern(atom: &QueryAtom, binding: &Assignment, key: &mut Vec<Atom>) -> PositionMask {
    key.clear();
    let mut mask: PositionMask = 0;
    for (pos, term) in atom.args.iter().enumerate() {
        if pos >= 64 {
            break;
        }
        let value = match term {
            Term::Const(c) => Some(*c),
            Term::Var(v) => binding.get(v).copied(),
        };
        if let Some(a) = value {
            mask |= 1 << pos;
            key.push(a);
        }
    }
    mask
}

/// The indexed engine: dynamic MRV atom selection over index-generated
/// candidate lists.
struct IndexedSearch<'a, 'f> {
    atoms: &'a [QueryAtom],
    rels: &'a [&'a Relation],
    snapshots: Vec<Arc<Vec<Tuple>>>,
    /// Per-atom memo of the relation's pattern indexes, so the MRV loop
    /// pays one lock-free local hash probe instead of a `RwLock` round
    /// trip through the relation per candidate count.
    index_cache: Vec<HashMap<PositionMask, Arc<PatternIndex>>>,
    /// Reusable key buffer for [`bound_pattern`].
    scratch: Vec<Atom>,
    /// Indices of atoms not yet matched.
    remaining: Vec<usize>,
    binding: Assignment,
    steps_left: Option<u64>,
    forbidden: &'a HashMap<Var, HashSet<Atom>>,
    visit: &'f mut dyn FnMut(&Assignment) -> ControlFlow<()>,
}

impl IndexedSearch<'_, '_> {
    /// The cached candidate count for atom `i` under the current binding.
    /// Leaves the matching key in `self.scratch`.
    fn candidate_count(&mut self, i: usize) -> (usize, PositionMask) {
        let mask = bound_pattern(&self.atoms[i], &self.binding, &mut self.scratch);
        if mask == 0 {
            return (self.snapshots[i].len(), mask);
        }
        let rel = self.rels[i];
        let idx = match self.index_cache[i].entry(mask) {
            std::collections::hash_map::Entry::Occupied(e) => {
                kernel::bump(Metric::HomIndexHits);
                e.into_mut()
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                kernel::bump(Metric::HomIndexBuilds);
                v.insert(rel.pattern_index(mask))
            }
        };
        (idx.candidate_count(&self.scratch), mask)
    }

    fn run(&mut self) -> SearchOutcome {
        if self.remaining.is_empty() {
            kernel::bump(Metric::HomSolutions);
            return match (self.visit)(&self.binding) {
                ControlFlow::Break(()) => SearchOutcome::Stopped,
                ControlFlow::Continue(()) => SearchOutcome::Exhausted,
            };
        }
        // MRV: the remaining atom with the fewest index candidates under
        // the current binding; ties break on original position for
        // determinism. `pick` is a position in `self.remaining`. A zero
        // count is a proven dead end — no atom choice can rescue the node,
        // so the scan stops immediately (forward-checking-style pruning;
        // no candidates are probed either way, so budget semantics and the
        // solution set are unaffected).
        let mut pick = 0;
        let mut pick_atom = usize::MAX;
        let mut pick_mask: PositionMask = 0;
        let mut best = usize::MAX;
        for slot in 0..self.remaining.len() {
            let i = self.remaining[slot];
            let (count, mask) = self.candidate_count(i);
            if count < best || (count == best && i < pick_atom) {
                best = count;
                pick = slot;
                pick_atom = i;
                pick_mask = mask;
            }
            if best == 0 {
                break;
            }
        }
        let i = self.remaining.swap_remove(pick);
        let snapshot = Arc::clone(&self.snapshots[i]);
        let atom = &self.atoms[i];
        let index = if pick_mask == 0 {
            None
        } else {
            // Re-derive the key for the picked atom (the scratch buffer may
            // hold a later atom's key) and fetch the memoized index.
            bound_pattern(atom, &self.binding, &mut self.scratch);
            Some(Arc::clone(&self.index_cache[i][&pick_mask]))
        };
        let outcome = (|| {
            let probe = |this: &mut Self, tuple: &[Atom]| -> Result<(), SearchOutcome> {
                kernel::bump(Metric::HomProbes);
                if let Some(budget) = &mut this.steps_left {
                    if *budget == 0 {
                        return Err(SearchOutcome::BudgetExceeded);
                    }
                    *budget -= 1;
                }
                if interrupt::probe().is_err() {
                    return Err(SearchOutcome::Interrupted);
                }
                if let Some(newly) = try_bind(&mut this.binding, this.forbidden, atom, tuple) {
                    let outcome = this.run();
                    for v in newly {
                        this.binding.remove(&v);
                    }
                    match outcome {
                        SearchOutcome::Exhausted => {}
                        stop => return Err(stop),
                    }
                }
                Ok(())
            };
            match &index {
                Some(idx) => {
                    for &id in idx.candidates(&self.scratch) {
                        probe(self, &snapshot[id as usize])?;
                    }
                }
                None => {
                    for tuple in snapshot.iter() {
                        probe(self, tuple)?;
                    }
                }
            }
            Ok(())
        })();
        // Undo the atom selection on every path (including early stops).
        self.remaining.push(i);
        let last = self.remaining.len() - 1;
        self.remaining.swap(pick, last);
        match outcome {
            Ok(()) => {
                // Candidate list exhausted without an early stop below this
                // node: the search backtracks past the MRV pick.
                kernel::bump(Metric::HomBacktracks);
                SearchOutcome::Exhausted
            }
            Err(stop) => stop,
        }
    }
}

/// The original kernel: static plan, full-relation scans. Retained verbatim
/// as the oracle for differential tests and the `co-bench perf` baseline.
struct LinearSearch<'a, 'f> {
    atoms: &'a [QueryAtom],
    order: &'a [usize],
    snapshots: Vec<Arc<Vec<Tuple>>>,
    binding: Assignment,
    steps_left: Option<u64>,
    forbidden: &'a HashMap<Var, HashSet<Atom>>,
    visit: &'f mut dyn FnMut(&Assignment) -> ControlFlow<()>,
}

impl LinearSearch<'_, '_> {
    fn run(&mut self, depth: usize) -> SearchOutcome {
        if depth == self.order.len() {
            kernel::bump(Metric::HomSolutions);
            return match (self.visit)(&self.binding) {
                ControlFlow::Break(()) => SearchOutcome::Stopped,
                ControlFlow::Continue(()) => SearchOutcome::Exhausted,
            };
        }
        let i = self.order[depth];
        let atom = &self.atoms[i];
        let snapshot = Arc::clone(&self.snapshots[i]);
        // Deterministic iteration for reproducible search behaviour.
        for tuple in snapshot.iter() {
            kernel::bump(Metric::HomProbes);
            if let Some(budget) = &mut self.steps_left {
                if *budget == 0 {
                    return SearchOutcome::BudgetExceeded;
                }
                *budget -= 1;
            }
            if interrupt::probe().is_err() {
                return SearchOutcome::Interrupted;
            }
            if let Some(newly_bound) = try_bind(&mut self.binding, self.forbidden, atom, tuple) {
                let outcome = self.run(depth + 1);
                for v in newly_bound {
                    self.binding.remove(&v);
                }
                match outcome {
                    SearchOutcome::Exhausted => {}
                    stop => return stop,
                }
            }
        }
        kernel::bump(Metric::HomBacktracks);
        SearchOutcome::Exhausted
    }
}

/// Greedy static atom ordering: repeatedly pick the atom with the most
/// already-bound argument positions, breaking ties by the smaller
/// *constant-filtered* candidate count, then by original position (for
/// determinism).
///
/// Candidate counts come from each relation's hash index on the atom's
/// constant positions, so `R(1, y)` is costed by the tuples matching `1` —
/// not all of `R`. Unbound-variable counts are maintained incrementally
/// through a variable → atoms occurrence map instead of being recomputed
/// with a full `atoms × arity` rescan per selection round.
fn plan_order(atoms: &[QueryAtom], fixed: &Assignment, db: &Database) -> Vec<usize> {
    let mut bound: HashSet<Var> = fixed.keys().copied().collect();

    // Constant-filtered base size per atom (pre-filtering satellite): the
    // number of tuples matching the atom's constant arguments.
    let sizes: Vec<usize> = atoms
        .iter()
        .map(|atom| {
            let Some(rel) = db.relation_ref(atom.rel) else { return 0 };
            let consts: Vec<(usize, Atom)> = atom
                .args
                .iter()
                .enumerate()
                .filter_map(|(pos, t)| t.as_const().map(|c| (pos, c)))
                .filter(|(pos, _)| *pos < 64)
                .collect();
            if consts.is_empty() {
                return rel.len();
            }
            let mask: PositionMask = consts.iter().fold(0, |m, (pos, _)| m | 1 << pos);
            let key: Vec<Atom> = consts.iter().map(|(_, c)| *c).collect();
            rel.pattern_index(mask).candidate_count(&key)
        })
        .collect();

    // Incremental unbound counts: occurrences[v] lists (atom, multiplicity).
    let mut unbound: Vec<usize> = vec![0; atoms.len()];
    let mut occurrences: HashMap<Var, Vec<usize>> = HashMap::new();
    for (i, atom) in atoms.iter().enumerate() {
        for v in atom.vars() {
            if !bound.contains(&v) {
                unbound[i] += 1;
                occurrences.entry(v).or_default().push(i);
            }
        }
    }

    let mut remaining: Vec<usize> = (0..atoms.len()).collect();
    let mut order = Vec::with_capacity(atoms.len());
    while !remaining.is_empty() {
        let best = remaining
            .iter()
            .enumerate()
            .min_by_key(|(_, &i)| (unbound[i], sizes[i], i))
            .map(|(pos, _)| pos)
            .expect("remaining is non-empty");
        let i = remaining.swap_remove(best);
        for v in atoms[i].vars() {
            if bound.insert(v) {
                for &j in occurrences.get(&v).into_iter().flatten() {
                    unbound[j] -= 1;
                }
            }
        }
        order.push(i);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Term;

    fn v(name: &str) -> Term {
        Term::var(name)
    }

    /// Runs the same closure under both strategies and asserts identical
    /// results.
    fn both<R: PartialEq + std::fmt::Debug>(f: impl Fn(CandidateStrategy) -> R) -> R {
        let indexed = f(CandidateStrategy::Indexed);
        let linear = f(CandidateStrategy::LinearScan);
        assert_eq!(indexed, linear, "strategies disagree");
        indexed
    }

    #[test]
    fn finds_simple_match() {
        let db = Database::from_ints(&[("R", &[&[1, 2], &[2, 3]])]);
        let atoms = vec![
            QueryAtom::new("R", vec![v("x"), v("y")]),
            QueryAtom::new("R", vec![v("y"), v("z")]),
        ];
        let sol = HomProblem::new(&atoms, &db).first().unwrap().unwrap();
        assert_eq!(sol[&Var::new("x")], Atom::int(1));
        assert_eq!(sol[&Var::new("y")], Atom::int(2));
        assert_eq!(sol[&Var::new("z")], Atom::int(3));
    }

    use crate::schema::Var;

    #[test]
    fn respects_fixed_bindings() {
        let db = Database::from_ints(&[("R", &[&[1, 2], &[2, 3]])]);
        let atoms = vec![QueryAtom::new("R", vec![v("x"), v("y")])];
        let mut fixed = Assignment::new();
        fixed.insert(Var::new("x"), Atom::int(2));
        let sol = HomProblem::new(&atoms, &db).with_fixed(fixed).first().unwrap().unwrap();
        assert_eq!(sol[&Var::new("y")], Atom::int(3));
    }

    #[test]
    fn detects_no_match() {
        let db = Database::from_ints(&[("R", &[&[1, 2]])]);
        let atoms = vec![
            QueryAtom::new("R", vec![v("x"), v("x")]), // needs a loop
        ];
        assert!(!both(|s| HomProblem::new(&atoms, &db).with_strategy(s).exists()));
    }

    #[test]
    fn empty_relation_short_circuits() {
        let db = Database::from_ints(&[("R", &[&[1, 2]])]);
        let atoms = vec![QueryAtom::new("S", vec![v("x")])];
        assert!(!both(|s| HomProblem::new(&atoms, &db).with_strategy(s).exists()));
    }

    #[test]
    fn enumerates_all_solutions() {
        let db = Database::from_ints(&[("R", &[&[1], &[2], &[3]])]);
        let atoms = vec![QueryAtom::new("R", vec![v("x")])];
        let seen = both(|s| {
            let mut seen = Vec::new();
            let outcome = HomProblem::new(&atoms, &db).with_strategy(s).for_each(|a| {
                seen.push(a[&Var::new("x")]);
                ControlFlow::Continue(())
            });
            assert_eq!(outcome, SearchOutcome::Exhausted);
            seen.sort();
            seen
        });
        assert_eq!(seen, vec![Atom::int(1), Atom::int(2), Atom::int(3)]);
    }

    #[test]
    fn budget_is_enforced() {
        // Cross product with no solution: x must equal y via S, absent.
        let tuples: Vec<Vec<i64>> = (0..50).map(|i| vec![i]).collect();
        let refs: Vec<&[i64]> = tuples.iter().map(|t| t.as_slice()).collect();
        let db = Database::from_ints(&[("R", &refs)]);
        let atoms = vec![
            QueryAtom::new("R", vec![v("a")]),
            QueryAtom::new("R", vec![v("b")]),
            QueryAtom::new("S", vec![v("a"), v("b")]),
        ];
        // S is empty → short-circuit even with a tiny budget.
        assert!(!both(|s| HomProblem::new(&atoms, &db).with_strategy(s).with_budget(1).exists()));

        // Without the empty relation, a tiny budget must trip: R has 50
        // tuples, so even indexed search probes > 10 candidates for the
        // fully-unconstrained cross product.
        let atoms2 = vec![
            QueryAtom::new("R", vec![v("a")]),
            QueryAtom::new("R", vec![v("b")]),
            QueryAtom::new("R", vec![v("c")]),
        ];
        both(|s| {
            let outcome = HomProblem::new(&atoms2, &db)
                .with_strategy(s)
                .with_budget(10)
                .for_each(|_| ControlFlow::Continue(()));
            assert_eq!(outcome, SearchOutcome::BudgetExceeded);
        });
    }

    #[test]
    fn interrupt_budget_stops_both_engines() {
        let tuples: Vec<Vec<i64>> = (0..50).map(|i| vec![i]).collect();
        let refs: Vec<&[i64]> = tuples.iter().map(|t| t.as_slice()).collect();
        let db = Database::from_ints(&[("R", &refs)]);
        let atoms = vec![
            QueryAtom::new("R", vec![v("a")]),
            QueryAtom::new("R", vec![v("b")]),
            QueryAtom::new("R", vec![v("c")]),
        ];
        both(|s| {
            let _guard = interrupt::install(interrupt::Budget { deadline: None, steps: Some(10) });
            let outcome = HomProblem::new(&atoms, &db)
                .with_strategy(s)
                .for_each(|_| ControlFlow::Continue(()));
            assert_eq!(outcome, SearchOutcome::Interrupted);
            assert!(matches!(
                HomProblem::new(&atoms, &db).with_strategy(s).first(),
                Err(SearchOutcome::Interrupted)
            ));
        });
    }

    #[test]
    fn constants_filter_candidates() {
        let db = Database::from_ints(&[("R", &[&[1, 2], &[1, 3], &[4, 5]])]);
        let atoms = vec![QueryAtom::new("R", vec![Term::int(1), v("y")])];
        let ys = both(|s| {
            let mut ys = Vec::new();
            HomProblem::new(&atoms, &db).with_strategy(s).for_each(|a| {
                ys.push(a[&Var::new("y")]);
                ControlFlow::Continue(())
            });
            ys.sort();
            ys
        });
        assert_eq!(ys, vec![Atom::int(2), Atom::int(3)]);
    }

    #[test]
    fn indexed_search_probes_fewer_candidates() {
        // A star join where the indexed engine touches only the matching
        // adjacency bucket: a budget of 4 suffices for the indexed engine
        // but trips the linear scan.
        let tuples: Vec<Vec<i64>> = (0..100).map(|i| vec![i / 10, i]).collect();
        let refs: Vec<&[i64]> = tuples.iter().map(|t| t.as_slice()).collect();
        let db = Database::from_ints(&[("R", &refs), ("S", &[&[9]])]);
        let atoms =
            vec![QueryAtom::new("S", vec![v("x")]), QueryAtom::new("R", vec![v("x"), v("y")])];
        // Indexed: probes S's single tuple, then R's x=9 bucket (10 tuples
        // max, first succeeds) — well under budget.
        let sol = HomProblem::new(&atoms, &db)
            .with_strategy(CandidateStrategy::Indexed)
            .with_budget(4)
            .first()
            .unwrap()
            .unwrap();
        assert_eq!(sol[&Var::new("x")], Atom::int(9));
        // Linear scan probes R's tuples up to the x=9 region and trips.
        assert!(matches!(
            HomProblem::new(&atoms, &db)
                .with_strategy(CandidateStrategy::LinearScan)
                .with_budget(4)
                .first(),
            Err(SearchOutcome::BudgetExceeded)
        ));
    }

    #[test]
    fn plan_order_prefers_constant_filtered_atoms() {
        // R(1, y) matches 1 tuple; T(u, w) matches 3: the constant-filtered
        // atom must be planned first even though both have one unbound var
        // after x is bound... (here both start unbound; R(1,y) has 1 unbound
        // var vs T's 2, but sizes also favour R).
        let db = Database::from_ints(&[
            ("R", &[&[1, 2], &[3, 4], &[5, 6]]),
            ("T", &[&[1, 1], &[2, 2], &[3, 3]]),
        ]);
        let atoms = vec![
            QueryAtom::new("T", vec![v("u"), v("w")]),
            QueryAtom::new("R", vec![Term::int(1), v("y")]),
        ];
        let order = plan_order(&atoms, &Assignment::new(), &db);
        assert_eq!(order[0], 1, "constant-filtered atom planned first");
    }

    #[test]
    fn default_strategy_round_trips() {
        assert_eq!(default_strategy(), CandidateStrategy::Indexed);
        set_default_strategy(CandidateStrategy::LinearScan);
        assert_eq!(default_strategy(), CandidateStrategy::LinearScan);
        set_default_strategy(CandidateStrategy::Indexed);
        assert_eq!(default_strategy(), CandidateStrategy::Indexed);
    }
}
