//! Evaluating conjunctive queries over flat databases.

use std::ops::ControlFlow;

use co_object::Atom;

use crate::db::{Database, Relation, Tuple};
use crate::hom::{Assignment, HomProblem};
use crate::query::{ConjunctiveQuery, Term};

/// Evaluates `q` on `db`, returning the set of head tuples.
///
/// * Unsatisfiable queries return the empty relation.
/// * A satisfiable query with an empty body returns exactly its (constant)
///   head tuple — the nullary product. Such queries arise from COQL
///   singleton expressions `{E}` under flattening.
pub fn evaluate(q: &ConjunctiveQuery, db: &Database) -> Relation {
    let mut out = Relation::new();
    for_each_total_assignment(q, db, |assignment| {
        out.insert(project_head(q, assignment));
        ControlFlow::Continue(())
    });
    out
}

/// Whether `q` returns at least one tuple on `db`.
pub fn is_nonempty(q: &ConjunctiveQuery, db: &Database) -> bool {
    let mut any = false;
    for_each_total_assignment(q, db, |_| {
        any = true;
        ControlFlow::Break(())
    });
    any
}

/// Runs `visit` for every satisfying assignment of `q`'s body on `db`.
///
/// The assignment binds every body variable. Head projection is up to the
/// caller ([`project_head`]); simulation-style callers also need the bodies'
/// non-head variables, which is why this is exposed.
pub fn for_each_total_assignment(
    q: &ConjunctiveQuery,
    db: &Database,
    mut visit: impl FnMut(&Assignment) -> ControlFlow<()>,
) {
    if q.unsatisfiable {
        return;
    }
    HomProblem::new(&q.body, db).for_each(&mut visit);
}

/// Projects the head of `q` under a total assignment of its body variables.
///
/// Panics (debug) if a head variable is unbound — callers must validate
/// safety first.
pub fn project_head(q: &ConjunctiveQuery, assignment: &Assignment) -> Tuple {
    q.head
        .iter()
        .map(|t| match t {
            Term::Const(c) => *c,
            Term::Var(v) => {
                *assignment.get(v).unwrap_or_else(|| panic!("unsafe head variable `{v}`"))
            }
        })
        .collect()
}

/// Evaluates the head of `q` under a *partial* fixed assignment, enumerating
/// completions. Used by the grouped semantics in `co-sim`.
pub fn evaluate_with_fixed(q: &ConjunctiveQuery, db: &Database, fixed: Assignment) -> Relation {
    let mut out = Relation::new();
    if q.unsatisfiable {
        return out;
    }
    HomProblem::new(&q.body, db).with_fixed(fixed).for_each(|assignment| {
        out.insert(project_head(q, assignment));
        ControlFlow::Continue(())
    });
    out
}

/// The Boolean value of a 0-ary query (whether the empty tuple is in the
/// answer).
pub fn boolean(q: &ConjunctiveQuery, db: &Database) -> bool {
    debug_assert_eq!(q.arity(), 0, "boolean() expects a 0-ary query");
    is_nonempty(q, db)
}

/// Convenience: evaluates and returns tuples in canonical sorted order.
pub fn evaluate_sorted(q: &ConjunctiveQuery, db: &Database) -> Vec<Vec<Atom>> {
    let rel = evaluate(q, db);
    rel.iter_sorted().into_iter().cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryAtom;

    fn v(name: &str) -> Term {
        Term::var(name)
    }

    #[test]
    fn evaluates_a_join() {
        // q(x, z) :- R(x, y), R(y, z)
        let q = ConjunctiveQuery::plain(
            vec![v("x"), v("z")],
            vec![
                QueryAtom::new("R", vec![v("x"), v("y")]),
                QueryAtom::new("R", vec![v("y"), v("z")]),
            ],
        );
        let db = Database::from_ints(&[("R", &[&[1, 2], &[2, 3], &[3, 4]])]);
        let rows = evaluate_sorted(&q, &db);
        assert_eq!(rows, vec![vec![Atom::int(1), Atom::int(3)], vec![Atom::int(2), Atom::int(4)],]);
    }

    #[test]
    fn unsatisfiable_queries_are_empty() {
        let q = ConjunctiveQuery::new(
            vec![v("x")],
            vec![QueryAtom::new("R", vec![v("x")])],
            &[(Term::int(1), Term::int(2))],
        );
        let db = Database::from_ints(&[("R", &[&[1]])]);
        assert!(evaluate(&q, &db).is_empty());
        assert!(!is_nonempty(&q, &db));
    }

    #[test]
    fn empty_body_yields_constant_tuple() {
        let q = ConjunctiveQuery::plain(vec![Term::int(7)], vec![]);
        let db = Database::new();
        let rows = evaluate_sorted(&q, &db);
        assert_eq!(rows, vec![vec![Atom::int(7)]]);
    }

    #[test]
    fn boolean_queries() {
        let q = ConjunctiveQuery::plain(vec![], vec![QueryAtom::new("R", vec![v("x"), v("x")])]);
        let yes = Database::from_ints(&[("R", &[&[2, 2]])]);
        let no = Database::from_ints(&[("R", &[&[1, 2]])]);
        assert!(boolean(&q, &yes));
        assert!(!boolean(&q, &no));
    }

    #[test]
    fn constants_in_head_and_body() {
        // q(x, 9) :- R(x, 1)
        let q = ConjunctiveQuery::plain(
            vec![v("x"), Term::int(9)],
            vec![QueryAtom::new("R", vec![v("x"), Term::int(1)])],
        );
        let db = Database::from_ints(&[("R", &[&[5, 1], &[6, 2]])]);
        let rows = evaluate_sorted(&q, &db);
        assert_eq!(rows, vec![vec![Atom::int(5), Atom::int(9)]]);
    }

    #[test]
    fn fixed_bindings_restrict_results() {
        let q =
            ConjunctiveQuery::plain(vec![v("y")], vec![QueryAtom::new("R", vec![v("x"), v("y")])]);
        let db = Database::from_ints(&[("R", &[&[1, 2], &[3, 4]])]);
        let mut fixed = Assignment::new();
        fixed.insert(crate::schema::Var::new("x"), Atom::int(3));
        let rel = evaluate_with_fixed(&q, &db, fixed);
        assert_eq!(rel.iter_sorted(), vec![&vec![Atom::int(4)]]);
    }

    #[test]
    fn duplicate_projections_deduplicate() {
        // q(x) :- R(x, y) over two y's for the same x.
        let q =
            ConjunctiveQuery::plain(vec![v("x")], vec![QueryAtom::new("R", vec![v("x"), v("y")])]);
        let db = Database::from_ints(&[("R", &[&[1, 2], &[1, 3]])]);
        assert_eq!(evaluate(&q, &db).len(), 1);
    }
}
