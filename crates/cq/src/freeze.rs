//! Freezing queries into canonical databases.
//!
//! The canonical-database technique of Chandra & Merlin \[11\]: replace every
//! variable of a query body with a distinct fresh constant; the body atoms
//! become the facts of the *canonical database*. A query `Q1` is contained
//! in `Q2` iff `Q2` "recovers" `Q1`'s frozen head on `Q1`'s canonical
//! database. The simulation procedures of §5 freeze *multiple* renamed-apart
//! copies of a body that share their index variables (Equation 2's witness
//! copies), which [`freeze_atoms_with`] supports by letting the caller seed
//! the variable→constant map.

use std::collections::HashMap;

use co_object::Atom;

use crate::db::Database;
use crate::query::{ConjunctiveQuery, QueryAtom, Term};
use crate::schema::Var;

/// Result of freezing: the canonical database plus the variable assignment.
#[derive(Clone, Debug)]
pub struct Frozen {
    /// The canonical database (one fact per body atom).
    pub db: Database,
    /// Frozen constant chosen for each body variable.
    pub assignment: HashMap<Var, Atom>,
}

impl Frozen {
    /// The frozen image of a term.
    pub fn image(&self, t: &Term) -> Atom {
        match t {
            Term::Const(c) => *c,
            Term::Var(v) => *self
                .assignment
                .get(v)
                .unwrap_or_else(|| panic!("term variable `{v}` was not frozen")),
        }
    }

    /// The frozen image of the query head.
    pub fn head_image(&self, q: &ConjunctiveQuery) -> Vec<Atom> {
        q.head.iter().map(|t| self.image(t)).collect()
    }
}

/// Freezes a query body into its canonical database.
pub fn freeze(q: &ConjunctiveQuery) -> Frozen {
    let mut assignment = HashMap::new();
    let mut db = Database::new();
    freeze_atoms_with(&q.body, &mut assignment, &mut db);
    Frozen { db, assignment }
}

/// Freezes additional atoms into an existing canonical database, reusing
/// constants for variables already present in `assignment` (this is how
/// witness copies share their index variables).
pub fn freeze_atoms_with(
    atoms: &[QueryAtom],
    assignment: &mut HashMap<Var, Atom>,
    db: &mut Database,
) {
    for atom in atoms {
        let tuple: Vec<Atom> = atom
            .args
            .iter()
            .map(|t| match t {
                Term::Const(c) => *c,
                Term::Var(v) => *assignment.entry(*v).or_insert_with(|| Atom::fresh(&v.name())),
            })
            .collect();
        db.insert(atom.rel, tuple);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::query::Term;

    fn v(name: &str) -> Term {
        Term::var(name)
    }

    #[test]
    fn canonical_db_has_one_fact_per_atom() {
        let q = ConjunctiveQuery::plain(
            vec![v("x")],
            vec![
                QueryAtom::new("R", vec![v("x"), v("y")]),
                QueryAtom::new("R", vec![v("y"), v("x")]),
            ],
        );
        let frozen = freeze(&q);
        assert_eq!(frozen.db.fact_count(), 2);
        assert_eq!(frozen.assignment.len(), 2);
    }

    #[test]
    fn query_recovers_its_own_frozen_head() {
        let q = ConjunctiveQuery::plain(
            vec![v("x"), Term::int(3)],
            vec![QueryAtom::new("R", vec![v("x"), v("y")])],
        );
        let frozen = freeze(&q);
        let result = evaluate(&q, &frozen.db);
        assert!(result.contains(&frozen.head_image(&q)));
    }

    #[test]
    fn shared_assignment_reuses_constants() {
        let a1 = vec![QueryAtom::new("R", vec![v("i"), v("a")])];
        let a2 = vec![QueryAtom::new("R", vec![v("i"), v("b")])];
        let mut assignment = HashMap::new();
        let mut db = Database::new();
        freeze_atoms_with(&a1, &mut assignment, &mut db);
        freeze_atoms_with(&a2, &mut assignment, &mut db);
        // `i` frozen once: both facts share the same first column.
        let rel = db.relation(crate::schema::RelName::new("R"));
        let firsts: std::collections::HashSet<Atom> = rel.iter().map(|t| t[0]).collect();
        assert_eq!(firsts.len(), 1);
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn constants_freeze_to_themselves() {
        let q =
            ConjunctiveQuery::plain(vec![], vec![QueryAtom::new("R", vec![Term::int(5), v("y")])]);
        let frozen = freeze(&q);
        let rel = frozen.db.relation(crate::schema::RelName::new("R"));
        assert!(rel.iter().all(|t| t[0] == Atom::int(5)));
    }
}
