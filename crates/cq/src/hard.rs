//! NP-hard instance generators.
//!
//! The paper proves checking simulation and strong simulation NP-complete;
//! hardness is inherited from containment of conjunctive queries \[11\].
//! This module builds the classical hard family: deciding `q_K ⊑ q_G` for
//! the Boolean edge queries of a clique `K_k` and a graph `G` is exactly
//! graph `k`-colorability (a containment mapping `q_G → q_K` is a proper
//! coloring). Experiments E2–E4 use these instances to exhibit the
//! exponential worst case, against chain queries for the polynomial case.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::query::{ConjunctiveQuery, QueryAtom, Term};

/// An undirected graph given by its vertex count and edge list.
#[derive(Clone, Debug)]
pub struct Graph {
    /// Number of vertices (named `0..n`).
    pub vertices: usize,
    /// Undirected edges (u, v), u ≠ v.
    pub edges: Vec<(usize, usize)>,
}

impl Graph {
    /// The complete graph on `k` vertices.
    pub fn clique(k: usize) -> Graph {
        let mut edges = Vec::new();
        for u in 0..k {
            for v in (u + 1)..k {
                edges.push((u, v));
            }
        }
        Graph { vertices: k, edges }
    }

    /// The cycle on `n` vertices.
    pub fn cycle(n: usize) -> Graph {
        Graph { vertices: n, edges: (0..n).map(|i| (i, (i + 1) % n)).collect() }
    }

    /// An Erdős–Rényi random graph with edge probability `pct`%.
    pub fn random(n: usize, pct: u32, seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_range(0..100) < pct {
                    edges.push((u, v));
                }
            }
        }
        Graph { vertices: n, edges }
    }
}

/// The Boolean *edge query* of a graph over the binary relation `E`,
/// with both orientations of each undirected edge (so homomorphisms are
/// exactly graph homomorphisms of undirected graphs).
pub fn edge_query(g: &Graph) -> ConjunctiveQuery {
    let var = |i: usize| Term::var(&format!("n{i}"));
    let mut body = Vec::with_capacity(g.edges.len() * 2);
    for &(u, v) in &g.edges {
        body.push(QueryAtom::new("E", vec![var(u), var(v)]));
        body.push(QueryAtom::new("E", vec![var(v), var(u)]));
    }
    ConjunctiveQuery::plain(vec![], body)
}

/// A containment instance `(q1, q2)` such that `q1 ⊑ q2` iff `g` is
/// `k`-colorable.
///
/// `q1` is the clique query (its canonical database is `K_k` with both edge
/// orientations); containment holds iff there is a homomorphism from `q2`'s
/// body (the graph) into `K_k`, i.e. a proper `k`-coloring.
pub fn coloring_instance(g: &Graph, k: usize) -> (ConjunctiveQuery, ConjunctiveQuery) {
    (edge_query(&Graph::clique(k)), edge_query(g))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::is_contained_in;

    #[test]
    fn odd_cycles_are_not_two_colorable() {
        let (q1, q2) = coloring_instance(&Graph::cycle(5), 2);
        assert!(!is_contained_in(&q1, &q2));
        let (q1, q2) = coloring_instance(&Graph::cycle(5), 3);
        assert!(is_contained_in(&q1, &q2));
    }

    #[test]
    fn even_cycles_are_two_colorable() {
        let (q1, q2) = coloring_instance(&Graph::cycle(6), 2);
        assert!(is_contained_in(&q1, &q2));
    }

    #[test]
    fn cliques_need_k_colors() {
        let (q1, q2) = coloring_instance(&Graph::clique(4), 3);
        assert!(!is_contained_in(&q1, &q2));
        let (q1, q2) = coloring_instance(&Graph::clique(4), 4);
        assert!(is_contained_in(&q1, &q2));
    }

    #[test]
    fn random_graphs_are_reproducible() {
        let g1 = Graph::random(8, 40, 7);
        let g2 = Graph::random(8, 40, 7);
        assert_eq!(g1.edges, g2.edges);
        assert!(g1.edges.len() < 28);
    }
}
