//! Conjunctive-query minimization (computing the core).
//!
//! A body atom is redundant iff removing it yields an equivalent query;
//! since dropping atoms only enlarges answers, that reduces to checking
//! `Q \ {atom} ⊑ Q`. Greedy removal is confluent up to isomorphism (the
//! classical core argument), so one pass over the atoms suffices.
//!
//! Minimization matters to the paper's algorithms pragmatically: the
//! simulation procedures of §5–6 conjoin *witness copies* of a body, so
//! shrinking bodies first shrinks the NP search exponent.

use crate::containment::is_contained_in;
use crate::query::ConjunctiveQuery;

/// Returns an equivalent minimal subquery of `q` (the core).
pub fn minimize(q: &ConjunctiveQuery) -> ConjunctiveQuery {
    if q.unsatisfiable {
        // Canonical unsatisfiable form: same head, empty body, unsat flag.
        return ConjunctiveQuery { head: q.head.clone(), body: Vec::new(), unsatisfiable: true };
    }
    let mut current = q.clone();
    let mut i = 0;
    while i < current.body.len() {
        let mut candidate = current.clone();
        candidate.body.remove(i);
        // Safety: removal must not orphan a head variable.
        let head_safe = candidate.head_vars().iter().all(|v| candidate.body_vars().contains(v));
        if head_safe && is_contained_in(&candidate, &current) {
            current = candidate;
        } else {
            i += 1;
        }
    }
    current
}

/// Whether a query is minimal (has no redundant atoms).
pub fn is_minimal(q: &ConjunctiveQuery) -> bool {
    minimize(q).body.len() == q.body.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::equivalent;
    use crate::query::{QueryAtom, Term};

    fn v(name: &str) -> Term {
        Term::var(name)
    }

    #[test]
    fn removes_duplicate_pattern() {
        // q(x) :- R(x,y), R(x,z)  minimizes to  q(x) :- R(x,y)
        let q = ConjunctiveQuery::plain(
            vec![v("x")],
            vec![
                QueryAtom::new("R", vec![v("x"), v("y")]),
                QueryAtom::new("R", vec![v("x"), v("z")]),
            ],
        );
        let m = minimize(&q);
        assert_eq!(m.body.len(), 1);
        assert!(equivalent(&q, &m));
    }

    #[test]
    fn keeps_necessary_atoms() {
        // A directed triangle query is its own core.
        let q = ConjunctiveQuery::plain(
            vec![],
            vec![
                QueryAtom::new("E", vec![v("a"), v("b")]),
                QueryAtom::new("E", vec![v("b"), v("c")]),
                QueryAtom::new("E", vec![v("c"), v("a")]),
            ],
        );
        assert!(is_minimal(&q));
    }

    #[test]
    fn folds_longer_path_into_loop() {
        // Boolean q :- E(x,x), E(x,y) minimizes to q :- E(x,x).
        let q = ConjunctiveQuery::plain(
            vec![],
            vec![
                QueryAtom::new("E", vec![v("x"), v("x")]),
                QueryAtom::new("E", vec![v("x"), v("y")]),
            ],
        );
        let m = minimize(&q);
        assert_eq!(m.body.len(), 1);
        assert!(equivalent(&q, &m));
    }

    #[test]
    fn head_variables_are_protected() {
        // q(x, y) :- R(x), R(y): neither atom can go, despite symmetry.
        let q = ConjunctiveQuery::plain(
            vec![v("x"), v("y")],
            vec![QueryAtom::new("R", vec![v("x")]), QueryAtom::new("R", vec![v("y")])],
        );
        assert!(is_minimal(&q));
    }

    #[test]
    fn unsatisfiable_minimizes_to_empty_body() {
        let q = ConjunctiveQuery::new(
            vec![v("x")],
            vec![QueryAtom::new("R", vec![v("x")])],
            &[(Term::int(1), Term::int(2))],
        );
        let m = minimize(&q);
        assert!(m.unsatisfiable);
        assert!(m.body.is_empty());
    }
}
