//! Classical containment and equivalence of conjunctive queries
//! (Chandra & Merlin \[11\]; Ullman \[41\]).
//!
//! `Q1 ⊑ Q2` iff there is a **containment mapping** from `Q2` to `Q1`: a
//! substitution of `Q2`'s variables by `Q1`'s terms carrying head to head
//! and every body atom of `Q2` into a body atom of `Q1`. Deciding this is
//! NP-complete; the paper's simulation conditions (its §5–6) strictly
//! generalize it, and the baseline implemented here is what experiments
//! E2–E4 compare against.

use std::collections::HashMap;

use co_object::Atom;

use crate::freeze::{freeze, Frozen};
use crate::hom::{Assignment, HomProblem};
use crate::query::{ConjunctiveQuery, Term};
use crate::schema::Var;

/// A positive containment certificate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Certificate {
    /// The contained query is unsatisfiable (empty on every database).
    TriviallyEmpty,
    /// A containment mapping from the containing query's variables to the
    /// contained query's terms.
    Mapping(ContainmentMapping),
}

impl Certificate {
    /// Verifies this certificate witnesses `q1 ⊑ q2` without re-running
    /// the hom search: `TriviallyEmpty` requires `q1` to actually be
    /// unsatisfiable, a mapping is re-checked syntactically.
    pub fn verify(&self, q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> bool {
        match self {
            Certificate::TriviallyEmpty => q1.unsatisfiable,
            Certificate::Mapping(m) => !q2.unsatisfiable && m.verify(q1, q2),
        }
    }
}

/// A containment mapping `φ : vars(Q2) → terms(Q1)` witnessing `Q1 ⊑ Q2`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ContainmentMapping {
    /// The variable substitution.
    pub map: HashMap<Var, Term>,
}

impl ContainmentMapping {
    /// Verifies this mapping witnesses `q1 ⊑ q2`: it must carry `q2`'s head
    /// to `q1`'s head and every body atom of `q2` into `q1`'s body.
    pub fn verify(&self, q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> bool {
        let mapped_head: Vec<Term> = q2.head.iter().map(|t| self.apply(t)).collect();
        if mapped_head != q1.head {
            return false;
        }
        q2.body.iter().all(|atom| {
            let mapped = atom.substitute(&self.map);
            q1.body.contains(&mapped)
        })
    }

    /// Applies the mapping to a term.
    pub fn apply(&self, t: &Term) -> Term {
        match t {
            Term::Var(v) => *self.map.get(v).unwrap_or(t),
            Term::Const(_) => *t,
        }
    }
}

/// Decides `q1 ⊑ q2` (answers of `q1` are a subset of answers of `q2` on
/// every database). Returns a certificate when containment holds.
///
/// Queries of different arities are never contained unless `q1` is
/// unsatisfiable.
pub fn contained_in(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> Option<Certificate> {
    if q1.unsatisfiable {
        return Some(Certificate::TriviallyEmpty);
    }
    if q2.unsatisfiable || q1.arity() != q2.arity() {
        return None;
    }
    let frozen = freeze(q1);
    let fixed = head_fixing(q1, q2, &frozen)?;
    let hom = HomProblem::new(&q2.body, &frozen.db).with_fixed(fixed).first().ok().flatten()?;
    Some(Certificate::Mapping(unfreeze_mapping(&hom, &frozen, q2)))
}

/// Boolean convenience for [`contained_in`].
pub fn is_contained_in(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> bool {
    contained_in(q1, q2).is_some()
}

/// Decides equivalence: containment in both directions.
pub fn equivalent(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> bool {
    is_contained_in(q1, q2) && is_contained_in(q2, q1)
}

/// Builds the fixed head bindings for the hom search: each head variable of
/// `q2` must map to the frozen image of `q1`'s head term at the same
/// position. Returns `None` when the heads are incompatible (a constant in
/// `q2`'s head not matched by `q1`'s, or one `q2` variable forced to two
/// different images).
pub(crate) fn head_fixing(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    frozen: &Frozen,
) -> Option<Assignment> {
    let mut fixed = Assignment::new();
    for (t2, t1) in q2.head.iter().zip(q1.head.iter()) {
        let target = frozen.image(t1);
        match t2 {
            Term::Const(c) => {
                if *c != target {
                    return None;
                }
            }
            Term::Var(v) => match fixed.insert(*v, target) {
                Some(prev) if prev != target => return None,
                _ => {}
            },
        }
    }
    Some(fixed)
}

/// Converts a homomorphism into the canonical database back into a
/// syntactic containment mapping by inverting the freeze assignment.
pub(crate) fn unfreeze_mapping(
    hom: &Assignment,
    frozen: &Frozen,
    q2: &ConjunctiveQuery,
) -> ContainmentMapping {
    let inverse: HashMap<Atom, Var> = frozen.assignment.iter().map(|(&v, &a)| (a, v)).collect();
    let mut map = HashMap::new();
    for v in q2.body_vars() {
        if let Some(&a) = hom.get(&v) {
            let term = match inverse.get(&a) {
                Some(&w) => Term::Var(w),
                None => Term::Const(a),
            };
            map.insert(v, term);
        }
    }
    ContainmentMapping { map }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryAtom;

    fn v(name: &str) -> Term {
        Term::var(name)
    }

    /// q(x,y) :- R(x,y)   vs   q(x,y) :- R(x,y), R(y,x)
    #[test]
    fn adding_atoms_restricts() {
        let big = ConjunctiveQuery::plain(
            vec![v("x"), v("y")],
            vec![QueryAtom::new("R", vec![v("x"), v("y")])],
        );
        let small = ConjunctiveQuery::plain(
            vec![v("x"), v("y")],
            vec![
                QueryAtom::new("R", vec![v("x"), v("y")]),
                QueryAtom::new("R", vec![v("y"), v("x")]),
            ],
        );
        assert!(is_contained_in(&small, &big));
        assert!(!is_contained_in(&big, &small));
    }

    /// The classic: a path of length 2 is contained in "some edge exists
    /// from x" only when heads line up.
    #[test]
    fn path_queries() {
        let p2 = ConjunctiveQuery::plain(
            vec![v("x")],
            vec![
                QueryAtom::new("E", vec![v("x"), v("y")]),
                QueryAtom::new("E", vec![v("y"), v("z")]),
            ],
        );
        let p1 =
            ConjunctiveQuery::plain(vec![v("x")], vec![QueryAtom::new("E", vec![v("x"), v("y")])]);
        assert!(is_contained_in(&p2, &p1));
        assert!(!is_contained_in(&p1, &p2));
    }

    #[test]
    fn equivalent_up_to_renaming_and_redundancy() {
        let q1 =
            ConjunctiveQuery::plain(vec![v("a")], vec![QueryAtom::new("R", vec![v("a"), v("b")])]);
        // Same query with a redundant extra copy of the atom pattern.
        let q2 = ConjunctiveQuery::plain(
            vec![v("u")],
            vec![
                QueryAtom::new("R", vec![v("u"), v("w")]),
                QueryAtom::new("R", vec![v("u"), v("t")]),
            ],
        );
        assert!(equivalent(&q1, &q2));
    }

    #[test]
    fn constants_matter() {
        let q1 = ConjunctiveQuery::plain(
            vec![v("x")],
            vec![QueryAtom::new("R", vec![v("x"), Term::int(1)])],
        );
        let q2 =
            ConjunctiveQuery::plain(vec![v("x")], vec![QueryAtom::new("R", vec![v("x"), v("y")])]);
        assert!(is_contained_in(&q1, &q2));
        assert!(!is_contained_in(&q2, &q1));
    }

    #[test]
    fn constants_in_heads() {
        let q1 =
            ConjunctiveQuery::plain(vec![Term::int(1)], vec![QueryAtom::new("R", vec![v("x")])]);
        let q2 =
            ConjunctiveQuery::plain(vec![Term::int(1)], vec![QueryAtom::new("R", vec![v("y")])]);
        let q3 =
            ConjunctiveQuery::plain(vec![Term::int(2)], vec![QueryAtom::new("R", vec![v("y")])]);
        assert!(is_contained_in(&q1, &q2));
        assert!(!is_contained_in(&q1, &q3));
    }

    #[test]
    fn unsatisfiable_is_least() {
        let empty = ConjunctiveQuery::new(
            vec![v("x")],
            vec![QueryAtom::new("R", vec![v("x")])],
            &[(Term::int(1), Term::int(2))],
        );
        let q = ConjunctiveQuery::plain(vec![v("x")], vec![QueryAtom::new("R", vec![v("x")])]);
        assert_eq!(contained_in(&empty, &q), Some(Certificate::TriviallyEmpty));
        assert!(!is_contained_in(&q, &empty));
    }

    #[test]
    fn arity_mismatch_not_contained() {
        let q1 = ConjunctiveQuery::plain(
            vec![v("x"), v("y")],
            vec![QueryAtom::new("R", vec![v("x"), v("y")])],
        );
        let q2 =
            ConjunctiveQuery::plain(vec![v("x")], vec![QueryAtom::new("R", vec![v("x"), v("y")])]);
        assert!(!is_contained_in(&q1, &q2));
    }

    #[test]
    fn certificates_verify() {
        let q1 = ConjunctiveQuery::plain(
            vec![v("x")],
            vec![QueryAtom::new("R", vec![v("x"), v("y")]), QueryAtom::new("S", vec![v("y")])],
        );
        let q2 =
            ConjunctiveQuery::plain(vec![v("u")], vec![QueryAtom::new("R", vec![v("u"), v("w")])]);
        match contained_in(&q1, &q2) {
            Some(Certificate::Mapping(m)) => assert!(m.verify(&q1, &q2)),
            other => panic!("expected mapping certificate, got {other:?}"),
        }
    }

    #[test]
    fn repeated_head_variables() {
        // q(x,x) :- R(x)  ⊑  q(a,b) :- R(a), R(b)   but not conversely.
        let diag =
            ConjunctiveQuery::plain(vec![v("x"), v("x")], vec![QueryAtom::new("R", vec![v("x")])]);
        let pair = ConjunctiveQuery::plain(
            vec![v("a"), v("b")],
            vec![QueryAtom::new("R", vec![v("a")]), QueryAtom::new("R", vec![v("b")])],
        );
        assert!(is_contained_in(&diag, &pair));
        assert!(!is_contained_in(&pair, &diag));
    }
}
