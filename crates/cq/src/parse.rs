//! Datalog-style parser for conjunctive queries.
//!
//! Syntax:
//!
//! ```text
//! q(X, Y) :- R(X, Z), S(Z, Y), Z = 'paris', Y = W.
//! ```
//!
//! * Identifiers starting with an **uppercase** letter (or `_`) are
//!   variables; lowercase identifiers, integers, and `'quoted'` strings are
//!   constants.
//! * `=`-conditions are eliminated at construction (see
//!   [`crate::query::ConjunctiveQuery::new`]).
//! * The head predicate name is ignored (queries are anonymous); the
//!   trailing period is optional.

use std::fmt;

use co_object::Atom;

use crate::query::{ConjunctiveQuery, Equality, QueryAtom, Term};

/// Default nesting cap for [`parse_query`]. The datalog grammar is flat
/// today (terms never nest), so the cap exists as a uniform guarantee with
/// the `co_lang`/`co_object` parsers: any future recursive syntax is
/// already bounded, and callers get the same structured
/// [`ParseErrorKind::TooDeep`] contract for untrusted input.
pub const DEFAULT_MAX_DEPTH: usize = 128;

/// What category of failure a [`ParseError`] reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Malformed input (the ordinary case).
    Syntax,
    /// Input nested deeper than the parser's depth cap.
    TooDeep,
}

/// A parse error with byte position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where the error was detected.
    pub position: usize,
    /// Description.
    pub message: String,
    /// Structured failure category (syntax vs. depth cap).
    pub kind: ParseErrorKind,
}

impl ParseError {
    /// Whether this error is the depth-cap rejection.
    pub fn is_too_deep(&self) -> bool {
        self.kind == ParseErrorKind::TooDeep
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one conjunctive query in datalog syntax under the default depth
/// cap.
pub fn parse_query(input: &str) -> Result<ConjunctiveQuery, ParseError> {
    parse_query_with_depth(input, DEFAULT_MAX_DEPTH)
}

/// [`parse_query`] with an explicit nesting cap (see [`DEFAULT_MAX_DEPTH`]
/// for why the cap exists even though the current grammar is flat).
pub fn parse_query_with_depth(
    input: &str,
    max_depth: usize,
) -> Result<ConjunctiveQuery, ParseError> {
    let mut p = P { s: input.as_bytes(), pos: 0, depth: 0, max_depth };
    p.ws();
    p.ident()?; // head predicate name, ignored
    p.ws();
    p.expect(b'(')?;
    let head = p.term_list(b')')?;
    p.ws();
    if !p.eat_str(":-") {
        return Err(p.err("expected `:-`"));
    }
    let mut body = Vec::new();
    let mut equalities: Vec<Equality> = Vec::new();
    loop {
        p.ws();
        // `true` stands for the empty body; `false` for unsatisfiable.
        if p.eat_str("true") {
        } else if p.eat_str("false") {
            equalities.push((Term::int(0), Term::int(1)));
        } else {
            let start = p.pos;
            let name = p.ident()?;
            p.ws();
            if p.peek() == Some(b'(') {
                p.expect(b'(')?;
                let args = p.term_list(b')')?;
                body.push(QueryAtom::new(&name, args));
            } else if p.peek() == Some(b'=') {
                // The identifier was actually a term of an equality.
                p.pos = start;
                let lhs = p.term()?;
                p.ws();
                p.expect(b'=')?;
                p.ws();
                let rhs = p.term()?;
                equalities.push((lhs, rhs));
            } else {
                return Err(p.err("expected `(` or `=` after identifier"));
            }
        }
        p.ws();
        match p.peek() {
            Some(b',') => {
                p.pos += 1;
            }
            Some(b'.') => {
                p.pos += 1;
                break;
            }
            None => break,
            _ => {
                // Could be a non-identifier term starting an equality, e.g. 3 = X.
                let lhs = p.term()?;
                p.ws();
                p.expect(b'=')?;
                p.ws();
                let rhs = p.term()?;
                equalities.push((lhs, rhs));
                p.ws();
                match p.peek() {
                    Some(b',') => p.pos += 1,
                    Some(b'.') => {
                        p.pos += 1;
                        break;
                    }
                    None => break,
                    _ => return Err(p.err("expected `,` or `.`")),
                }
            }
        }
    }
    p.ws();
    if p.pos != p.s.len() {
        return Err(p.err("trailing input after query"));
    }
    Ok(ConjunctiveQuery::new(head, body, &equalities))
}

struct P<'a> {
    s: &'a [u8],
    pos: usize,
    depth: usize,
    max_depth: usize,
}

impl<'a> P<'a> {
    fn err(&self, m: &str) -> ParseError {
        ParseError { position: self.pos, message: m.to_string(), kind: ParseErrorKind::Syntax }
    }

    fn too_deep(&self) -> ParseError {
        ParseError {
            position: self.pos,
            message: format!("query nested deeper than {} levels", self.max_depth),
            kind: ParseErrorKind::TooDeep,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.pos).copied()
    }

    fn ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn eat_str(&mut self, word: &str) -> bool {
        if self.s[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        if !self.peek().is_some_and(|c| c.is_ascii_alphabetic() || c == b'_') {
            return Err(self.err("expected identifier"));
        }
        while self.peek().is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_') {
            self.pos += 1;
        }
        Ok(std::str::from_utf8(&self.s[start..self.pos]).expect("ascii").to_string())
    }

    /// Depth guard shared by every compound production. Terms never nest in
    /// the current grammar, so `depth` only ever reaches 1; the funnel keeps
    /// the cap wired for any future recursive term syntax and makes the
    /// [`ParseErrorKind::TooDeep`] contract testable (cap 0 trips it).
    fn term(&mut self) -> Result<Term, ParseError> {
        if self.depth >= self.max_depth {
            return Err(self.too_deep());
        }
        self.depth += 1;
        let t = self.term_inner();
        self.depth -= 1;
        t
    }

    fn term_inner(&mut self) -> Result<Term, ParseError> {
        match self.peek() {
            Some(b'\'') => {
                self.pos += 1;
                let mut bytes = Vec::new();
                loop {
                    match self.peek() {
                        Some(b'\'') => {
                            self.pos += 1;
                            break;
                        }
                        Some(c) => {
                            bytes.push(c);
                            self.pos += 1;
                        }
                        None => return Err(self.err("unterminated string")),
                    }
                }
                let out =
                    String::from_utf8(bytes).map_err(|_| self.err("invalid UTF-8 in string"))?;
                Ok(Term::Const(Atom::str(&out)))
            }
            Some(c) if c.is_ascii_digit() || c == b'-' => {
                let start = self.pos;
                if c == b'-' {
                    self.pos += 1;
                }
                while self.peek().is_some_and(|d| d.is_ascii_digit()) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.s[start..self.pos]).expect("ascii");
                let n: i64 = text.parse().map_err(|_| self.err("invalid integer"))?;
                Ok(Term::Const(Atom::int(n)))
            }
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                let name = self.ident()?;
                let first = name.chars().next().expect("non-empty ident");
                if first.is_ascii_uppercase() || first == '_' {
                    Ok(Term::var(&name))
                } else {
                    Ok(Term::Const(Atom::str(&name)))
                }
            }
            _ => Err(self.err("expected a term")),
        }
    }

    fn term_list(&mut self, close: u8) -> Result<Vec<Term>, ParseError> {
        let mut out = Vec::new();
        self.ws();
        if self.peek() == Some(close) {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            self.ws();
            out.push(self.term()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(c) if c == close => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(self.err("expected `,` or closing delimiter")),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::equivalent;
    use crate::db::Database;
    use crate::eval::evaluate_sorted;

    #[test]
    fn parses_simple_query() {
        let q = parse_query("q(X, Y) :- R(X, Z), R(Z, Y).").unwrap();
        assert_eq!(q.arity(), 2);
        assert_eq!(q.body.len(), 2);
        assert_eq!(q.body_vars().len(), 3);
    }

    #[test]
    fn case_decides_var_vs_const() {
        let q = parse_query("q(X) :- R(X, paris), R(X, 'two words'), R(X, 42).").unwrap();
        assert_eq!(q.body_vars().len(), 1);
        assert_eq!(q.body[0].args[1].as_const(), Some(Atom::str("paris")));
        assert_eq!(q.body[1].args[1].as_const(), Some(Atom::str("two words")));
        assert_eq!(q.body[2].args[1].as_const(), Some(Atom::int(42)));
    }

    #[test]
    fn equalities_apply() {
        let q = parse_query("q(X) :- R(X, Y), Y = 5.").unwrap();
        assert_eq!(q.body[0].args[1], Term::int(5));
        let q2 = parse_query("q() :- R(X), X = 1, X = 2.").unwrap();
        assert!(q2.unsatisfiable);
    }

    #[test]
    fn false_body_is_unsatisfiable() {
        let q = parse_query("q(1) :- false").unwrap();
        assert!(q.unsatisfiable);
        let t = parse_query("q(1) :- true").unwrap();
        assert!(!t.unsatisfiable);
        assert!(t.body.is_empty());
    }

    #[test]
    fn parsed_queries_evaluate() {
        let q = parse_query("q(X, Z) :- E(X, Y), E(Y, Z).").unwrap();
        let db = Database::from_ints(&[("E", &[&[1, 2], &[2, 3]])]);
        let rows = evaluate_sorted(&q, &db);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0], vec![Atom::int(1), Atom::int(3)]);
    }

    #[test]
    fn parse_display_reparse_is_equivalent() {
        let q = parse_query("q(X) :- R(X, Y), S(Y, 'c'), Y = Z, T(Z).").unwrap();
        let text = q.to_string();
        let q2 = parse_query(&text).unwrap();
        assert!(equivalent(&q, &q2), "{q} vs {q2}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_query("q(X)").is_err());
        assert!(parse_query("q(X) :- R(X) extra").is_err());
        assert!(parse_query("q(X) :- R(X,").is_err());
        assert!(parse_query(":- R(X)").is_err());
    }

    #[test]
    fn depth_cap_is_a_structured_error() {
        // The grammar is flat, so only a zero cap can trip the guard; the
        // test pins the structured-error contract shared with the other
        // parsers.
        let err = parse_query_with_depth("q(X) :- R(X).", 0).unwrap_err();
        assert!(err.is_too_deep(), "{err}");
        assert_eq!(err.kind, ParseErrorKind::TooDeep);

        // A wide (10k-term) but flat query sails through the default cap.
        let terms: Vec<String> = (0..10_000).map(|i| format!("X{i}")).collect();
        let wide = format!("q({}) :- R({}).", terms.join(", "), terms.join(", "));
        assert!(parse_query(&wide).is_ok());

        // Ordinary syntax errors keep the Syntax kind.
        let err = parse_query("q(X) :- R(X,").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::Syntax);
        assert!(!err.is_too_deep());
    }
}
