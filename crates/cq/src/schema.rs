//! Relation names, variables, and flat schemas.
//!
//! The paper's §5 reduces everything to *flat* input relations ("we will
//! assume from now on that all input relations are flat"); nested inputs
//! are encoded with indexes by `co-encode`. A [`Schema`] records, for each
//! relation name, its attributes (used when flat tuples are viewed as
//! records by the COQL layer).

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

use co_object::Field;

struct NameTable {
    map: HashMap<String, u32>,
    items: Vec<String>,
    fresh: u64,
}

impl NameTable {
    fn new() -> NameTable {
        NameTable { map: HashMap::new(), items: Vec::new(), fresh: 0 }
    }

    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        let id = u32::try_from(self.items.len()).expect("name table overflow");
        self.items.push(s.to_string());
        self.map.insert(s.to_string(), id);
        id
    }
}

macro_rules! interned_name {
    ($(#[$doc:meta])* $name:ident, $table:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash)]
        pub struct $name(u32);

        fn $table() -> &'static RwLock<NameTable> {
            static T: OnceLock<RwLock<NameTable>> = OnceLock::new();
            T.get_or_init(|| RwLock::new(NameTable::new()))
        }

        impl $name {
            /// Interns a name.
            pub fn new(name: &str) -> $name {
                $name($table().write().unwrap().intern(name))
            }

            /// Mints a fresh name no other call has produced, tagged for display.
            pub fn fresh(tag: &str) -> $name {
                let mut t = $table().write().unwrap();
                let n = t.fresh;
                t.fresh += 1;
                let id = t.intern(&format!("{tag}\u{2091}{n}"));
                $name(id)
            }

            /// The name this handle was interned from.
            pub fn name(self) -> String {
                $table().read().unwrap().items[self.0 as usize].clone()
            }

            /// Raw interner id (stable within a process).
            pub fn id(self) -> u32 {
                self.0
            }
        }

        impl PartialOrd for $name {
            fn partial_cmp(&self, other: &$name) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }

        impl Ord for $name {
            fn cmp(&self, other: &$name) -> Ordering {
                if self.0 == other.0 {
                    return Ordering::Equal;
                }
                let t = $table().read().unwrap();
                t.items[self.0 as usize].cmp(&t.items[other.0 as usize])
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.name())
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Display::fmt(self, f)
            }
        }
    };
}

interned_name!(
    /// An interned relation name (`R`, `S`, … in the paper).
    RelName,
    rel_table
);

interned_name!(
    /// An interned query variable. Ordered by name for deterministic output.
    Var,
    var_table
);

/// Schema of a single flat relation: name plus named atomic attributes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelSchema {
    /// The relation's name.
    pub name: RelName,
    /// Attribute labels, in column order (NOT sorted — column order is
    /// positional and significant).
    pub attrs: Vec<Field>,
}

impl RelSchema {
    /// Creates a relation schema; attribute labels must be distinct.
    pub fn new(name: &str, attrs: &[&str]) -> RelSchema {
        let attrs: Vec<Field> = attrs.iter().map(|a| Field::new(a)).collect();
        let mut seen = attrs.clone();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), attrs.len(), "duplicate attribute in relation `{name}`");
        RelSchema { name: RelName::new(name), attrs }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// The column position of an attribute.
    pub fn position(&self, attr: Field) -> Option<usize> {
        self.attrs.iter().position(|&a| a == attr)
    }
}

/// A database schema: a set of flat relation schemas.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schema {
    relations: BTreeMap<RelName, RelSchema>,
}

impl Schema {
    /// The empty schema.
    pub fn new() -> Schema {
        Schema::default()
    }

    /// Builds a schema from `(name, attributes)` pairs.
    pub fn with_relations(rels: &[(&str, &[&str])]) -> Schema {
        let mut s = Schema::new();
        for (name, attrs) in rels {
            s.add(RelSchema::new(name, attrs));
        }
        s
    }

    /// Adds (or replaces) a relation schema.
    pub fn add(&mut self, rel: RelSchema) {
        self.relations.insert(rel.name, rel);
    }

    /// Looks up a relation schema by name.
    pub fn relation(&self, name: RelName) -> Option<&RelSchema> {
        self.relations.get(&name)
    }

    /// The arity of a relation, if declared.
    pub fn arity(&self, name: RelName) -> Option<usize> {
        self.relations.get(&name).map(RelSchema::arity)
    }

    /// Iterates over relation schemas in name order.
    pub fn iter(&self) -> impl Iterator<Item = &RelSchema> {
        self.relations.values()
    }

    /// Number of declared relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether no relations are declared.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_intern() {
        assert_eq!(RelName::new("R"), RelName::new("R"));
        assert_ne!(RelName::new("R"), RelName::new("S"));
        assert_eq!(Var::new("x").name(), "x");
    }

    #[test]
    fn fresh_names_are_distinct() {
        assert_ne!(Var::fresh("w"), Var::fresh("w"));
        assert_ne!(RelName::fresh("T"), RelName::fresh("T"));
    }

    #[test]
    fn vars_order_by_name() {
        let mut vs = [Var::new("z"), Var::new("a"), Var::new("m")];
        vs.sort();
        let names: Vec<String> = vs.iter().map(|v| v.name()).collect();
        assert_eq!(names, vec!["a", "m", "z"]);
    }

    #[test]
    fn schema_lookup() {
        let s = Schema::with_relations(&[("R", &["A", "B"]), ("S", &["C"])]);
        assert_eq!(s.arity(RelName::new("R")), Some(2));
        assert_eq!(s.arity(RelName::new("S")), Some(1));
        assert_eq!(s.arity(RelName::new("T")), None);
        let r = s.relation(RelName::new("R")).unwrap();
        assert_eq!(r.position(Field::new("B")), Some(1));
        assert_eq!(r.position(Field::new("Z")), None);
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn duplicate_attrs_panic() {
        RelSchema::new("R", &["A", "A"]);
    }
}
