//! # co-cq — conjunctive queries over flat relations
//!
//! The relational substrate of the reproduction of *Levy & Suciu, PODS
//! 1997*. §5 of the paper reduces complex-object containment to conditions
//! on conjunctive queries over flat relations; this crate provides those
//! queries end to end:
//!
//! * [`Database`], [`Relation`] — flat instances;
//! * [`ConjunctiveQuery`] — `Q(x̄) :- R1(t̄1), …` with equality elimination;
//! * evaluation ([`evaluate()`]), canonical databases ([`freeze()`]), and the
//!   backtracking [`hom`] engine shared by every NP procedure in the
//!   workspace;
//! * classical **containment** and **equivalence** (Chandra–Merlin) with
//!   inspectable certificates, and **minimization** (cores);
//! * a datalog-style parser, random generators, and the graph-coloring
//!   hard-instance family used by the complexity experiments.
//!
//! ```
//! use co_cq::{parse_query, is_contained_in};
//!
//! let two_hops = parse_query("q(X, Z) :- E(X, Y), E(Y, Z).").unwrap();
//! let self_loop = parse_query("q(X, X) :- E(X, X).").unwrap();
//! assert!(is_contained_in(&self_loop, &two_hops));
//! assert!(!is_contained_in(&two_hops, &self_loop));
//! ```

#![warn(missing_docs)]

pub mod containment;
pub mod db;
pub mod eval;
pub mod freeze;
pub mod generate;
pub mod hard;
pub mod hom;
pub mod independence;
pub mod minimize;
pub mod parse;
pub mod query;
pub mod schema;
pub mod views;

pub use containment::{contained_in, equivalent, is_contained_in, Certificate, ContainmentMapping};
pub use db::{Database, Relation, Tuple};
pub use eval::{boolean, evaluate, evaluate_sorted, is_nonempty};
pub use freeze::{freeze, Frozen};
pub use hom::{Assignment, HomProblem, SearchOutcome};
pub use independence::{
    independent_of_deletions, independent_of_insertions, independent_of_updates,
};
pub use minimize::{is_minimal, minimize};
pub use parse::{parse_query, parse_query_with_depth, ParseErrorKind};
pub use query::{ConjunctiveQuery, QueryAtom, QueryError, Term};
pub use schema::{RelName, RelSchema, Schema, Var};
pub use views::{rewriting_equivalent, rewriting_sound, unfold, View, ViewError};
