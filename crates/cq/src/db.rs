//! Flat relational databases: sets of tuples of atoms, with lazily-built
//! hash indexes for the homomorphism engine.
//!
//! # Index layer (DESIGN.md §9)
//!
//! [`Relation::snapshot`] exposes a canonically sorted, shared copy of the
//! tuples, and [`Relation::pattern_index`] builds (once, on demand) a hash
//! index for a *bound-position pattern*: a bitmask over column positions.
//! The index maps the atoms at the bound positions to the (sorted) list of
//! matching tuple ids in the snapshot, so the backtracking engine can
//! enumerate exactly the candidate tuples compatible with its current
//! partial assignment instead of scanning the whole relation.
//!
//! Every `&mut self` method invalidates the cache, so a stale index can
//! never be observed: the next lookup after a mutation rebuilds from the
//! current tuples (tested in `edge_cases.rs`).

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::sync::{Arc, RwLock};

use co_object::{Atom, Field, Type, Value};

use crate::schema::{RelName, Schema};

/// A tuple of atomic values.
pub type Tuple = Vec<Atom>;

/// A bound-position pattern: bit `i` set means column `i` is bound.
pub type PositionMask = u64;

/// A hash index of one relation for one bound-position pattern: atoms at
/// the bound positions (in column order) → ascending ids of the matching
/// tuples in the relation's [`Relation::snapshot`].
#[derive(Debug, Default)]
pub struct PatternIndex {
    buckets: HashMap<Vec<Atom>, Vec<u32>>,
}

impl PatternIndex {
    /// The snapshot ids of tuples matching `key` at the bound positions,
    /// in ascending (deterministic) order.
    pub fn candidates(&self, key: &[Atom]) -> &[u32] {
        self.buckets.get(key).map_or(&[], Vec::as_slice)
    }

    /// Number of candidates for `key` without materializing them.
    pub fn candidate_count(&self, key: &[Atom]) -> usize {
        self.buckets.get(key).map_or(0, Vec::len)
    }

    /// Number of distinct keys (diagnostics).
    pub fn key_count(&self) -> usize {
        self.buckets.len()
    }
}

/// A packed per-column bit index: for one column, maps each atom to a
/// bitset (little-endian `u64` words) over snapshot tuple ids — bit `i`
/// set ⇔ `snapshot()[i]` holds that atom in the column.
///
/// The bitset homomorphism engine intersects these word-wise to build
/// candidate domains: binding several columns is an `&` cascade, filtering
/// forbidden values is `& !`, and MRV counting is a popcount — all
/// word-parallel instead of per-candidate hash probing.
#[derive(Debug, Default)]
pub struct BitIndex {
    len: usize,
    words: usize,
    by_value: HashMap<Atom, Vec<u64>>,
}

impl BitIndex {
    /// Number of tuples (bits) covered by the index.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the indexed relation is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of `u64` words per bitset.
    pub fn words(&self) -> usize {
        self.words
    }

    /// The bitset of tuple ids holding `value` in this column, or `None`
    /// if the value never occurs (an all-zero domain).
    pub fn bits(&self, value: Atom) -> Option<&[u64]> {
        self.by_value.get(&value).map(Vec::as_slice)
    }

    /// A fresh all-ones domain over the indexed tuples (tail bits beyond
    /// `len` are zero, so popcounts are exact).
    pub fn full_domain(&self) -> Vec<u64> {
        let mut words = vec![u64::MAX; self.words];
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = words.last_mut() {
                *last = (1u64 << tail) - 1;
            }
        }
        words
    }
}

/// Lazily-built derived state of a relation; cleared on every mutation.
#[derive(Debug, Default)]
struct RelCache {
    sorted: Option<Arc<Vec<Tuple>>>,
    indexes: HashMap<PositionMask, Arc<PatternIndex>>,
    bit_indexes: HashMap<usize, Arc<BitIndex>>,
}

/// A flat relation: a finite set of equal-arity tuples.
///
/// Equality, ordering of iteration, and `Display` depend only on the tuple
/// set; the index cache is invisible derived state.
#[derive(Debug, Default)]
pub struct Relation {
    tuples: HashSet<Tuple>,
    cache: RwLock<RelCache>,
}

impl Clone for Relation {
    fn clone(&self) -> Relation {
        // Indexes are cheap to rebuild; clones start with a cold cache.
        Relation { tuples: self.tuples.clone(), cache: RwLock::new(RelCache::default()) }
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Relation) -> bool {
        self.tuples == other.tuples
    }
}

impl Eq for Relation {}

impl Relation {
    /// The empty relation.
    pub fn new() -> Relation {
        Relation::default()
    }

    /// Builds a relation from tuples.
    pub fn from_tuples(tuples: impl IntoIterator<Item = Tuple>) -> Relation {
        Relation { tuples: tuples.into_iter().collect(), cache: RwLock::new(RelCache::default()) }
    }

    /// Inserts a tuple; returns whether it was new.
    pub fn insert(&mut self, t: Tuple) -> bool {
        let added = self.tuples.insert(t);
        if added {
            // Mutation invalidates the snapshot and every pattern index.
            *self.cache.get_mut().expect("relation cache lock poisoned") = RelCache::default();
        }
        added
    }

    /// Membership test.
    pub fn contains(&self, t: &[Atom]) -> bool {
        self.tuples.contains(t)
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterates in arbitrary (hash) order — use [`Relation::iter_sorted`]
    /// when determinism matters.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// Tuples in canonical sorted order.
    pub fn iter_sorted(&self) -> Vec<&Tuple> {
        let mut v: Vec<&Tuple> = self.tuples.iter().collect();
        v.sort();
        v
    }

    /// A shared, canonically sorted copy of the tuples. Built once and
    /// cached until the next mutation; tuple ids handed out by
    /// [`Relation::pattern_index`] refer to positions in this vector.
    pub fn snapshot(&self) -> Arc<Vec<Tuple>> {
        if let Some(s) = &self.cache.read().expect("relation cache lock poisoned").sorted {
            return Arc::clone(s);
        }
        let mut cache = self.cache.write().expect("relation cache lock poisoned");
        // A racing reader may have built it between the two locks.
        if let Some(s) = &cache.sorted {
            return Arc::clone(s);
        }
        let mut v: Vec<Tuple> = self.tuples.iter().cloned().collect();
        v.sort();
        let s = Arc::new(v);
        cache.sorted = Some(Arc::clone(&s));
        s
    }

    /// The hash index of this relation for the bound-position pattern
    /// `mask` (bit `i` set ⇔ column `i` bound). Built lazily on first use
    /// and cached until the next mutation.
    ///
    /// Lookup keys are the atoms at the bound positions in ascending column
    /// order; `mask == 0` yields a single bucket holding every tuple id.
    pub fn pattern_index(&self, mask: PositionMask) -> Arc<PatternIndex> {
        if let Some(idx) =
            self.cache.read().expect("relation cache lock poisoned").indexes.get(&mask)
        {
            return Arc::clone(idx);
        }
        let snapshot = self.snapshot();
        let mut buckets: HashMap<Vec<Atom>, Vec<u32>> = HashMap::new();
        for (id, tuple) in snapshot.iter().enumerate() {
            let key: Vec<Atom> = tuple
                .iter()
                .enumerate()
                .filter(|(pos, _)| *pos < 64 && mask >> *pos & 1 != 0)
                .map(|(_, &a)| a)
                .collect();
            let id = u32::try_from(id).expect("relation larger than u32::MAX tuples");
            // Snapshot order is ascending, so buckets stay sorted.
            buckets.entry(key).or_default().push(id);
        }
        let idx = Arc::new(PatternIndex { buckets });
        let mut cache = self.cache.write().expect("relation cache lock poisoned");
        let entry = cache.indexes.entry(mask).or_insert_with(|| Arc::clone(&idx));
        Arc::clone(entry)
    }

    /// The packed bit index of this relation for column `pos`: each atom
    /// occurring there maps to a bitset over [`Relation::snapshot`] tuple
    /// ids. Built lazily on first use and cached until the next mutation,
    /// like [`Relation::pattern_index`].
    pub fn bit_index(&self, pos: usize) -> Arc<BitIndex> {
        if let Some(idx) =
            self.cache.read().expect("relation cache lock poisoned").bit_indexes.get(&pos)
        {
            return Arc::clone(idx);
        }
        let snapshot = self.snapshot();
        let len = snapshot.len();
        let words = len.div_ceil(64);
        let mut by_value: HashMap<Atom, Vec<u64>> = HashMap::new();
        for (id, tuple) in snapshot.iter().enumerate() {
            let Some(&atom) = tuple.get(pos) else { continue };
            by_value.entry(atom).or_insert_with(|| vec![0u64; words])[id / 64] |= 1u64 << (id % 64);
        }
        let idx = Arc::new(BitIndex { len, words, by_value });
        let mut cache = self.cache.write().expect("relation cache lock poisoned");
        let entry = cache.bit_indexes.entry(pos).or_insert_with(|| Arc::clone(&idx));
        Arc::clone(entry)
    }

    /// Set union.
    pub fn union(&self, other: &Relation) -> Relation {
        Relation::from_tuples(self.tuples.union(&other.tuples).cloned())
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &Relation) -> bool {
        self.tuples.is_subset(&other.tuples)
    }
}

impl FromIterator<Tuple> for Relation {
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Relation {
        Relation::from_tuples(iter)
    }
}

/// A flat database: relation name → relation.
///
/// Missing relations read as empty, so any database is usable with any
/// schema (the paper's queries are monotone, making this the right default).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Database {
    relations: BTreeMap<RelName, Relation>,
}

impl Database {
    /// The empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Convenience: builds a database from `(name, tuples)` lists of
    /// integer-atom tuples (the common shape in tests).
    pub fn from_ints(rels: &[(&str, &[&[i64]])]) -> Database {
        let mut db = Database::new();
        for (name, tuples) in rels {
            let rel = db.relation_mut(RelName::new(name));
            for t in *tuples {
                rel.insert(t.iter().map(|&i| Atom::int(i)).collect());
            }
        }
        db
    }

    /// Read access to a relation (empty if absent).
    pub fn relation(&self, name: RelName) -> Relation {
        self.relations.get(&name).cloned().unwrap_or_default()
    }

    /// Borrowed read access, `None` if the relation was never written.
    pub fn relation_ref(&self, name: RelName) -> Option<&Relation> {
        self.relations.get(&name)
    }

    /// Mutable access, creating the relation if absent.
    pub fn relation_mut(&mut self, name: RelName) -> &mut Relation {
        self.relations.entry(name).or_default()
    }

    /// Inserts one fact.
    pub fn insert(&mut self, name: RelName, tuple: Tuple) {
        self.relation_mut(name).insert(tuple);
    }

    /// Iterates over `(name, relation)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&RelName, &Relation)> {
        self.relations.iter()
    }

    /// Total number of facts across relations.
    pub fn fact_count(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Union of two databases (relation-wise).
    pub fn union(&self, other: &Database) -> Database {
        let mut out = self.clone();
        for (name, rel) in other.iter() {
            let target = out.relation_mut(*name);
            for t in rel.iter() {
                target.insert(t.clone());
            }
        }
        out
    }

    /// The set of all atoms occurring in the database (its active domain).
    pub fn active_domain(&self) -> HashSet<Atom> {
        let mut dom = HashSet::new();
        for (_, rel) in self.iter() {
            for t in rel.iter() {
                dom.extend(t.iter().copied());
            }
        }
        dom
    }

    /// Views a relation as a complex-object value — a set of records over
    /// the schema's attribute labels — bridging to the `co-object` layer.
    pub fn relation_as_value(&self, schema: &Schema, name: RelName) -> Option<Value> {
        let rs = schema.relation(name)?;
        let rel = self.relation(name);
        let mut elems = Vec::with_capacity(rel.len());
        for t in rel.iter() {
            if t.len() != rs.arity() {
                return None;
            }
            let fields: Vec<(Field, Value)> =
                rs.attrs.iter().zip(t.iter()).map(|(&a, &v)| (a, Value::Atom(v))).collect();
            elems.push(Value::record(fields).expect("schema attrs are distinct"));
        }
        Some(Value::set(elems))
    }

    /// The flat-relation type of a relation under a schema.
    pub fn relation_type(schema: &Schema, name: RelName) -> Option<Type> {
        schema.relation(name).map(|rs| Type::flat_relation(&rs.attrs))
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, rel) in self.iter() {
            for t in rel.iter_sorted() {
                write!(f, "{name}(")?;
                for (i, a) in t.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                writeln!(f, ")")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relations_are_sets() {
        let mut r = Relation::new();
        assert!(r.insert(vec![Atom::int(1), Atom::int(2)]));
        assert!(!r.insert(vec![Atom::int(1), Atom::int(2)]));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&[Atom::int(1), Atom::int(2)]));
    }

    #[test]
    fn missing_relations_read_empty() {
        let db = Database::new();
        assert!(db.relation(RelName::new("nope")).is_empty());
        assert!(db.relation_ref(RelName::new("nope")).is_none());
    }

    #[test]
    fn union_merges_facts() {
        let a = Database::from_ints(&[("R", &[&[1, 2]])]);
        let b = Database::from_ints(&[("R", &[&[3, 4]]), ("S", &[&[5]])]);
        let u = a.union(&b);
        assert_eq!(u.fact_count(), 3);
        assert!(u.relation(RelName::new("R")).contains(&[Atom::int(1), Atom::int(2)]));
        assert!(u.relation(RelName::new("S")).contains(&[Atom::int(5)]));
    }

    #[test]
    fn active_domain_collects_atoms() {
        let db = Database::from_ints(&[("R", &[&[1, 2], &[2, 3]])]);
        let dom = db.active_domain();
        assert_eq!(dom.len(), 3);
    }

    #[test]
    fn bit_index_matches_snapshot_columns() {
        let mut r = Relation::new();
        for i in 0..70i64 {
            r.insert(vec![Atom::int(i % 3), Atom::int(i)]);
        }
        let snapshot = r.snapshot();
        let idx = r.bit_index(0);
        assert_eq!(idx.len(), 70);
        assert_eq!(idx.words(), 2);
        for value in 0..3i64 {
            let bits = idx.bits(Atom::int(value)).unwrap();
            for (id, tuple) in snapshot.iter().enumerate() {
                let set = bits[id / 64] >> (id % 64) & 1 != 0;
                assert_eq!(set, tuple[0] == Atom::int(value), "value {value} id {id}");
            }
        }
        assert!(idx.bits(Atom::int(99)).is_none());
        let full = idx.full_domain();
        assert_eq!(full.iter().map(|w| w.count_ones()).sum::<u32>(), 70);
        // Mutation invalidates the cached bit index.
        r.insert(vec![Atom::int(7), Atom::int(1000)]);
        assert_eq!(r.bit_index(0).len(), 71);
    }

    #[test]
    fn relation_as_value_builds_records() {
        let schema = Schema::with_relations(&[("R", &["A", "B"])]);
        let db = Database::from_ints(&[("R", &[&[1, 2]])]);
        let v = db.relation_as_value(&schema, RelName::new("R")).unwrap();
        assert_eq!(v.to_string(), "{[A: 1, B: 2]}");
        let ty = Database::relation_type(&schema, RelName::new("R")).unwrap();
        assert!(ty.is_flat_relation());
        co_object::check_type(&v, &ty).unwrap();
    }
}
