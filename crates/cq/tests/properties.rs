//! Property tests tying the classical containment decider to the
//! *definitional* semantics: `Q1 ⊑ Q2` iff `Q1(D) ⊆ Q2(D)` for every `D`.
//!
//! * Soundness: whenever the decider answers "contained", evaluation on
//!   random databases never produces a violating tuple.
//! * Completeness: whenever it answers "not contained", the canonical
//!   database of `Q1` *is* a concrete counterexample (this is exactly the
//!   Chandra–Merlin argument, checked by running the evaluator).

use co_cq::generate::{CqGen, CqGenConfig};
use co_cq::{evaluate, freeze, is_contained_in, minimize};
use proptest::prelude::*;

fn gen_pair(seed: u64) -> (co_cq::ConjunctiveQuery, co_cq::ConjunctiveQuery) {
    let mut g = CqGen::new(seed, CqGenConfig::default());
    (g.query(), g.query())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn containment_sound_on_random_databases(seed in any::<u64>(), db_seed in any::<u64>()) {
        let (q1, q2) = gen_pair(seed);
        if is_contained_in(&q1, &q2) {
            let mut g = CqGen::new(db_seed, CqGenConfig::default());
            for size in [3, 6] {
                let db = g.database(size, 4);
                let r1 = evaluate(&q1, &db);
                let r2 = evaluate(&q2, &db);
                prop_assert!(r1.is_subset(&r2), "q1={q1} q2={q2} db:\n{db}");
            }
        }
    }

    #[test]
    fn non_containment_witnessed_by_canonical_db(seed in any::<u64>()) {
        let (q1, q2) = gen_pair(seed);
        if q1.unsatisfiable || q1.arity() != q2.arity() {
            return Ok(());
        }
        if !is_contained_in(&q1, &q2) {
            let frozen = freeze(&q1);
            let head = frozen.head_image(&q1);
            let r1 = evaluate(&q1, &frozen.db);
            let r2 = evaluate(&q2, &frozen.db);
            prop_assert!(r1.contains(&head), "frozen head must be in Q1's answer");
            prop_assert!(!r2.contains(&head), "q1={q1} q2={q2}: counterexample failed");
        }
    }

    #[test]
    fn containment_is_reflexive_and_transitive(seed in any::<u64>()) {
        let (q1, q2) = gen_pair(seed);
        prop_assert!(is_contained_in(&q1, &q1));
        prop_assert!(is_contained_in(&q2, &q2));
        let (_, q3) = gen_pair(seed.wrapping_add(1));
        if is_contained_in(&q1, &q2) && is_contained_in(&q2, &q3) {
            prop_assert!(is_contained_in(&q1, &q3), "q1={q1} q2={q2} q3={q3}");
        }
    }

    #[test]
    fn minimization_preserves_equivalence(seed in any::<u64>()) {
        let (q, _) = gen_pair(seed);
        let m = minimize(&q);
        prop_assert!(m.body.len() <= q.body.len());
        prop_assert!(is_contained_in(&q, &m) && is_contained_in(&m, &q), "q={q} m={m}");
        // Minimization is idempotent.
        let mm = minimize(&m);
        prop_assert_eq!(mm.body.len(), m.body.len());
    }

    #[test]
    fn certificates_always_verify(seed in any::<u64>()) {
        let (q1, q2) = gen_pair(seed);
        if let Some(co_cq::Certificate::Mapping(m)) = co_cq::contained_in(&q1, &q2) {
            prop_assert!(m.verify(&q1, &q2), "q1={q1} q2={q2}");
        }
    }

    #[test]
    fn evaluation_is_monotone(seed in any::<u64>(), db_seed in any::<u64>()) {
        // COQL and CQs are monotone languages; the containment order of the
        // paper leans on this. Adding facts never removes answers.
        let (q, _) = gen_pair(seed);
        let mut g = CqGen::new(db_seed, CqGenConfig::default());
        let small = g.database(3, 4);
        let extra = g.database(3, 4);
        let big = small.union(&extra);
        let r_small = evaluate(&q, &small);
        let r_big = evaluate(&q, &big);
        prop_assert!(r_small.is_subset(&r_big), "q={q}");
    }
}
