//! Differential tests: the indexed MRV engine against the linear-scan
//! oracle on seeded random query/database pairs. Seeded (`co-prng`),
//! offline, part of the default test gate.
//!
//! Checked invariants, per generated instance:
//!
//! * identical solution *sets* under `for_each` (and identical
//!   `SearchOutcome` when no budget is set);
//! * identical satisfiability (`first()` some-ness), and every `first()`
//!   answer is a member of the oracle's solution set;
//! * identical behaviour under `forbidden` sets;
//! * budget semantics: one step per candidate probe in both engines, and
//!   the indexed engine never needs *more* probes than the linear scan to
//!   exhaust the same instance.

use std::collections::HashSet;
use std::ops::ControlFlow;

use co_cq::generate::{CqGen, CqGenConfig};
use co_cq::hom::CandidateStrategy;
use co_cq::{Assignment, Database, HomProblem, SearchOutcome, Var};
use co_object::Atom;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Canonical, comparable form of a solution set.
fn solutions(
    q: &co_cq::ConjunctiveQuery,
    db: &Database,
    strategy: CandidateStrategy,
    forbidden: &std::collections::HashMap<Var, HashSet<Atom>>,
) -> (Vec<Vec<(Var, Atom)>>, SearchOutcome) {
    let mut out: Vec<Vec<(Var, Atom)>> = Vec::new();
    let outcome = HomProblem::new(&q.body, db)
        .with_strategy(strategy)
        .with_forbidden(forbidden.clone())
        .for_each(|a| {
            let mut row: Vec<(Var, Atom)> = a.iter().map(|(&v, &x)| (v, x)).collect();
            row.sort();
            out.push(row);
            ControlFlow::Continue(())
        });
    out.sort();
    out.dedup();
    (out, outcome)
}

/// Probes used by a strategy to exhaust the instance (found by binary
/// search on the budget: the smallest budget that does not trip).
fn probes_to_exhaust(q: &co_cq::ConjunctiveQuery, db: &Database, s: CandidateStrategy) -> u64 {
    let trips = |b: u64| {
        HomProblem::new(&q.body, db)
            .with_strategy(s)
            .with_budget(b)
            .for_each(|_| ControlFlow::Continue(()))
            == SearchOutcome::BudgetExceeded
    };
    if !trips(0) {
        return 0;
    }
    let mut lo = 0u64;
    let mut hi = 1u64;
    while trips(hi) {
        lo = hi;
        hi *= 2;
        assert!(hi < 1 << 40, "instance unexpectedly expensive");
    }
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if trips(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

#[test]
fn indexed_engine_matches_linear_oracle_on_random_instances() {
    let empty = std::collections::HashMap::new();
    for seed in 0..120u64 {
        let config = CqGenConfig {
            relations: 2,
            arity: 2,
            atoms: 3 + (seed as usize % 3),
            var_pool: 4,
            const_pct: 20,
            const_pool: 3,
            head_width: 2,
        };
        let mut g = CqGen::new(seed, config);
        let q = g.query();
        let db = g.database(8, 5);
        let (sols_i, out_i) = solutions(&q, &db, CandidateStrategy::Indexed, &empty);
        let (sols_l, out_l) = solutions(&q, &db, CandidateStrategy::LinearScan, &empty);
        assert_eq!(sols_i, sols_l, "seed {seed}: solution sets differ for {q}");
        assert_eq!(out_i, out_l, "seed {seed}: budget-less outcomes differ");

        // first(): identical some-ness, answers drawn from the oracle set.
        let first_i = HomProblem::new(&q.body, &db)
            .with_strategy(CandidateStrategy::Indexed)
            .first()
            .unwrap();
        let first_l = HomProblem::new(&q.body, &db)
            .with_strategy(CandidateStrategy::LinearScan)
            .first()
            .unwrap();
        assert_eq!(first_i.is_some(), first_l.is_some(), "seed {seed}: satisfiability differs");
        if let Some(a) = &first_i {
            let mut row: Vec<(Var, Atom)> = a.iter().map(|(&v, &x)| (v, x)).collect();
            row.sort();
            assert!(sols_l.contains(&row), "seed {seed}: indexed first() not in oracle set");
        }
    }
}

#[test]
fn forbidden_sets_are_respected_identically() {
    for seed in 200..280u64 {
        let mut g = CqGen::new(seed, CqGenConfig::default());
        let q = g.query();
        let db = g.database(6, 4);
        // Forbid a pseudo-random slice of the active domain for each of the
        // first two body variables.
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF0F0);
        let dom: Vec<Atom> = {
            let mut d: Vec<Atom> = db.active_domain().into_iter().collect();
            d.sort();
            d
        };
        let mut forbidden: std::collections::HashMap<Var, HashSet<Atom>> =
            std::collections::HashMap::new();
        for v in q.body_vars().into_iter().take(2) {
            let picks: HashSet<Atom> = dom.iter().filter(|_| rng.gen_bool(0.4)).copied().collect();
            forbidden.insert(v, picks);
        }
        let (sols_i, _) = solutions(&q, &db, CandidateStrategy::Indexed, &forbidden);
        let (sols_l, _) = solutions(&q, &db, CandidateStrategy::LinearScan, &forbidden);
        assert_eq!(sols_i, sols_l, "seed {seed}: forbidden sets change solutions for {q}");
        // Forbidden values never appear in any reported solution.
        for row in &sols_i {
            for (v, a) in row {
                assert!(
                    !forbidden.get(v).is_some_and(|set| set.contains(a)),
                    "seed {seed}: forbidden value leaked"
                );
            }
        }
    }
}

#[test]
fn fixed_bindings_are_respected_identically() {
    for seed in 300..360u64 {
        let mut g = CqGen::new(seed, CqGenConfig::default());
        let q = g.query();
        let db = g.database(6, 4);
        // Fix the first body variable to each domain value in turn.
        let Some(&v) = q.body_vars().iter().next() else { continue };
        let mut dom: Vec<Atom> = db.active_domain().into_iter().collect();
        dom.sort();
        for a in dom.into_iter().take(3) {
            let mut fixed = Assignment::new();
            fixed.insert(v, a);
            let run = |s: CandidateStrategy| {
                let mut out = Vec::new();
                HomProblem::new(&q.body, &db).with_strategy(s).with_fixed(fixed.clone()).for_each(
                    |m| {
                        let mut row: Vec<(Var, Atom)> = m.iter().map(|(&v, &x)| (v, x)).collect();
                        row.sort();
                        out.push(row);
                        ControlFlow::Continue(())
                    },
                );
                out.sort();
                out
            };
            assert_eq!(
                run(CandidateStrategy::Indexed),
                run(CandidateStrategy::LinearScan),
                "seed {seed}: fixed binding {v}={a} diverges"
            );
        }
    }
}

#[test]
fn budget_semantics_agree_and_indexed_probes_no_more() {
    for seed in 400..440u64 {
        let config = CqGenConfig { atoms: 3, var_pool: 3, const_pct: 10, ..CqGenConfig::default() };
        let mut g = CqGen::new(seed, config);
        let q = g.query();
        let db = g.database(10, 4);
        let p_lin = probes_to_exhaust(&q, &db, CandidateStrategy::LinearScan);
        let p_idx = probes_to_exhaust(&q, &db, CandidateStrategy::Indexed);
        // MRV + index candidates only ever skip non-matching tuples the
        // linear scan would have probed.
        assert!(
            p_idx <= p_lin,
            "seed {seed}: indexed engine probed more ({p_idx} > {p_lin}) for {q}"
        );
        // A budget big enough for the linear scan is big enough for the
        // indexed engine, with identical (exhausted) outcomes.
        let run = |s, b| {
            HomProblem::new(&q.body, &db)
                .with_strategy(s)
                .with_budget(b)
                .for_each(|_| ControlFlow::Continue(()))
        };
        assert_eq!(run(CandidateStrategy::Indexed, p_lin), SearchOutcome::Exhausted);
        assert_eq!(run(CandidateStrategy::LinearScan, p_lin), SearchOutcome::Exhausted);
        // Both trip on a zero budget when any probing is needed at all.
        if p_lin > 0 && p_idx > 0 {
            assert_eq!(run(CandidateStrategy::Indexed, 0), SearchOutcome::BudgetExceeded);
            assert_eq!(run(CandidateStrategy::LinearScan, 0), SearchOutcome::BudgetExceeded);
        }
    }
}

#[test]
fn containment_agrees_across_strategies() {
    // Whole-procedure differential: classical containment decided with the
    // engine in each mode must agree verdict-for-verdict. The strategy is
    // process-global, so this test keeps all flips inside one function.
    let mut agree = 0usize;
    for seed in 0..80u64 {
        let mut g = CqGen::new(seed, CqGenConfig { atoms: 3, ..CqGenConfig::default() });
        let q1 = g.query();
        let q2 = g.query();
        co_cq::hom::set_default_strategy(CandidateStrategy::LinearScan);
        let base = co_cq::is_contained_in(&q1, &q2);
        co_cq::hom::set_default_strategy(CandidateStrategy::Indexed);
        let fast = co_cq::is_contained_in(&q1, &q2);
        assert_eq!(base, fast, "seed {seed}: containment verdicts differ for {q1} vs {q2}");
        agree += 1;
    }
    assert_eq!(agree, 80);
}
