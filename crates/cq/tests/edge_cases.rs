//! Edge cases for the relational substrate.

use std::collections::{HashMap, HashSet};
use std::ops::ControlFlow;

use co_cq::{
    boolean, evaluate, is_contained_in, minimize, parse_query, Database, HomProblem, RelName,
    Schema, Var,
};
use co_object::Atom;

#[test]
fn boolean_queries_on_empty_databases() {
    let t = parse_query("q() :- true").unwrap();
    let f = parse_query("q() :- false").unwrap();
    let db = Database::new();
    assert!(boolean(&t, &db), "the empty body holds vacuously");
    assert!(!boolean(&f, &db));
    // Containment: false ⊑ everything; true ⊑ only satisfiable-on-empty.
    assert!(is_contained_in(&f, &t));
    assert!(!is_contained_in(&t, &f));
}

#[test]
fn all_constant_heads() {
    let q = parse_query("q(1, 'tag') :- R(X).").unwrap();
    let db = Database::from_ints(&[("R", &[&[9]])]);
    let rows = co_cq::evaluate_sorted(&q, &db);
    assert_eq!(rows, vec![vec![Atom::int(1), Atom::str("tag")]]);
    assert!(evaluate(&q, &Database::new()).is_empty());
}

#[test]
fn self_join_chains_evaluate() {
    // Transitive 3-hop over a cycle.
    let q = parse_query("q(A, D) :- E(A, B), E(B, C), E(C, D).").unwrap();
    let db = Database::from_ints(&[("E", &[&[0, 1], &[1, 2], &[2, 0]])]);
    let rows = co_cq::evaluate_sorted(&q, &db);
    assert_eq!(rows.len(), 3, "each start reaches exactly one 3-hop endpoint");
    for r in rows {
        assert_eq!(r[0], r[1], "3 hops around a 3-cycle return home");
    }
}

#[test]
fn forbidden_sets_prune_without_changing_answers() {
    let db = Database::from_ints(&[("R", &[&[1], &[2], &[3]])]);
    let q = parse_query("q(X) :- R(X).").unwrap();
    let mut forbidden: HashMap<Var, HashSet<Atom>> = HashMap::new();
    forbidden.insert(Var::new("X"), [Atom::int(2)].into_iter().collect());
    let mut seen = Vec::new();
    HomProblem::new(&q.body, &db).with_forbidden(forbidden).for_each(|a| {
        seen.push(a[&Var::new("X")]);
        ControlFlow::Continue(())
    });
    seen.sort();
    assert_eq!(seen, vec![Atom::int(1), Atom::int(3)]);
}

#[test]
fn forbidden_fixed_conflict_is_empty() {
    let db = Database::from_ints(&[("R", &[&[1]])]);
    let q = parse_query("q(X) :- R(X).").unwrap();
    let mut forbidden: HashMap<Var, HashSet<Atom>> = HashMap::new();
    forbidden.insert(Var::new("X"), [Atom::int(1)].into_iter().collect());
    let mut fixed = co_cq::Assignment::new();
    fixed.insert(Var::new("X"), Atom::int(1));
    assert!(!HomProblem::new(&q.body, &db).with_fixed(fixed).with_forbidden(forbidden).exists());
}

#[test]
fn minimization_of_boolean_cycles() {
    // A 6-cycle folds onto a 2-cycle... no: boolean 6-cycle's core is the
    // smallest cycle it maps onto — for directed cycles, C6 → C3, C2, C1?
    // hom C6 → C2 exists (alternate); C6 → C1 needs a self-loop. So the
    // core of the C6 query is C2? A hom C6→C2 exists and C2→C2 is minimal:
    // the core has 2 atoms... but the core must be a SUBQUERY of C6, and
    // C2 is not a subgraph of C6. Subquery-minimality keeps all 6 atoms?
    // Dropping one atom yields a 5-path, which folds onto... P5 ⊑ C6?
    // Containment requires hom C6 → frozen P5: a cycle cannot map into a
    // path (no cycles there). So the 6-cycle query is subquery-minimal.
    let c6 = parse_query("q() :- E(A,B), E(B,C), E(C,D), E(D,F), E(F,G), E(G,A).").unwrap();
    let m = minimize(&c6);
    assert_eq!(m.body.len(), 6);
}

#[test]
fn schema_replacement_and_empty_schema() {
    let mut s = Schema::new();
    assert!(s.is_empty());
    s.add(co_cq::RelSchema::new("R", &["A"]));
    s.add(co_cq::RelSchema::new("R", &["A", "B"])); // replace
    assert_eq!(s.arity(RelName::new("R")), Some(2));
}

#[test]
fn containment_with_repeated_constants() {
    let q1 = parse_query("q(X) :- R(X, 1), R(1, X).").unwrap();
    let q2 = parse_query("q(X) :- R(X, 1).").unwrap();
    assert!(is_contained_in(&q1, &q2));
    assert!(!is_contained_in(&q2, &q1));
    // And the diagonal: q(1) :- R(1,1) sits below both.
    let diag = parse_query("q(1) :- R(1, 1).").unwrap();
    assert!(is_contained_in(&diag, &q1));
    assert!(is_contained_in(&diag, &q2));
}

#[test]
fn views_unfold_within_views_do_not_recurse() {
    // A view used inside another view's *definition* is not expanded by a
    // single unfold (definitions are over base relations by contract);
    // check the documented behaviour: unknown atoms pass through.
    let views = vec![co_cq::View::new("V", parse_query("v(X) :- W(X).").unwrap())];
    let rewriting = parse_query("q(X) :- V(X).").unwrap();
    let expansion = co_cq::unfold(&rewriting, &views).unwrap();
    assert_eq!(expansion.body.len(), 1);
    assert_eq!(expansion.body[0].rel, RelName::new("W"));
}

#[test]
fn update_independence_of_constants_only_queries() {
    let q = parse_query("q(1) :- S(Y).").unwrap();
    // Insertions into S can turn the answer from {} to {(1)}.
    assert!(!co_cq::independent_of_insertions(&q, RelName::new("S")));
    assert!(co_cq::independent_of_updates(&q, RelName::new("R")));
}

#[test]
fn mutation_invalidates_snapshot_and_indexes() {
    // A stale index must never be observable: pin the pre-mutation
    // snapshot/index, mutate, and check fresh lookups see the new tuple.
    let mut r = co_cq::Relation::from_tuples([vec![Atom::int(1), Atom::int(2)]]);
    let old_snap = r.snapshot();
    let old_idx = r.pattern_index(0b01);
    assert_eq!(old_idx.candidates(&[Atom::int(1)]), &[0]);
    assert_eq!(old_idx.candidates(&[Atom::int(3)]), &[] as &[u32]);

    r.insert(vec![Atom::int(3), Atom::int(4)]);

    // Pinned Arcs still describe the old state (snapshot semantics)...
    assert_eq!(old_snap.len(), 1);
    assert_eq!(old_idx.candidate_count(&[Atom::int(3)]), 0);
    // ...but anything fetched after the mutation is rebuilt fresh.
    let new_snap = r.snapshot();
    assert_eq!(new_snap.len(), 2);
    let new_idx = r.pattern_index(0b01);
    assert_eq!(new_idx.candidates(&[Atom::int(3)]), &[1]);
    assert_eq!(new_idx.key_count(), 2);

    // A no-op insert (duplicate tuple) keeps the cache: same Arc.
    let pinned = r.snapshot();
    r.insert(vec![Atom::int(3), Atom::int(4)]);
    assert!(std::sync::Arc::ptr_eq(&pinned, &r.snapshot()));
}

#[test]
fn engine_sees_fresh_index_after_database_mutation() {
    // End-to-end: the same query flips from unsatisfiable to satisfiable
    // once the relevant tuple is inserted — the engine must not answer from
    // a cached index built before the mutation.
    let q = parse_query("q() :- R(1, X), S(X).").unwrap();
    let mut db = Database::from_ints(&[("R", &[&[1, 2]]), ("S", &[&[9]])]);
    assert!(!boolean(&q, &db), "no S-tuple joins yet");
    // Warm the caches explicitly, then mutate through the database.
    let _ = db.relation_ref(RelName::new("S")).unwrap().pattern_index(0b1);
    db.relation_mut(RelName::new("S")).insert(vec![Atom::int(2)]);
    assert!(boolean(&q, &db), "insert must invalidate the S index");
}
