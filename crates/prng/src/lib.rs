//! # co-prng — a std-only stand-in for the slice of `rand` this workspace uses
//!
//! The build environment has no crates.io access, so the workspace cannot
//! fetch `rand`. Every use site in this repo needs exactly three things:
//! `StdRng::seed_from_u64`, `Rng::gen_range` over integer ranges, and
//! `Rng::gen_bool`. This crate provides those with the same paths and
//! signatures, and the workspace manifest renames it to `rand`
//! (`rand = { path = "crates/prng", package = "co-prng" }`) so call sites
//! keep writing `use rand::{Rng, SeedableRng}` unchanged.
//!
//! The generator is **sfc64** (Chris Doty-Humphrey's small fast counting
//! RNG): 256 bits of state, passes PractRand, and is trivially seedable
//! from a `u64` via splitmix64. It is *not* the same stream as `rand`'s
//! `StdRng` (ChaCha12); all in-repo consumers only require determinism
//! for a fixed seed, not a particular stream.

#![warn(missing_docs)]

/// Low-level entropy source: everything else derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding, mirroring `rand::SeedableRng`'s `seed_from_u64` entry point.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample from `range` (`Range` or `RangeInclusive`).
    ///
    /// # Panics
    /// Panics if the range is empty, like `rand`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        // 53 high bits → uniform in [0, 1) with full f64 precision.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that knows how to sample itself — the shim's counterpart of
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

/// Types uniformly sampleable from a range — the shim's counterpart of
/// `SampleUniform`. The *single* blanket `SampleRange` impl per range shape
/// below is load-bearing for type inference: it lets
/// `rng.gen_range(0..100) < some_u32` unify the literal with `u32` exactly
/// as `rand` does.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform in `[lo, hi)`; callers guarantee `lo < hi`.
    fn sample_exclusive<G: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut G) -> Self;
    /// Uniform in `[lo, hi]`; callers guarantee `lo <= hi`.
    fn sample_inclusive<G: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut G) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<G: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut G) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
            fn sample_inclusive<G: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut G) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_exclusive(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator (sfc64 under the hood).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        a: u64,
        b: u64,
        c: u64,
        counter: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // Expand the seed with splitmix64, then warm up: sfc64's own
            // seeding discipline (12 rounds) decorrelates nearby seeds.
            let mut s = seed;
            let mut split = move || {
                s = s.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            let mut rng = StdRng { a: split(), b: split(), c: split(), counter: 1 };
            for _ in 0..12 {
                rng.next_u64();
            }
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.a.wrapping_add(self.b).wrapping_add(self.counter);
            self.counter = self.counter.wrapping_add(1);
            self.a = self.b ^ (self.b >> 11);
            self.b = self.c.wrapping_add(self.c << 3);
            self.c = self.c.rotate_left(24).wrapping_add(out);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
        let mut c = StdRng::seed_from_u64(43);
        let differs = (0..100).any(|_| a.gen_range(0..100u64) != c.gen_range(0..100u64));
        assert!(differs, "seeds 42 and 43 should produce different streams");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let x = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&x));
            let y = rng.gen_range(3..=3usize);
            assert_eq!(y, 3);
            let z = rng.gen_range(0..100usize);
            assert!(z < 100);
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "bucket count {c} far from 1000");
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&heads), "p=0.25 gave {heads}/10000");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        StdRng::seed_from_u64(0).gen_range(5..5u32);
    }
}
