//! Scenario: nested data, the Hoare order, and the §5.1 index encoding.
//!
//! Run with: `cargo run --example nested_catalog`
//!
//! A product catalog stored as complex objects (products with nested tag
//! sets and per-region price lists). Shows:
//!
//! 1. the containment order `⊑` on complex objects and why it is the right
//!    notion of "more information" (lower powerdomain, §3.2);
//! 2. encoding the nested catalog into flat relations with indexes and
//!    decoding it back (§5.1);
//! 3. `nest`/`unnest`/`outernest` restructuring on values, and deciding a
//!    `nest;unnest` sequence identity (the paper's §4 application).

use coql_containment::encode::{decode_database, encode_database};
use coql_containment::prelude::*;

fn main() {
    // The catalog type: products with a tag set and a price list.
    let product_ty = Type::set(Type::record(vec![
        (co_object::Field::new("sku"), Type::Atom),
        (co_object::Field::new("tags"), Type::set(Type::Atom)),
        (
            co_object::Field::new("prices"),
            Type::set(Type::record(vec![
                (co_object::Field::new("region"), Type::Atom),
                (co_object::Field::new("price"), Type::Atom),
            ])),
        ),
    ]));
    let coql_schema = CoqlSchema::new().with("Catalog", product_ty);

    let small = parse_value("{[sku: kettle, tags: {kitchen}, prices: {[region: eu, price: 40]}]}")
        .expect("parses");
    let big = parse_value(
        "{[sku: kettle, tags: {kitchen, steel}, prices: {[region: eu, price: 40], \
           [region: us, price: 45]}], \
          [sku: lamp, tags: {}, prices: {}]}",
    )
    .expect("parses");

    // 1. The Hoare order: the smaller catalog is an under-approximation.
    assert!(hoare_leq(&small, &big));
    assert!(!hoare_leq(&big, &small));
    println!("small catalog ⊑ big catalog (lower powerdomain order)");
    // Graph simulation agrees (§3.2's 'simulation between graphs').
    assert!(co_object::hoare_leq_graph(&small, &big));

    // 2. Index encoding: nested sets become flat relations with indexes.
    let codb = CoDatabase::new().with("Catalog", big.clone());
    let encoded = encode_database(&codb, &coql_schema).expect("encodes");
    println!("\nflat encoding produces {} relations:", encoded.schema.len());
    for rel in encoded.schema.iter() {
        println!(
            "  {}({}) — {} rows",
            rel.name,
            rel.attrs.iter().map(|a| a.name()).collect::<Vec<_>>().join(", "),
            encoded.db.relation(rel.name).len()
        );
    }
    let decoded = decode_database(&encoded, &coql_schema).expect("decodes");
    assert_eq!(decoded.relation(co_cq::RelName::new("Catalog")), big);
    println!("decode(encode(catalog)) = catalog ✓");

    // 3. Restructuring with the Thomas–Fischer operators.
    let sales = parse_value(
        "{[sku: kettle, region: eu], [sku: kettle, region: us], [sku: lamp, region: eu]}",
    )
    .expect("parses");
    let by_sku = co_algebra::nest(
        &sales,
        &[co_object::Field::new("region")],
        co_object::Field::new("regions"),
    )
    .expect("nests");
    println!("\nnest by sku: {by_sku}");
    let back = co_algebra::unnest(&by_sku, co_object::Field::new("regions")).expect("unnests");
    assert_eq!(back, sales);

    // And the *decision procedure* proves nest;unnest ≡ identity for every
    // database, not just this one (NP-complete by §4).
    let flat = Schema::with_relations(&[("Sales", &["sku", "region"])]);
    let seq =
        NuSeq::new("Sales", vec![NuOp::nest(&["region"], "regions"), NuOp::unnest("regions")]);
    let id = NuSeq::new("Sales", vec![]);
    assert!(equivalent_sequences(&seq, &id, &flat).expect("atomic nesting"));
    println!("decided: (ν_region ; μ_regions) ≡ identity on every database ✓");
}
