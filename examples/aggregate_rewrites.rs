//! Scenario: validating GROUP BY / aggregate rewrites (§7).
//!
//! Run with: `cargo run --example aggregate_rewrites`
//!
//! Optimizers rewrite aggregate queries (predicate pushdown, join
//! elimination, group-by placement — refs [17, 13, 29, 35, 28] of the
//! paper). §7 gives the missing *test*: equivalence of conjunctive queries
//! with grouping and uninterpreted aggregates is NP-complete and decidable
//! through group-structure comparison. This example validates three
//! candidate rewrites of an order-analytics query.

use coql_containment::prelude::*;

fn main() {
    // Orders(customer, item); Vip(customer).
    // Report: per customer, the number of distinct items ordered.
    let original = AggQuery::parse("q(C) :- Orders(C, I).", &[("count", "I")]).expect("parses");
    println!("original: {original}");

    // Rewrite 1: a self-join the planner introduced while decorrelating.
    // Redundant — provably equivalent.
    let self_join =
        AggQuery::parse("q(C) :- Orders(C, I), Orders(C, J).", &[("count", "I")]).expect("parses");
    assert!(agg_equivalent(&original, &self_join));
    println!("rewrite 1 (redundant self-join): EQUIVALENT ✓");

    // Rewrite 2: restrict to VIP customers — changes both the key set and
    // nothing else; containment fails both ways for the *aggregate* query
    // (missing groups), so the rewriter must keep the filter semantics.
    let vips_only =
        AggQuery::parse("q(C) :- Orders(C, I), Vip(C).", &[("count", "I")]).expect("parses");
    assert!(!agg_equivalent(&original, &vips_only));
    println!("rewrite 2 (added VIP filter): NOT equivalent ✗ (correctly rejected)");

    // Rewrite 3: group by item instead of customer — same shape, wrong
    // grouping column. The decider catches it even though the flat parts
    // are symmetric.
    let by_item = AggQuery::parse("q(I) :- Orders(C, I).", &[("count", "C")]).expect("parses");
    assert!(!agg_equivalent(&original, &by_item));
    println!("rewrite 3 (grouped by item): NOT equivalent ✗ (correctly rejected)");

    // Cross-check rewrite 1 on concrete data with the *interpreted* count.
    let db = Database::from_ints(&[("Orders", &[&[1, 10], &[1, 11], &[2, 10], &[2, 10]])]);
    let r1 = original.evaluate(&db).expect("interpreted");
    let r2 = self_join.evaluate(&db).expect("interpreted");
    assert_eq!(r1, r2);
    println!("\ninterpreted check on sample data:");
    for row in r1.iter_sorted() {
        println!("  customer {} ordered {} distinct items", row[0], row[1]);
    }

    // Hidden-key variant: if the report drops the customer column and only
    // publishes the multiplicities, equivalence needs strong simulation
    // (§6) — grouping by customer vs. the single global group differ:
    let hidden_global = AggQuery::parse("q() :- Orders(C, I).", &[("count", "I")]).expect("parses");
    assert!(!co_agg::hidden_key_equivalent(&original, &hidden_global));
    println!("\nhidden-key check: per-customer counts ≢ global count ✓");
}
