//! Scenario: a query optimizer using containment tests.
//!
//! Run with: `cargo run --example view_optimizer`
//!
//! The paper's motivation (§1): containment underlies finding redundant
//! subgoals, testing whether two formulations of a query are equivalent,
//! and answering queries using views. This example plays a miniature
//! optimizer over a travel database:
//!
//! 1. minimize a conjunctive query (drop redundant joins);
//! 2. check that a rewriting of a nested COQL report is safe (containment
//!    both ways);
//! 3. detect an *unsafe* "optimization" a naive rewriter might propose.

use coql_containment::prelude::*;

fn main() {
    // Flights between cities; hotels per city.
    let schema =
        Schema::with_relations(&[("Flight", &["src", "dst"]), ("Hotel", &["city", "name"])]);

    // 1. Classical minimization: a join query with a redundant atom.
    let verbose =
        parse_query("q(X, Y) :- Flight(X, Y), Flight(X, Z), Hotel(Y, H).").expect("parses");
    let core = co_cq::minimize(&verbose);
    println!("original : {verbose}");
    println!("minimized: {core}");
    assert_eq!(core.body.len(), 2, "Flight(X, Z) is implied by Flight(X, Y)");
    assert!(co_cq::equivalent(&verbose, &core));

    // 2. A nested report: per city, the reachable cities that have hotels.
    let report = parse_coql(
        "select [from: f.src, options: \
            (select [city: g.dst, hotel: h.name] \
             from g in Flight, h in Hotel \
             where g.src = f.src and h.city = g.dst)] \
         from f in Flight",
    )
    .expect("parses");

    // A rewriter proposes pushing the hotel join out of the inner select by
    // renaming variables — harmless, and provably so:
    let rewritten = parse_coql(
        "select [from: x.src, options: \
            (select [city: y.dst, hotel: z.name] \
             from y in Flight, z in Hotel \
             where y.src = x.src and z.city = y.dst)] \
         from x in Flight",
    )
    .expect("parses");
    assert!(weakly_equivalent(&report, &rewritten, &schema).expect("decidable"));
    println!("rewrite #1: weakly equivalent — SAFE");

    // 3. A *bad* rewrite drops the correlation `y.src = x.src` (turning the
    //    per-city options into the global options). Containment holds in one
    //    direction only: the optimizer must reject it.
    let bad = parse_coql(
        "select [from: x.src, options: \
            (select [city: y.dst, hotel: z.name] \
             from y in Flight, z in Hotel \
             where z.city = y.dst)] \
         from x in Flight",
    )
    .expect("parses");
    let fwd = contained_in(&report, &bad, &schema).expect("decidable");
    let bwd = contained_in(&bad, &report, &schema).expect("decidable");
    println!("rewrite #2: report ⊑ bad = {}, bad ⊑ report = {} — REJECTED", fwd.holds, bwd.holds);
    assert!(fwd.holds && !bwd.holds);

    // The decision came with a concrete refutation available on demand.
    let cex = co_core::search_counterexample(&bad, &report, &schema, 0..500)
        .expect("decidable")
        .expect("a violating database exists");
    println!("counterexample database ({} facts):\n{cex}", cex.fact_count());
}
