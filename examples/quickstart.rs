//! Quickstart: deciding containment and equivalence of COQL queries.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Walks through the paper's core workflow on a tiny employee database:
//! write two nested queries, evaluate them, compare their answers under the
//! Hoare order on one database, then decide containment *over all
//! databases* with the Theorem 4.1 procedure.

use coql_containment::prelude::*;

fn main() {
    // A flat schema: employees with department and name.
    let schema = Schema::with_relations(&[("Emp", &["dept", "name"])]);

    // Q1 groups employee names by their own department (a `nest`).
    let q1 = parse_coql(
        "select [dept: e.dept, staff: (select f.name from f in Emp where f.dept = e.dept)] \
         from e in Emp",
    )
    .expect("q1 parses");

    // Q2 is looser: each department record carries *all* employee names.
    let q2 =
        parse_coql("select [dept: e.dept, staff: (select f.name from f in Emp)] from e in Emp")
            .expect("q2 parses");

    // Evaluate both on a concrete database.
    let db = CoDatabase::new().with(
        "Emp",
        parse_value("{[dept: sales, name: ann], [dept: sales, name: bo], [dept: eng, name: cy]}")
            .expect("literal parses"),
    );
    let v1 = evaluate(&q1, &db).expect("q1 evaluates");
    let v2 = evaluate(&q2, &db).expect("q2 evaluates");
    println!("Q1(db) = {v1}");
    println!("Q2(db) = {v2}");

    // On this database, Q1's answer is below Q2's in the Hoare order…
    assert!(hoare_leq(&v1, &v2));
    assert!(!hoare_leq(&v2, &v1));
    println!("on this database: Q1(db) ⊑ Q2(db), and not conversely");

    // …and the decision procedure proves it for *every* database.
    let fwd = contained_in(&q1, &q2, &schema).expect("decidable");
    let bwd = contained_in(&q2, &q1, &schema).expect("decidable");
    println!("decided: Q1 ⊑ Q2 is {} (path: {}), Q2 ⊑ Q1 is {}", fwd.holds, fwd.path, bwd.holds);
    assert!(fwd.holds && !bwd.holds);

    // Equivalence of a query with itself, definitively (nest ⇒ no empty sets).
    match equivalent(&q1, &q1, &schema).expect("decidable") {
        Equivalence::Equivalent => println!("Q1 ≡ Q1 (no-empty-sets regime, §4)"),
        other => panic!("unexpected: {other:?}"),
    }
}
