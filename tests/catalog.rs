//! A curated catalog of containment/equivalence verdicts.
//!
//! Each entry is a hand-derived ground truth exercising one language or
//! algorithmic feature; together they form a regression net over the whole
//! pipeline. Verdicts are written as `(q1 ⊑ q2, q2 ⊑ q1)`.

use co_core::contained_in;
use co_cq::Schema;
use co_lang::parse_coql;

fn schema() -> Schema {
    Schema::with_relations(&[("R", &["A", "B"]), ("S", &["C"]), ("T", &["A", "B", "C"])])
}

struct Entry {
    label: &'static str,
    q1: &'static str,
    q2: &'static str,
    forward: bool,
    backward: bool,
}

const CATALOG: &[Entry] = &[
    // ---- flat, classical regime -------------------------------------
    Entry {
        label: "selection narrows",
        q1: "select x.B from x in R where x.A = 1",
        q2: "select x.B from x in R",
        forward: true,
        backward: false,
    },
    Entry {
        label: "different constants are incomparable",
        q1: "select x.B from x in R where x.A = 1",
        q2: "select x.B from x in R where x.A = 2",
        forward: false,
        backward: false,
    },
    Entry {
        label: "redundant self-join is invisible",
        q1: "select x.B from x in R",
        q2: "select x.B from x in R, y in R where y.A = x.A",
        forward: true,
        backward: true,
    },
    Entry {
        label: "join with S narrows",
        q1: "select x.B from x in R, s in S where s.C = x.B",
        q2: "select x.B from x in R",
        forward: true,
        backward: false,
    },
    Entry {
        label: "projection equality head",
        q1: "select [u: x.A, v: x.A] from x in R where x.A = x.B",
        q2: "select [u: x.A, v: x.B] from x in R where x.A = x.B",
        forward: true,
        backward: true,
    },
    Entry {
        label: "wider record heads are incomparable types",
        // same labels though: [a] vs [a]: comparable
        q1: "select [a: x.A] from x in R",
        q2: "select [a: x.B] from x in R",
        forward: false,
        backward: false,
    },
    // ---- singletons, flatten, empty sets ----------------------------
    Entry {
        label: "flatten(singleton) is identity",
        q1: "flatten({select x.A from x in R})",
        q2: "select x.A from x in R",
        forward: true,
        backward: true,
    },
    Entry {
        label: "empty set is least (as a set-valued field)",
        q1: "select [a: x.A, g: {}] from x in R",
        q2: "select [a: x.A, g: {x.B}] from x in R",
        forward: true,
        backward: false,
    },
    Entry {
        label: "singleton vs possibly-empty inner select",
        q1: "select [b: x.B, g: {y.C}] from x in R, y in S where y.C = x.B",
        q2: "select [b: x.B, g: (select y.C from y in S where y.C = x.B)] from x in R",
        forward: true,
        backward: false,
    },
    Entry {
        label: "inner singleton of constant",
        q1: "select [g: {1}] from x in R",
        q2: "select [g: {1}] from x in R, y in R",
        forward: true,
        backward: true,
    },
    // ---- grouping (nest-style) --------------------------------------
    Entry {
        label: "tight groups below loose groups",
        q1: "select [a: x.A, g: (select y.B from y in R where y.A = x.A)] from x in R",
        q2: "select [a: x.A, g: (select y.B from y in R)] from x in R",
        forward: true,
        backward: false,
    },
    Entry {
        label: "group filter narrows group",
        q1: "select [a: x.A, g: (select y.B from y in R where y.A = x.A and y.B = 1)] from x in R",
        q2: "select [a: x.A, g: (select y.B from y in R where y.A = x.A)] from x in R",
        forward: true,
        backward: false,
    },
    Entry {
        label: "grouping by different column differs",
        q1: "select [a: x.A, g: (select y.B from y in R where y.A = x.A)] from x in R",
        q2: "select [a: x.A, g: (select y.A from y in R where y.B = x.B)] from x in R",
        forward: false,
        backward: false,
    },
    Entry {
        label: "outer filter propagates through grouping",
        q1: "select [a: x.A, g: (select y.B from y in R where y.A = x.A)] from x in R where x.A = 1",
        q2: "select [a: x.A, g: (select y.B from y in R where y.A = x.A)] from x in R",
        forward: true,
        backward: false,
    },
    Entry {
        label: "renamed grouping is equivalent",
        q1: "select [a: x.A, g: (select y.B from y in R where y.A = x.A)] from x in R",
        q2: "select [a: u.A, g: (select w.B from w in R where w.A = u.A)] from u in R",
        forward: true,
        backward: true,
    },
    Entry {
        label: "group of pairs vs group of lefts",
        q1: "select [a: x.A, g: (select [l: y.B] from y in R where y.A = x.A)] from x in R",
        q2: "select [a: x.A, g: (select [l: y.B] from y in R, z in R where y.A = x.A)] from x in R",
        forward: true,
        backward: true,
    },
    // ---- specialization regime (the depth-3 soundness fix) ----------
    Entry {
        label: "inner constant pin is strictly tighter",
        q1: "select [a: x.A, g: (select [b: y.B, h: (select z.B from z in R where z.B = y.B and z.B = 1)] from y in R where y.A = x.A)] from x in R",
        q2: "select [a: x.A, g: (select [b: y.B, h: (select z.C from z in S where z.C = x.A)] from y in R where y.A = x.A)] from x in R",
        forward: false,
        backward: false,
    },
    Entry {
        label: "pinned inner group below unpinned",
        q1: "select [a: x.A, g: (select z.B from z in R where z.B = x.B and z.B = 1)] from x in R",
        q2: "select [a: x.A, g: (select z.B from z in R where z.B = x.B)] from x in R",
        forward: true,
        backward: false,
    },
    // ---- depth 3 ------------------------------------------------------
    Entry {
        label: "depth-3 reflexive variant with redundancy",
        q1: "select [a: x.A, g: (select [b: y.B, h: (select z.C from z in S where z.C = y.B)] from y in R where y.A = x.A)] from x in R",
        q2: "select [a: x.A, g: (select [b: y.B, h: (select z.C from z in S, w in S where z.C = y.B)] from y in R where y.A = x.A)] from x in R",
        forward: true,
        backward: true,
    },
    Entry {
        label: "deep filter narrows only inner level",
        q1: "select [a: x.A, g: (select [b: y.B, h: (select z.C from z in S where z.C = y.B and z.C = 1)] from y in R where y.A = x.A)] from x in R",
        q2: "select [a: x.A, g: (select [b: y.B, h: (select z.C from z in S where z.C = y.B)] from y in R where y.A = x.A)] from x in R",
        forward: true,
        backward: false,
    },
    // ---- cartesian / correlation subtleties --------------------------
    Entry {
        label: "uncorrelated inner set is the global one",
        q1: "select [g: (select y.C from y in S)] from x in R",
        q2: "select [g: (select y.C from y in S where y.C = x.A)] from x in R",
        forward: false,
        backward: true,
    },
    Entry {
        label: "product order does not matter",
        q1: "select [a: x.A, c: y.C] from x in R, y in S",
        q2: "select [a: x.A, c: y.C] from y in S, x in R",
        forward: true,
        backward: true,
    },
    Entry {
        label: "three-column relation projections",
        q1: "select [a: t.A, b: t.B] from t in T where t.C = 1",
        q2: "select [a: t.A, b: t.B] from t in T",
        forward: true,
        backward: false,
    },
];

#[test]
fn catalog_verdicts_hold() {
    let schema = schema();
    let mut failures = Vec::new();
    for e in CATALOG {
        let q1 = parse_coql(e.q1).unwrap_or_else(|err| panic!("{}: {err}", e.label));
        let q2 = parse_coql(e.q2).unwrap_or_else(|err| panic!("{}: {err}", e.label));
        let fwd = contained_in(&q1, &q2, &schema)
            .unwrap_or_else(|err| panic!("{}: {err}", e.label))
            .holds;
        let bwd = contained_in(&q2, &q1, &schema)
            .unwrap_or_else(|err| panic!("{}: {err}", e.label))
            .holds;
        if fwd != e.forward || bwd != e.backward {
            failures.push(format!(
                "{}: expected ({}, {}), got ({fwd}, {bwd})",
                e.label, e.forward, e.backward
            ));
        }
    }
    assert!(failures.is_empty(), "catalog mismatches:\n{}", failures.join("\n"));
}

#[test]
fn catalog_verdicts_match_semantics() {
    // Every negative verdict must be witnessed by a concrete database.
    let schema = schema();
    for e in CATALOG {
        let q1 = parse_coql(e.q1).unwrap();
        let q2 = parse_coql(e.q2).unwrap();
        if !e.forward {
            let cex = co_core::search_counterexample(&q1, &q2, &schema, 0..500).unwrap();
            assert!(cex.is_some(), "{}: no witness for ⋢ (forward)", e.label);
        }
        if !e.backward {
            let cex = co_core::search_counterexample(&q2, &q1, &schema, 0..500).unwrap();
            assert!(cex.is_some(), "{}: no witness for ⋢ (backward)", e.label);
        }
    }
}
