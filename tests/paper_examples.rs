//! The paper's worked examples and headline claims, as executable tests.
//!
//! The PODS'97 text is an extended abstract; where an example's full detail
//! lives in the appendix we reconstruct it from the surrounding discussion
//! (noted per test).

use coql_containment::prelude::*;

fn schema() -> Schema {
    Schema::with_relations(&[("R", &["A", "B"]), ("S", &["C"])])
}

/// §2's motivating shape (reconstructed): two groupings of the same data
/// where per-key groups are contained in looser groups — containment holds
/// even though no containment mapping exists between the flat parts alone.
#[test]
fn section_2_motivating_groups() {
    let tight =
        parse_coql("select [a: x.A, g: (select y.B from y in R where y.A = x.A)] from x in R")
            .unwrap();
    let loose = parse_coql("select [a: x.A, g: (select y.B from y in R)] from x in R").unwrap();
    assert!(contained_in(&tight, &loose, &schema()).unwrap().holds);
    assert!(!contained_in(&loose, &tight, &schema()).unwrap().holds);
}

/// §3.2: "when the result of a COQL query is a flat set … equivalence
/// follows from containment in both directions."
#[test]
fn flat_results_collapse_equivalence() {
    let q1 = parse_coql("select [b: x.B] from x in R where x.A = 1").unwrap();
    let q2 = parse_coql("select [b: y.B] from y in R where y.A = 1").unwrap();
    assert_eq!(equivalent(&q1, &q2, &schema()).unwrap(), Equivalence::Equivalent);
    let a = contained_in(&q1, &q2, &schema()).unwrap();
    assert_eq!(a.path, DecisionPath::FlatClassical);
}

/// §3.1: COQL is a conservative extension of conjunctive queries — over
/// flat inputs and outputs, COQL containment coincides with classical
/// containment of the corresponding conjunctive queries.
#[test]
fn conservativity_over_flat_queries() {
    let pairs = [
        (
            "select [a: x.A] from x in R, y in R where x.B = y.A",
            "select [a: x.A] from x in R",
            true,
        ),
        (
            "select [a: x.A] from x in R",
            "select [a: x.A] from x in R, y in R where x.B = y.A",
            false,
        ),
        (
            "select [a: x.A, b: x.B] from x in R where x.A = x.B",
            "select [a: x.A, b: x.A] from x in R where x.A = x.B",
            true,
        ),
    ];
    for (s1, s2, expected) in pairs {
        let q1 = parse_coql(s1).unwrap();
        let q2 = parse_coql(s2).unwrap();
        assert_eq!(contained_in(&q1, &q2, &schema()).unwrap().holds, expected, "{s1} ⊑ {s2}");
    }
}

/// §3.2: the containment order on complex objects is the weakest preorder
/// consistent with the relational model and preserved by the constructors.
#[test]
fn hoare_order_defining_properties() {
    // Restriction to flat relations is ⊆ (checked in crates), and the
    // empty-set asymmetry: {} ⊑ {x} but {x} ⋢ {}.
    let e = parse_value("{}").unwrap();
    let x = parse_value("{1}").unwrap();
    assert!(hoare_leq(&e, &x));
    assert!(!hoare_leq(&x, &e));
    // The classic witness that weak equivalence ≠ equality on nested sets:
    let a = parse_value("{{1}, {1, 2}}").unwrap();
    let b = parse_value("{{1, 2}}").unwrap();
    assert_ne!(a, b);
    assert!(hoare_equiv(&a, &b));
}

/// §4 + footnote 3: nest;unnest equivalence is decidable (NP-complete) when
/// nesting is governed by atomic attributes.
#[test]
fn gyssens_paredaens_van_gucht_question() {
    let flat = Schema::with_relations(&[("T", &["A", "B", "C"])]);
    // ν_B;μ ≡ id, ν_{B,C};μ ≡ id, but ν_B ≢ ν_C.
    let identity = NuSeq::new("T", vec![]);
    let nb = NuSeq::new("T", vec![NuOp::nest(&["B"], "g"), NuOp::unnest("g")]);
    let nbc = NuSeq::new("T", vec![NuOp::nest(&["B", "C"], "g"), NuOp::unnest("g")]);
    assert!(equivalent_sequences(&nb, &identity, &flat).unwrap());
    assert!(equivalent_sequences(&nbc, &identity, &flat).unwrap());
    assert!(equivalent_sequences(&nb, &nbc, &flat).unwrap());
    let group_b = NuSeq::new("T", vec![NuOp::nest(&["B"], "g")]);
    let group_c = NuSeq::new("T", vec![NuOp::nest(&["C"], "g")]);
    assert!(!equivalent_sequences(&group_b, &group_c, &flat).unwrap());
}

/// §7's shape: equivalence of aggregate queries through group structures.
#[test]
fn section_7_aggregate_equivalence() {
    let q = AggQuery::parse("q(D) :- Emp(D, N).", &[("count", "N")]).unwrap();
    let q_redundant = AggQuery::parse("q(D) :- Emp(D, N), Emp(D, M).", &[("count", "N")]).unwrap();
    assert!(agg_equivalent(&q, &q_redundant));
    let q_filtered = AggQuery::parse("q(D) :- Emp(D, N), Mgr(N).", &[("count", "N")]).unwrap();
    assert!(!agg_equivalent(&q, &q_filtered));
}

/// Simulation strictly generalizes containment: with empty index both
/// coincide; with indexes, pairs exist where flat containment of the
/// `(Ī,V̄)` heads fails but simulation holds.
#[test]
fn simulation_generalizes_containment() {
    use co_cq::parse_query;
    let q1 = IndexedQuery::from_cq(&parse_query("q(X, Y) :- R(X, Y).").unwrap(), 1);
    let q2 = IndexedQuery::from_cq(&parse_query("q(Y0, Y) :- R(X, Y), R(X, Y0).").unwrap(), 1);
    // Flat containment with heads (X,Y) vs (Y0,Y) fails…
    assert!(!co_cq::is_contained_in(&q1.as_cq(), &q2.as_cq()));
    // …but every group of q1 is inside a group of q2 (pick ī' = any member).
    assert!(is_simulated_by(&q1, &q2));
}

/// Strong simulation is strictly stronger than simulation (§6): group
/// inclusion without equality.
#[test]
fn strong_simulation_is_strictly_stronger() {
    use co_cq::parse_query;
    let filtered = IndexedQuery::from_cq(&parse_query("q(X, Y) :- R(X, Y), S(Y).").unwrap(), 1);
    let plain = IndexedQuery::from_cq(&parse_query("q(X, Y) :- R(X, Y).").unwrap(), 1);
    assert!(is_simulated_by(&filtered, &plain));
    assert!(!is_strongly_simulated_by(&filtered, &plain));
}

/// The empty-set effect end to end: two queries that agree whenever the
/// inner set is inhabited but differ through emptiness. `outernest`-style
/// grouping (inner select over another relation) vs a singleton wrapper.
#[test]
fn empty_sets_separate_queries() {
    // g is {y.C : S(y), y.C = x.B}: possibly empty.
    let outer =
        parse_coql("select [b: x.B, g: (select y.C from y in S where y.C = x.B)] from x in R")
            .unwrap();
    // g is {x.B} when S proves it: never empty *when produced*, but the
    // element only exists under the join.
    let joined =
        parse_coql("select [b: x.B, g: {y.C}] from x in R, y in S where y.C = x.B").unwrap();
    // joined ⊑ outer: each joined element has g = {x.B} ⊆ the outer group.
    assert!(contained_in(&joined, &outer, &schema()).unwrap().holds);
    // outer ⋢ joined: when the group is empty, outer still emits [b, {}]
    // but joined emits nothing — and {} ⊑ {…} cannot rescue the *record*
    // because joined has no record with that b at all.
    assert!(!contained_in(&outer, &joined, &schema()).unwrap().holds);
    // Concrete witness.
    let cex = co_core::search_counterexample(&outer, &joined, &schema(), 0..300).unwrap();
    assert!(cex.is_some());
}

/// Weak equivalence vs equivalence: mutual containment of two queries whose
/// answers may contain empty sets is reported as weak-only (the paper's
/// equivalence theorem requires empty-set freedom).
#[test]
fn weak_vs_true_equivalence() {
    let q = parse_coql("select [b: x.B, g: (select y.C from y in S where y.C = x.B)] from x in R")
        .unwrap();
    assert!(weakly_equivalent(&q, &q, &schema()).unwrap());
    assert_eq!(equivalent(&q, &q, &schema()).unwrap(), Equivalence::WeaklyEquivalentOnly);
}
