//! Workspace-level differential validation: the Theorem 4.1 decider versus
//! the reference COQL evaluator, over randomly generated nested queries.
//!
//! * **Pipeline agreement**: for every generated query, evaluating through
//!   the flattened query tree equals direct COQL evaluation on random
//!   databases (normalize/flatten preserve semantics).
//! * **Soundness**: whenever the decider says `Q1 ⊑ Q2`, no random database
//!   refutes it under the Hoare order.
//! * **Refutation completeness (empirical)**: whenever the decider says no,
//!   a small random database refutes it.

use co_core::{contained_in, evaluate_flat, prepare, random_database};
use co_cq::Schema;
use co_lang::Expr;
use co_object::hoare_leq;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn schema() -> Schema {
    Schema::with_relations(&[("R", &["A", "B"]), ("S", &["C"])])
}

/// Generates a random COQL query over the fixed schema: an outer select
/// over R (and sometimes S), a record head with an atomic field and
/// (usually) one nested select with random correlation.
fn random_query(seed: u64) -> Expr {
    let mut rng = StdRng::seed_from_u64(seed);
    let x = co_cq::Var::new("x");
    let y = co_cq::Var::new("y");
    let z = co_cq::Var::new("z");

    let outer_attr = if rng.gen_bool(0.5) { "A" } else { "B" };
    let mut bindings = vec![(x, Expr::rel("R"))];
    let mut outer_conds = Vec::new();
    if rng.gen_bool(0.3) {
        bindings.push((z, Expr::rel("S")));
        if rng.gen_bool(0.7) {
            outer_conds.push((Expr::var("z").proj("C"), Expr::var("x").proj("B")));
        }
    }
    if rng.gen_bool(0.25) {
        outer_conds.push((Expr::var("x").proj(outer_attr), Expr::int(rng.gen_range(0..3))));
    }

    let head = if rng.gen_bool(0.75) {
        // Nested head: [a: x.attr, g: (select … from y in R|S where …)].
        let (inner_rel, inner_attr) = if rng.gen_bool(0.6) { ("R", "B") } else { ("S", "C") };
        let mut inner_conds = Vec::new();
        match rng.gen_range(0..3) {
            0 if inner_rel == "R" => {
                inner_conds.push((Expr::var("y").proj("A"), Expr::var("x").proj("A")))
            }
            1 => inner_conds.push((Expr::var("y").proj(inner_attr), Expr::var("x").proj("B"))),
            _ => {}
        }
        if rng.gen_bool(0.2) {
            inner_conds.push((Expr::var("y").proj(inner_attr), Expr::int(rng.gen_range(0..3))));
        }
        let inner = Expr::Select {
            head: Box::new(Expr::var("y").proj(inner_attr)),
            bindings: vec![(y, Expr::rel(inner_rel))],
            conds: inner_conds,
        };
        Expr::record(vec![("a", Expr::var("x").proj(outer_attr)), ("g", inner)])
    } else {
        Expr::record(vec![("a", Expr::var("x").proj(outer_attr)), ("b", Expr::var("x").proj("B"))])
    };

    Expr::Select { head: Box::new(head), bindings, conds: outer_conds }
}

#[test]
fn flattening_preserves_semantics_on_random_queries() {
    let schema = schema();
    for seed in 0..120u64 {
        let q = random_query(seed);
        let p = prepare(&q, &schema).unwrap_or_else(|e| panic!("{q}: {e}"));
        for db_seed in 0..6u64 {
            let db = random_database(&schema, seed * 31 + db_seed);
            let direct = evaluate_flat(&q, &schema, &db).unwrap();
            let via_tree = p.tree.evaluate(&db);
            assert_eq!(direct, via_tree, "{q}\nDB:\n{db}");
        }
    }
}

#[test]
fn containment_decider_is_sound_on_random_pairs() {
    let schema = schema();
    let mut decided_yes = 0;
    for seed in 0..150u64 {
        let q1 = random_query(seed);
        let q2 = random_query(seed + 10_000);
        let Ok(analysis) = contained_in(&q1, &q2, &schema) else {
            continue; // incompatible result types
        };
        if !analysis.holds {
            continue;
        }
        decided_yes += 1;
        let p1 = prepare(&q1, &schema).unwrap();
        let p2 = prepare(&q2, &schema).unwrap();
        for db_seed in 0..12u64 {
            let db = random_database(&schema, seed * 131 + db_seed);
            let v1 = p1.tree.evaluate(&db);
            let v2 = p2.tree.evaluate(&db);
            assert!(
                hoare_leq(&v1, &v2),
                "UNSOUND: decided {q1} ⊑ {q2} but:\n v1={v1}\n v2={v2}\nDB:\n{db}"
            );
        }
    }
    assert!(decided_yes >= 5, "workload produced only {decided_yes} positive cases");
}

#[test]
fn negative_answers_are_refutable() {
    let schema = schema();
    let mut refuted = 0;
    let mut unrefuted = Vec::new();
    for seed in 0..60u64 {
        let q1 = random_query(seed);
        let q2 = random_query(seed + 20_000);
        let Ok(analysis) = contained_in(&q1, &q2, &schema) else {
            continue;
        };
        if analysis.holds {
            continue;
        }
        match co_core::search_counterexample(&q1, &q2, &schema, 0..600).unwrap() {
            Some(_) => refuted += 1,
            None => unrefuted.push(format!("{q1}  ⋢?  {q2}")),
        }
    }
    // The canonical-instantiation search makes refutation essentially
    // complete on this workload; any residue is a red flag worth reading.
    assert!(
        unrefuted.is_empty(),
        "unrefuted negatives ({} of {}):\n{}",
        unrefuted.len(),
        refuted + unrefuted.len(),
        unrefuted.join("\n")
    );
}

#[test]
fn containment_is_a_preorder_on_random_queries() {
    let schema = schema();
    for seed in 0..40u64 {
        let q = random_query(seed);
        if let Ok(a) = contained_in(&q, &q, &schema) {
            assert!(a.holds, "reflexivity failed for {q}");
        }
    }
}
