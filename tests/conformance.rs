//! Deterministic fixed-seed conformance suite: every decision kernel that
//! has more than one implementation is run differentially over a few
//! hundred seeded instances, and the implementations must agree exactly.
//!
//! * homomorphism search: indexed MRV engine vs. the linear-scan oracle
//!   (same solution *sets*, not just existence);
//! * simulation: the topological/worklist dispatcher, the raw HHK worklist
//!   engine, and the naive sweep oracle (same matrices);
//! * Hoare order: the memoized recursive decider vs. the
//!   simulation-via-graphs decider.
//!
//! Everything here runs in tier-1 `cargo test` — no features, no network,
//! a few seconds total. Seeds are constants so failures reproduce exactly.

use std::collections::BTreeMap;
use std::ops::ControlFlow;

use co_cq::generate::{CqGen, CqGenConfig};
use co_cq::hom::CandidateStrategy;
use co_cq::{HomProblem, SearchOutcome};
use co_object::generate::{GenConfig, ValueGen};
use co_object::{
    greatest_simulation, greatest_simulation_sweep, greatest_simulation_worklist, hoare_leq,
    hoare_leq_graph, ValueGraph,
};

/// One strategy's complete, canonically-ordered solution set.
fn all_solutions(
    atoms: &[co_cq::QueryAtom],
    db: &co_cq::Database,
    strategy: CandidateStrategy,
) -> (Vec<BTreeMap<String, String>>, SearchOutcome) {
    let mut solutions = Vec::new();
    let outcome = HomProblem::new(atoms, db).with_strategy(strategy).for_each(|assignment| {
        solutions.push(assignment.iter().map(|(v, a)| (v.to_string(), a.to_string())).collect());
        ControlFlow::Continue(())
    });
    solutions.sort();
    (solutions, outcome)
}

#[test]
fn hom_indexed_agrees_with_linear_oracle() {
    let config = CqGenConfig { atoms: 4, var_pool: 5, ..CqGenConfig::default() };
    for seed in 0..150u64 {
        let mut generator = CqGen::new(seed, config.clone());
        let query = generator.query();
        let db = generator.database(6, 4);
        let (indexed, o1) = all_solutions(&query.body, &db, CandidateStrategy::Indexed);
        let (linear, o2) = all_solutions(&query.body, &db, CandidateStrategy::LinearScan);
        assert_eq!(o1, o2, "seed {seed}: outcomes diverge");
        assert_eq!(indexed, linear, "seed {seed}: solution sets diverge for {query}");
    }
}

#[test]
fn hom_early_stop_agrees_across_strategies() {
    // `exists` (first-solution early stop) must agree even when the two
    // strategies visit the space in different orders.
    let config = CqGenConfig { atoms: 3, var_pool: 4, ..CqGenConfig::default() };
    for seed in 0..150u64 {
        let mut generator = CqGen::new(seed ^ 0x5EED, config.clone());
        let query = generator.query();
        let db = generator.database(5, 3);
        let indexed =
            HomProblem::new(&query.body, &db).with_strategy(CandidateStrategy::Indexed).exists();
        let linear =
            HomProblem::new(&query.body, &db).with_strategy(CandidateStrategy::LinearScan).exists();
        assert_eq!(indexed, linear, "seed {seed}: existence diverges for {query}");
    }
}

#[test]
fn simulation_engines_agree_on_full_matrices() {
    let config = GenConfig { max_depth: 3, max_set_len: 3, ..GenConfig::default() };
    for seed in 0..100u64 {
        let mut generator = ValueGen::new(seed, config.clone());
        let v1 = generator.value();
        let v2 = generator.value();
        let g1 = ValueGraph::from_value(&v1);
        let g2 = ValueGraph::from_value(&v2);
        let dispatched = greatest_simulation(&g1, &g2);
        let worklist = greatest_simulation_worklist(&g1, &g2);
        let sweep = greatest_simulation_sweep(&g1, &g2);
        assert_eq!(dispatched, worklist, "seed {seed}: dispatcher vs worklist on {v1} ⊑ {v2}");
        assert_eq!(dispatched, sweep, "seed {seed}: dispatcher vs sweep on {v1} ⊑ {v2}");
    }
}

#[test]
fn hoare_order_recursive_agrees_with_graph() {
    let config = GenConfig { max_depth: 3, max_set_len: 4, atom_pool: 3, ..GenConfig::default() };
    let mut checked = 0u32;
    let mut held = 0u32;
    for seed in 0..300u64 {
        let mut generator = ValueGen::new(seed.wrapping_mul(0x9E37_79B9), config.clone());
        let a = generator.value();
        let b = generator.value();
        let recursive = hoare_leq(&a, &b);
        let graph = hoare_leq_graph(&a, &b);
        assert_eq!(recursive, graph, "seed {seed}: hoare_leq diverges on {a} ⊑ {b}");
        // Reflexivity through both deciders, on the same instances.
        assert!(hoare_leq(&a, &a) && hoare_leq_graph(&a, &a), "seed {seed}: {a} ⋢ {a}");
        checked += 1;
        held += recursive as u32;
    }
    // The generator's small atom pool must make both verdicts reachable,
    // otherwise this differential test is vacuous.
    assert!(held > 0 && held < checked, "degenerate workload: {held}/{checked} held");
}
