//! Deterministic fixed-seed conformance suite: every decision kernel that
//! has more than one implementation is run differentially over a few
//! hundred seeded instances, and the implementations must agree exactly.
//!
//! * homomorphism search: indexed MRV engine vs. the bitset engine vs. the
//!   linear-scan oracle (same solution *sets*, not just existence), at 1,
//!   2, and 8 kernel threads;
//! * simulation: the topological/worklist dispatcher, the raw HHK worklist
//!   engine, and the naive sweep oracle (same matrices);
//! * Hoare order: the memoized recursive decider vs. the
//!   simulation-via-graphs decider;
//! * §5 tree containment: the parallel emptiness-pattern loop vs. the
//!   single-threaded one, and interrupt budgets under both (an expired
//!   budget may only ever produce `Interrupted` — never a wrong verdict).
//!
//! Everything here runs in tier-1 `cargo test` — no features, no network,
//! a few seconds total. Seeds are constants so failures reproduce exactly.

use std::collections::BTreeMap;
use std::ops::ControlFlow;

use co_cq::generate::{CqGen, CqGenConfig};
use co_cq::hom::CandidateStrategy;
use co_cq::{HomProblem, SearchOutcome};
use co_object::generate::{GenConfig, ValueGen};
use co_object::{
    greatest_simulation, greatest_simulation_sweep, greatest_simulation_worklist, hoare_leq,
    hoare_leq_graph, ValueGraph,
};

/// One strategy's complete, canonically-ordered solution set.
fn all_solutions(
    atoms: &[co_cq::QueryAtom],
    db: &co_cq::Database,
    strategy: CandidateStrategy,
) -> (Vec<BTreeMap<String, String>>, SearchOutcome) {
    let mut solutions = Vec::new();
    let outcome = HomProblem::new(atoms, db).with_strategy(strategy).for_each(|assignment| {
        solutions.push(assignment.iter().map(|(v, a)| (v.to_string(), a.to_string())).collect());
        ControlFlow::Continue(())
    });
    solutions.sort();
    (solutions, outcome)
}

#[test]
fn hom_indexed_agrees_with_linear_oracle() {
    let config = CqGenConfig { atoms: 4, var_pool: 5, ..CqGenConfig::default() };
    for seed in 0..150u64 {
        let mut generator = CqGen::new(seed, config.clone());
        let query = generator.query();
        let db = generator.database(6, 4);
        let (indexed, o1) = all_solutions(&query.body, &db, CandidateStrategy::Indexed);
        let (linear, o2) = all_solutions(&query.body, &db, CandidateStrategy::LinearScan);
        let (bitset, o3) = all_solutions(&query.body, &db, CandidateStrategy::Bitset);
        assert_eq!(o1, o2, "seed {seed}: outcomes diverge");
        assert_eq!(o1, o3, "seed {seed}: bitset outcome diverges");
        assert_eq!(indexed, linear, "seed {seed}: solution sets diverge for {query}");
        assert_eq!(indexed, bitset, "seed {seed}: bitset solutions diverge for {query}");
    }
}

/// Order-normalized solution set through the parallel driver.
fn parallel_solutions(
    atoms: &[co_cq::QueryAtom],
    db: &co_cq::Database,
    strategy: CandidateStrategy,
    threads: usize,
) -> Vec<BTreeMap<String, String>> {
    let mut solutions: Vec<BTreeMap<String, String>> = HomProblem::new(atoms, db)
        .with_strategy(strategy)
        .with_threads(threads)
        .solutions()
        .expect("no budget installed, search cannot be interrupted")
        .iter()
        .map(|a| a.iter().map(|(v, x)| (v.to_string(), x.to_string())).collect())
        .collect();
    solutions.sort();
    solutions
}

#[test]
fn hom_parallel_agrees_across_threads_and_strategies() {
    // Every strategy at every thread count must produce the same verdicts
    // and the same (order-normalized) solution sets. Instances are sized
    // past the parallel trial so the fan-out path genuinely runs.
    let config = CqGenConfig { atoms: 4, var_pool: 5, ..CqGenConfig::default() };
    for seed in 0..40u64 {
        let mut generator = CqGen::new(seed.wrapping_mul(0x51_7CC1), config.clone());
        let query = generator.query();
        let db = generator.database(8, 5);
        let (reference, outcome) = all_solutions(&query.body, &db, CandidateStrategy::LinearScan);
        assert_eq!(outcome, SearchOutcome::Exhausted, "seed {seed}");
        for strategy in
            [CandidateStrategy::Indexed, CandidateStrategy::LinearScan, CandidateStrategy::Bitset]
        {
            for threads in [1usize, 2, 8] {
                let got = parallel_solutions(&query.body, &db, strategy, threads);
                assert_eq!(
                    got, reference,
                    "seed {seed}: {strategy:?} at {threads} threads diverges for {query}"
                );
            }
        }
    }
}

#[test]
fn hom_budget_expiry_is_interrupted_never_wrong() {
    // Under a shrinking interrupt budget, every strategy × thread count
    // either returns the true verdict or reports Interrupted — a wrong
    // verdict is the only unacceptable outcome.
    let config = CqGenConfig { atoms: 4, var_pool: 5, ..CqGenConfig::default() };
    for seed in 0..12u64 {
        let mut generator = CqGen::new(seed.wrapping_mul(0xB0D6E7), config.clone());
        let query = generator.query();
        let db = generator.database(7, 4);
        let truth =
            HomProblem::new(&query.body, &db).with_strategy(CandidateStrategy::LinearScan).exists();
        for strategy in
            [CandidateStrategy::Indexed, CandidateStrategy::LinearScan, CandidateStrategy::Bitset]
        {
            for threads in [1usize, 2, 8] {
                for steps in [1u64, 16, 256, 100_000] {
                    let guard = co_object::interrupt::install(co_object::interrupt::Budget {
                        steps: Some(steps),
                        ..Default::default()
                    });
                    let result = HomProblem::new(&query.body, &db)
                        .with_strategy(strategy)
                        .with_threads(threads)
                        .first();
                    drop(guard);
                    match result {
                        Ok(found) => assert_eq!(
                            found.is_some(),
                            truth,
                            "seed {seed}: {strategy:?}/{threads}t/{steps} steps: wrong verdict"
                        ),
                        Err(SearchOutcome::Interrupted) => {}
                        Err(other) => {
                            panic!("seed {seed}: unexpected outcome {other:?}")
                        }
                    }
                }
            }
        }
    }
}

/// A many-children COQL pair whose containment runs the 2^m emptiness
/// split: `filter` narrows every child, so filtered ⊑ plain holds and
/// plain ⊑ filtered fails.
fn emptiness_pair(children: usize) -> (co_sim::QueryTree, co_sim::QueryTree) {
    let mk = |filter: bool| {
        let subs: Vec<String> = (0..children)
            .map(|i| {
                let extra = if filter { format!(" and y{i}.C = 1") } else { String::new() };
                format!("g{i}: (select y{i}.C from y{i} in S where y{i}.C = x.A{extra})")
            })
            .collect();
        let text = format!("select [a: x.A, {}] from x in R", subs.join(", "));
        let expr = co_lang::parse_coql(&text).expect("constructed query parses");
        let schema = co_cq::Schema::with_relations(&[("R", &["A", "B"]), ("S", &["C"])]);
        co_core::prepare(&expr, &schema).expect("constructed query prepares").tree
    };
    (mk(true), mk(false))
}

#[test]
fn tree_parallel_patterns_agree_with_sequential() {
    use co_sim::tree::{try_tree_contained_in_with, ContainOptions};
    // 6 children → 64 patterns (past the 32-pattern parallel threshold).
    let (filtered, plain) = emptiness_pair(6);
    let decide = |t1: &co_sim::QueryTree, t2: &co_sim::QueryTree, threads: usize| {
        let opts = ContainOptions { no_empty_sets: false, extra_witnesses: 0, threads };
        try_tree_contained_in_with(t1, t2, opts).expect("no budget installed")
    };
    for threads in [1usize, 2, 8] {
        assert!(decide(&filtered, &plain, threads), "filtered ⊑ plain at {threads} threads");
        assert!(!decide(&plain, &filtered, threads), "plain ⋢ filtered at {threads} threads");
    }
}

#[test]
fn tree_budget_expiry_is_interrupted_never_wrong() {
    use co_sim::tree::{try_tree_contained_in_with, ContainOptions};
    let (filtered, plain) = emptiness_pair(6);
    for threads in [1usize, 2, 8] {
        for steps in [1u64, 64, 4096, 10_000_000] {
            let guard = co_object::interrupt::install(co_object::interrupt::Budget {
                steps: Some(steps),
                ..Default::default()
            });
            let opts = ContainOptions { no_empty_sets: false, extra_witnesses: 0, threads };
            let forward = try_tree_contained_in_with(&filtered, &plain, opts);
            drop(guard);
            if let Ok(v) = forward {
                assert!(v, "{threads}t/{steps} steps: wrong forward verdict");
            }
            let guard = co_object::interrupt::install(co_object::interrupt::Budget {
                steps: Some(steps),
                ..Default::default()
            });
            let backward = try_tree_contained_in_with(&plain, &filtered, opts);
            drop(guard);
            if let Ok(v) = backward {
                assert!(!v, "{threads}t/{steps} steps: wrong backward verdict");
            }
        }
    }
}

#[test]
fn hom_early_stop_agrees_across_strategies() {
    // `exists` (first-solution early stop) must agree even when the two
    // strategies visit the space in different orders.
    let config = CqGenConfig { atoms: 3, var_pool: 4, ..CqGenConfig::default() };
    for seed in 0..150u64 {
        let mut generator = CqGen::new(seed ^ 0x5EED, config.clone());
        let query = generator.query();
        let db = generator.database(5, 3);
        let indexed =
            HomProblem::new(&query.body, &db).with_strategy(CandidateStrategy::Indexed).exists();
        let linear =
            HomProblem::new(&query.body, &db).with_strategy(CandidateStrategy::LinearScan).exists();
        assert_eq!(indexed, linear, "seed {seed}: existence diverges for {query}");
    }
}

#[test]
fn simulation_engines_agree_on_full_matrices() {
    let config = GenConfig { max_depth: 3, max_set_len: 3, ..GenConfig::default() };
    for seed in 0..100u64 {
        let mut generator = ValueGen::new(seed, config.clone());
        let v1 = generator.value();
        let v2 = generator.value();
        let g1 = ValueGraph::from_value(&v1);
        let g2 = ValueGraph::from_value(&v2);
        let dispatched = greatest_simulation(&g1, &g2);
        let worklist = greatest_simulation_worklist(&g1, &g2);
        let sweep = greatest_simulation_sweep(&g1, &g2);
        assert_eq!(dispatched, worklist, "seed {seed}: dispatcher vs worklist on {v1} ⊑ {v2}");
        assert_eq!(dispatched, sweep, "seed {seed}: dispatcher vs sweep on {v1} ⊑ {v2}");
    }
}

#[test]
fn hoare_order_recursive_agrees_with_graph() {
    let config = GenConfig { max_depth: 3, max_set_len: 4, atom_pool: 3, ..GenConfig::default() };
    let mut checked = 0u32;
    let mut held = 0u32;
    for seed in 0..300u64 {
        let mut generator = ValueGen::new(seed.wrapping_mul(0x9E37_79B9), config.clone());
        let a = generator.value();
        let b = generator.value();
        let recursive = hoare_leq(&a, &b);
        let graph = hoare_leq_graph(&a, &b);
        assert_eq!(recursive, graph, "seed {seed}: hoare_leq diverges on {a} ⊑ {b}");
        // Reflexivity through both deciders, on the same instances.
        assert!(hoare_leq(&a, &a) && hoare_leq_graph(&a, &a), "seed {seed}: {a} ⋢ {a}");
        checked += 1;
        held += recursive as u32;
    }
    // The generator's small atom pool must make both verdicts reachable,
    // otherwise this differential test is vacuous.
    assert!(held > 0 && held < checked, "degenerate workload: {held}/{checked} held");
}
