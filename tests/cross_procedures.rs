//! Cross-procedure consistency: two independent decision pipelines must
//! agree where the paper says the notions coincide.
//!
//! For **empty-set-free** queries (§4): equivalence = weak equivalence, and
//! equality of answers means every element of one answer *is* an element of
//! the other — so **mutual Hoare containment** (decided by the Equation-2
//! machinery with emptiness patterns) and **mutual strong containment**
//! (decided by the Equation-4 machinery with two-sided matching) must give
//! the same verdict, despite sharing almost no code path.

use co_core::prepare;
use co_cq::Schema;
use co_lang::{parse_coql, EmptySetStatus};
use co_sim::tree::tree_contained_in_no_empty_sets;
use co_sim::tree_strong_contained_in_no_empty_sets;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn schema() -> Schema {
    Schema::with_relations(&[("R", &["A", "B"])])
}

/// Random nest-style queries (provably empty-set free: every inner select
/// re-ranges over the outer generator's relation with a shared key).
fn random_nest_query(seed: u64) -> co_lang::Expr {
    let mut rng = StdRng::seed_from_u64(seed);
    let key = if rng.gen_bool(0.5) { "A" } else { "B" };
    let inner_out = if rng.gen_bool(0.5) { "A" } else { "B" };
    let extra = if rng.gen_bool(0.4) {
        format!(" and y.{inner_out} = x.{inner_out}")
    } else {
        String::new()
    };
    let outer_filter = if rng.gen_bool(0.3) {
        format!(" where x.A = {}", rng.gen_range(0..2))
    } else {
        String::new()
    };
    let src = format!(
        "select [k: x.{key}, g: (select y.{inner_out} from y in R where y.{key} = x.{key}{extra})] \
         from x in R{outer_filter}"
    );
    parse_coql(&src).unwrap()
}

#[test]
fn weak_equivalence_agrees_with_mutual_strong_containment() {
    let schema = schema();
    let mut agreements = 0;
    for seed in 0..120u64 {
        let q1 = random_nest_query(seed);
        let q2 = random_nest_query(seed + 11_000);
        let p1 = prepare(&q1, &schema).unwrap();
        let p2 = prepare(&q2, &schema).unwrap();
        if p1.ty.lub(&p2.ty).is_none() {
            continue;
        }
        assert_eq!(p1.empty_status, EmptySetStatus::Free, "{q1}");
        assert_eq!(p2.empty_status, EmptySetStatus::Free, "{q2}");

        let weak = tree_contained_in_no_empty_sets(&p1.tree, &p2.tree)
            && tree_contained_in_no_empty_sets(&p2.tree, &p1.tree);
        let strong = tree_strong_contained_in_no_empty_sets(&p1.tree, &p2.tree)
            && tree_strong_contained_in_no_empty_sets(&p2.tree, &p1.tree);
        assert_eq!(
            weak, strong,
            "procedures disagree on:\n  {q1}\n  {q2}\n weak={weak} strong={strong}"
        );
        agreements += 1;
    }
    assert!(agreements >= 50, "only {agreements} comparable pairs generated");
}

#[test]
fn strong_containment_refines_hoare_containment() {
    let schema = schema();
    for seed in 0..120u64 {
        let q1 = random_nest_query(seed);
        let q2 = random_nest_query(seed + 23_000);
        let p1 = prepare(&q1, &schema).unwrap();
        let p2 = prepare(&q2, &schema).unwrap();
        if p1.ty.lub(&p2.ty).is_none() {
            continue;
        }
        if tree_strong_contained_in_no_empty_sets(&p1.tree, &p2.tree) {
            assert!(
                tree_contained_in_no_empty_sets(&p1.tree, &p2.tree),
                "strong but not Hoare: {q1} vs {q2}"
            );
        }
    }
}

#[test]
fn strong_containment_is_sound_for_equality_semantics() {
    // If strong containment holds, every element of ⟦q1⟧ must literally be
    // an element of ⟦q2⟧ on random databases (set membership, not just
    // Hoare domination).
    let schema = schema();
    for seed in 0..100u64 {
        let q1 = random_nest_query(seed);
        let q2 = random_nest_query(seed + 31_000);
        let p1 = prepare(&q1, &schema).unwrap();
        let p2 = prepare(&q2, &schema).unwrap();
        if p1.ty.lub(&p2.ty).is_none() {
            continue;
        }
        if !tree_strong_contained_in_no_empty_sets(&p1.tree, &p2.tree) {
            continue;
        }
        for db_seed in 0..6u64 {
            let db = co_core::random_database(&schema, seed * 71 + db_seed);
            let v1 = p1.tree.evaluate(&db);
            let v2 = p2.tree.evaluate(&db);
            let s1 = v1.as_set().unwrap();
            let s2 = v2.as_set().unwrap();
            for elem in s1.iter() {
                assert!(
                    s2.contains(elem),
                    "strong containment violated: element {elem} of ⟦{q1}⟧ \
                     missing from ⟦{q2}⟧\nDB:\n{db}"
                );
            }
        }
    }
}
