//! Differential certificate oracle: seeded random query pairs, decided
//! under every candidate-selection strategy and kernel thread count the
//! serving stack can pick, with every verdict's certificate re-checked by
//! the independent `co-cert` checker — including a round trip through the
//! wire form, the same bytes snapshots and `CERT` replies carry.
//!
//! The configuration sweep matters: a certificate is constructed from the
//! verdict's *evidence*, so a strategy- or thread-dependent kernel bug
//! shows up here as a certificate that fails re-check (or a verdict that
//! flips across configurations), not as a silent wrong answer.
//!
//! Since PR 10 the sweep also covers union pairs: every `UCHECK`-shaped
//! verdict is certified as a `COUNION1` union certificate, re-checked
//! fresh and after a wire round-trip. A separate test drives the real
//! `coqlc` binary against a lying server and demands exit code 6 for
//! forged union certificates (a witness naming the wrong disjunct, a
//! branch counterexample that actually satisfies the union).
//!
//! One sweeping `#[test]` on purpose: strategy and kernel-thread
//! selection are process-global, so concurrent sweeps would race on them
//! (the binary-drill test only exercises child processes and scripted
//! sockets, so it can run alongside).
//!
//! `CERT_ORACLE_PAIRS` (env) scales the pair count; the default keeps the
//! suite fast, `scripts/verify.sh` drives it at 200+.

use std::io::{BufRead, BufReader, Write as IoWrite};
use std::net::{SocketAddr, TcpListener};
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Arc;
use std::thread;

use co_cq::hom::{set_default_strategy, CandidateStrategy};
use co_cq::{Schema, Var};
use co_lang::Expr;
use co_object::par;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn schema() -> Schema {
    Schema::with_relations(&[("R", &["A", "B"]), ("S", &["C"])])
}

/// Random COQL query over the fixed schema: an outer select over R (and
/// sometimes S), a record head with an atomic field and (usually) one
/// nested select with random correlation — the same shape family the
/// workspace differential suite uses, so flat, no-empty-set, and full
/// decision paths all occur.
fn random_query(seed: u64) -> Expr {
    let mut rng = StdRng::seed_from_u64(seed);
    let x = Var::new("x");
    let y = Var::new("y");
    let z = Var::new("z");

    let outer_attr = if rng.gen_bool(0.5) { "A" } else { "B" };
    let mut bindings = vec![(x, Expr::rel("R"))];
    let mut outer_conds = Vec::new();
    if rng.gen_bool(0.3) {
        bindings.push((z, Expr::rel("S")));
        if rng.gen_bool(0.7) {
            outer_conds.push((Expr::var("z").proj("C"), Expr::var("x").proj("B")));
        }
    }
    if rng.gen_bool(0.25) {
        outer_conds.push((Expr::var("x").proj(outer_attr), Expr::int(rng.gen_range(0..3))));
    }

    let head = if rng.gen_bool(0.7) {
        let (inner_rel, inner_attr) = if rng.gen_bool(0.6) { ("R", "B") } else { ("S", "C") };
        let mut inner_conds = Vec::new();
        match rng.gen_range(0..3) {
            0 if inner_rel == "R" => {
                inner_conds.push((Expr::var("y").proj("A"), Expr::var("x").proj("A")))
            }
            1 => inner_conds.push((Expr::var("y").proj(inner_attr), Expr::var("x").proj("B"))),
            _ => {}
        }
        if rng.gen_bool(0.2) {
            inner_conds.push((Expr::var("y").proj(inner_attr), Expr::int(rng.gen_range(0..3))));
        }
        let inner = Expr::Select {
            head: Box::new(Expr::var("y").proj(inner_attr)),
            bindings: vec![(y, Expr::rel(inner_rel))],
            conds: inner_conds,
        };
        Expr::record(vec![("a", Expr::var("x").proj(outer_attr)), ("g", inner)])
    } else {
        // Flat record head: keeps the FlatClassical path (and its Mapping
        // certificates) in the mix.
        Expr::record(vec![("a", Expr::var("x").proj(outer_attr)), ("b", Expr::var("x").proj("B"))])
    };

    Expr::Select { head: Box::new(head), bindings, conds: outer_conds }
}

/// One direction of one pair under the current global configuration:
/// decide, certify, wire round-trip, re-check. Returns the verdict, or
/// None when the pair's result types are incompatible (no verdict exists
/// to certify). Panics with full context on any certificate failure.
fn certified_verdict(
    p1: &co_core::Prepared,
    p2: &co_core::Prepared,
    context: &str,
) -> Option<bool> {
    let analysis = match co_core::contained_prepared(p1, p2) {
        Ok(analysis) => analysis,
        Err(co_core::CoreError::TypeMismatch(_)) => return None,
        Err(e) => panic!("{context}: decision failed: {e}"),
    };
    let cert = co_core::certify_prepared(p1, p2, &analysis)
        .unwrap_or_else(|e| panic!("{context}: verdict holds={} but {e}", analysis.holds));
    let expect_path = co_core::cert_path(co_core::expected_path(p1, p2));
    cert.check_against(&p1.tree, &p2.tree, analysis.holds, expect_path)
        .unwrap_or_else(|e| panic!("{context}: fresh certificate rejected: {e}"));
    // The serving stack never ships the in-memory certificate — it ships
    // the wire form; the oracle must validate what a client would see.
    let reparsed = co_cert::Cert::parse(&cert.to_wire())
        .unwrap_or_else(|e| panic!("{context}: wire round-trip does not parse: {e}"));
    reparsed
        .check_against(&p1.tree, &p2.tree, analysis.holds, expect_path)
        .unwrap_or_else(|e| panic!("{context}: wire round-trip rejected: {e}"));
    Some(analysis.holds)
}

const VARS: [&str; 8] = ["x", "y", "z", "u", "v", "w", "p", "q"];

/// An abstract union disjunct over `R(A,B); S(C)` — the same three head
/// classes the UCQ differential wall uses, rendered with fresh variable
/// names so every pair also exercises α-renaming on the cert path.
#[derive(Clone, Copy)]
struct Disjunct {
    class: u8,
    outer: Option<u8>,
    inner: Option<u8>,
}

impl Disjunct {
    fn random(class: u8, rng: &mut StdRng) -> Disjunct {
        Disjunct {
            class,
            outer: rng.gen_bool(0.6).then(|| rng.gen_range(0..3)),
            inner: rng.gen_bool(0.4).then(|| rng.gen_range(0..3)),
        }
    }

    /// A disjunct that contains `self`: the same shape with filters
    /// (usually) dropped.
    fn generalized(self, rng: &mut StdRng) -> Disjunct {
        Disjunct {
            class: self.class,
            outer: if rng.gen_bool(0.7) { None } else { self.outer },
            inner: if rng.gen_bool(0.7) { None } else { self.inner },
        }
    }

    fn render(self, rng: &mut StdRng) -> String {
        let o = VARS[rng.gen_range(0..VARS.len())];
        let eq = |l: String, r: String, rng: &mut StdRng| {
            if rng.gen_bool(0.5) {
                format!("{l} = {r}")
            } else {
                format!("{r} = {l}")
            }
        };
        let outer_cond = self.outer.map(|k| eq(format!("{o}.A"), k.to_string(), rng));
        let with_where = |head: String, cond: Option<String>| match cond {
            Some(c) => format!("select {head} from {o} in R where {c}"),
            None => format!("select {head} from {o} in R"),
        };
        match self.class {
            0 => with_where(format!("{o}.B"), outer_cond),
            1 => with_where(format!("[a: {o}.A, b: {o}.B]"), outer_cond),
            _ => {
                let i = loop {
                    let c = VARS[rng.gen_range(0..VARS.len())];
                    if c != o {
                        break c;
                    }
                };
                let mut inner_conds = vec![eq(format!("{i}.C"), format!("{o}.A"), rng)];
                if let Some(k) = self.inner {
                    inner_conds.push(eq(format!("{i}.C"), k.to_string(), rng));
                }
                let head = format!(
                    "[a: {o}.A, g: (select {i}.C from {i} in S where {})]",
                    inner_conds.join(" and ")
                );
                with_where(head, outer_cond)
            }
        }
    }
}

/// One seeded union pair as COQL text. The right side mixes
/// generalizations/copies of left disjuncts with fresh random ones so
/// both verdict polarities occur at useful rates.
fn union_pair(seed: u64) -> (String, String) {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e3779b97f4a7c15) ^ seed);
    let class = rng.gen_range(0..3u8);
    let left: Vec<Disjunct> =
        (0..rng.gen_range(1..=3)).map(|_| Disjunct::random(class, &mut rng)).collect();
    let right: Vec<Disjunct> = (0..rng.gen_range(1..=3))
        .map(|_| {
            if rng.gen_bool(0.55) {
                let picked = left[rng.gen_range(0..left.len())];
                if rng.gen_bool(0.5) {
                    picked.generalized(&mut rng)
                } else {
                    picked
                }
            } else {
                Disjunct::random(class, &mut rng)
            }
        })
        .collect();
    let side = |ds: &[Disjunct], rng: &mut StdRng| {
        ds.iter().map(|d| d.render(rng)).collect::<Vec<_>>().join(" or ")
    };
    (side(&left, &mut rng), side(&right, &mut rng))
}

/// One direction of one union pair under the current global
/// configuration: decide, certify as a `COUNION1` block, re-check fresh
/// and after a wire round-trip. Panics with full context on any failure.
fn certified_union_verdict(
    l: &co_core::PreparedUnion,
    r: &co_core::PreparedUnion,
    context: &str,
) -> bool {
    let analysis = co_core::union_contained_prepared(l, r)
        .unwrap_or_else(|e| panic!("{context}: union decision failed: {e}"));
    let cert = co_core::certify_union_prepared(l, r, &analysis)
        .unwrap_or_else(|e| panic!("{context}: verdict holds={} but {e}", analysis.holds));
    let ltrees: Vec<_> = l.disjuncts.iter().map(|p| &p.tree).collect();
    let rtrees: Vec<_> = r.disjuncts.iter().map(|p| &p.tree).collect();
    let expect =
        |j: usize, i: usize| co_core::cert_path(co_core::expected_union_path(l, r, j, i));
    cert.check_against(&ltrees, &rtrees, analysis.holds, &expect)
        .unwrap_or_else(|e| panic!("{context}: fresh union certificate rejected: {e}"));
    // As with scalar pairs, clients only ever see the wire form.
    let reparsed = co_cert::UnionCert::parse(&cert.to_wire())
        .unwrap_or_else(|e| panic!("{context}: union wire round-trip does not parse: {e}"));
    reparsed
        .check_against(&ltrees, &rtrees, analysis.holds, &expect)
        .unwrap_or_else(|e| panic!("{context}: union wire round-trip rejected: {e}"));
    analysis.holds
}

#[test]
fn every_verdict_carries_a_checkable_certificate() {
    let schema = schema();
    let pairs: u64 =
        std::env::var("CERT_ORACLE_PAIRS").ok().and_then(|v| v.parse().ok()).unwrap_or(60);
    let strategies = [
        ("indexed", CandidateStrategy::Indexed),
        ("linear-scan", CandidateStrategy::LinearScan),
        ("bitset", CandidateStrategy::Bitset),
        ("adaptive", CandidateStrategy::Adaptive),
    ];
    let mut positives = 0u64;
    let mut negatives = 0u64;
    let mut checked = 0u64;
    for seed in 0..pairs {
        let q1 = random_query(seed);
        let q2 = random_query(seed + 30_000);
        let (Ok(p1), Ok(p2)) = (co_core::prepare(&q1, &schema), co_core::prepare(&q2, &schema))
        else {
            continue;
        };
        // The verdict (and its certificate) must not depend on how the
        // kernel enumerates candidates or how many threads it uses.
        let mut baseline: Option<(Option<bool>, Option<bool>)> = None;
        for (sname, strategy) in strategies {
            set_default_strategy(strategy);
            for threads in [1usize, 2] {
                par::set_kernel_threads(threads);
                let context = format!("pair {seed} [{sname}, {threads} thread(s)]");
                let fwd = certified_verdict(&p1, &p2, &format!("{context} fwd"));
                let bwd = certified_verdict(&p2, &p1, &format!("{context} bwd"));
                match &baseline {
                    None => baseline = Some((fwd, bwd)),
                    Some(expected) => assert_eq!(
                        (fwd, bwd),
                        *expected,
                        "{context}: verdict differs from the first configuration"
                    ),
                }
                for v in [fwd, bwd].into_iter().flatten() {
                    checked += 1;
                    if v {
                        positives += 1;
                    } else {
                        negatives += 1;
                    }
                }
            }
        }
    }
    // Union phase: every UCHECK-shaped verdict must carry a checkable
    // COUNION1 certificate under the same configuration sweep, in both
    // directions.
    let union_pairs = (pairs / 2).max(12);
    let (mut u_positives, mut u_negatives) = (0u64, 0u64);
    for seed in 0..union_pairs {
        let (u1, u2) = union_pair(seed);
        let d1 = co_lang::parse_union_coql(&u1).expect("left union parses");
        let d2 = co_lang::parse_union_coql(&u2).expect("right union parses");
        let (Ok(l), Ok(r)) =
            (co_core::prepare_union(&d1, &schema), co_core::prepare_union(&d2, &schema))
        else {
            continue;
        };
        let mut baseline: Option<(bool, bool)> = None;
        for (sname, strategy) in strategies {
            set_default_strategy(strategy);
            for threads in [1usize, 2] {
                par::set_kernel_threads(threads);
                let context = format!("union pair {seed} [{sname}, {threads} thread(s)]");
                let fwd = certified_union_verdict(&l, &r, &format!("{context} fwd"));
                let bwd = certified_union_verdict(&r, &l, &format!("{context} bwd"));
                match &baseline {
                    None => baseline = Some((fwd, bwd)),
                    Some(expected) => assert_eq!(
                        (fwd, bwd),
                        *expected,
                        "{context}: union verdict differs from the first configuration \
                         on {u1} ;; {u2}"
                    ),
                }
            }
        }
        if let Some((fwd, bwd)) = baseline {
            for v in [fwd, bwd] {
                if v {
                    u_positives += 1;
                } else {
                    u_negatives += 1;
                }
            }
        }
    }

    set_default_strategy(CandidateStrategy::Adaptive);
    par::set_kernel_threads(0);
    // A sweep that generated only one verdict polarity (or nothing at
    // all) would vacuously pass — demand both kinds of evidence.
    assert!(
        positives > 0 && negatives > 0,
        "degenerate workload: {checked} verdicts, {positives} positive / {negatives} negative"
    );
    assert!(
        u_positives > 0 && u_negatives > 0,
        "degenerate union workload: {u_positives} positive / {u_negatives} negative unions"
    );
}

// ---------------------------------------------------------------------------
// Adversarial drill: the real `coqlc` binary against a lying server.
// ---------------------------------------------------------------------------

/// A scripted server that accepts exactly one connection per canned
/// reply (coqlc dials a fresh connection per exchange: first `SCHEMA`,
/// then `CERT UCHECK`), answers with the canned bytes regardless of the
/// request, and drains the trailing `QUIT`.
fn lying_server(replies: Vec<String>) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap();
    thread::spawn(move || {
        for reply in replies {
            let Ok((stream, _)) = listener.accept() else { return };
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut request = String::new();
            if reader.read_line(&mut request).is_err() {
                return;
            }
            let mut writer = stream;
            if writer.write_all(reply.as_bytes()).is_err() || writer.flush().is_err() {
                return;
            }
            let mut quit = String::new();
            let _ = reader.read_line(&mut quit);
        }
    });
    addr
}

/// An honest in-process `coqld` for the positive control.
fn honest_server() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap();
    let engine = Arc::new(co_service::Engine::new(co_service::EngineConfig {
        cache_shards: 4,
        cache_per_shard: 64,
        workers: 2,
        ..co_service::EngineConfig::default()
    }));
    thread::spawn(move || {
        let _ = co_service::serve(
            listener,
            engine,
            co_service::ServerConfig { max_connections: 8, ..co_service::ServerConfig::default() },
        );
    });
    addr
}

fn run_coqlc_cert(addr: SocketAddr, files: &[PathBuf; 3]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_coqlc"))
        .args(["cert", "--addr", &addr.to_string()])
        .args(files)
        .output()
        .expect("spawn coqlc")
}

fn ucheck_reply(verdict: bool, cert_wire: &str) -> String {
    format!(
        "OK holds={verdict} witnesses=1 left=1 right=2 pairs=1 cached=false\n{cert_wire}END\n"
    )
}

/// `coqlc cert --addr` must re-check every `UnionWitness` locally: a
/// server reply whose witness names the wrong disjunct, or whose branch
/// counterexample actually satisfies the union, exits with code 6 no
/// matter how confident the verdict line sounds. An honest server first
/// establishes the positive control (exit 0, locally certified).
#[test]
fn forged_union_certificates_exit_six_from_coqlc_cert() {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("cert_oracle_coqlc");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let write = |name: &str, text: &str| -> PathBuf {
        let p = dir.join(name);
        std::fs::write(&p, text).expect("write temp file");
        p
    };
    let q1 = "select x.B from x in R where x.A = 1";
    let q2 = "select x.B from x in R where x.A = 1 or select y.B from y in R where y.A = 2";
    let files = [
        write("schema.coql", "R(A, B)\nS(C)\n"),
        write("q1.coql", &format!("{q1}\n")),
        write("q2.coql", &format!("{q2}\n")),
    ];

    // Positive control: an honest coqld round trip certifies locally.
    let honest = run_coqlc_cert(honest_server(), &files);
    assert!(
        honest.status.success(),
        "honest server run failed: {}",
        String::from_utf8_lossy(&honest.stderr)
    );
    assert!(
        String::from_utf8_lossy(&honest.stdout).contains("certified by local co-cert re-check"),
        "honest run did not report a local re-check"
    );

    // Build a *genuine* certificate to tamper with: q1 ⊑ q2 via right
    // disjunct 0 (the only one sharing q1's constant).
    let schema = schema();
    let d1 = co_lang::parse_union_coql(q1).unwrap();
    let d2 = co_lang::parse_union_coql(q2).unwrap();
    let l = co_core::prepare_union(&d1, &schema).unwrap();
    let r = co_core::prepare_union(&d2, &schema).unwrap();
    let analysis = co_core::union_contained_prepared(&l, &r).unwrap();
    assert!(analysis.holds, "fixture must hold: q1 is q2's first disjunct");
    let genuine = co_core::certify_union_prepared(&l, &r, &analysis).unwrap();
    assert_eq!(genuine.witnesses[0].0, 0, "fixture witness must be the constant-1 disjunct");

    let ltrees: Vec<_> = l.disjuncts.iter().map(|p| &p.tree).collect();
    let rtrees: Vec<_> = r.disjuncts.iter().map(|p| &p.tree).collect();
    let expect =
        |j: usize, i: usize| co_core::cert_path(co_core::expected_union_path(&l, &r, j, i));

    // Forgery 1: the witness names the wrong disjunct. The embedded
    // scalar evidence maps constants of right disjunct 0, so redirecting
    // it at the constant-2 disjunct must fail the trusted checker.
    let mut wrong_index = genuine.clone();
    wrong_index.witnesses[0].0 = 1;
    assert!(
        wrong_index.check_against(&ltrees, &rtrees, true, &expect).is_err(),
        "misdirected witness must not re-check"
    );
    let out = run_coqlc_cert(lying_server(vec![
        "OK schema registered\n".to_string(),
        ucheck_reply(true, &wrong_index.to_wire()),
    ]), &files);
    assert_eq!(out.status.code(), Some(6), "wrong-disjunct witness must exit 6");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("certfail"),
        "wrong-disjunct stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Forgery 2: a refutation whose branch counterexample actually
    // satisfies the union. The scalar counterexample proving
    // q1 ⋢ σ_{A=2} satisfies q1 — and therefore right disjunct 0 — so a
    // cert reusing it for every branch claims a counterexample that the
    // union in fact contains.
    let neg = co_core::contained_prepared(&l.disjuncts[0], &r.disjuncts[1]).unwrap();
    assert!(!neg.holds, "σ_{{A=1}} ⋢ σ_{{A=2}}");
    let neg_cert = co_core::certify_prepared(&l.disjuncts[0], &r.disjuncts[1], &neg).unwrap();
    let satisfied_union = co_cert::UnionCert {
        holds: false,
        left: 1,
        right: 2,
        witnesses: vec![],
        refuted: Some(0),
        branches: vec![(0, neg_cert.clone()), (1, neg_cert)],
    };
    assert!(
        satisfied_union.check_against(&ltrees, &rtrees, false, &expect).is_err(),
        "a counterexample the union satisfies must not re-check"
    );
    let out = run_coqlc_cert(lying_server(vec![
        "OK schema registered\n".to_string(),
        ucheck_reply(false, &satisfied_union.to_wire()),
    ]), &files);
    assert_eq!(out.status.code(), Some(6), "satisfied-union counterexample must exit 6");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("certfail"),
        "satisfied-union stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}
