//! Differential certificate oracle: seeded random query pairs, decided
//! under every candidate-selection strategy and kernel thread count the
//! serving stack can pick, with every verdict's certificate re-checked by
//! the independent `co-cert` checker — including a round trip through the
//! wire form, the same bytes snapshots and `CERT` replies carry.
//!
//! The configuration sweep matters: a certificate is constructed from the
//! verdict's *evidence*, so a strategy- or thread-dependent kernel bug
//! shows up here as a certificate that fails re-check (or a verdict that
//! flips across configurations), not as a silent wrong answer.
//!
//! One `#[test]` on purpose: strategy and kernel-thread selection are
//! process-global, so concurrent test threads would race on them.
//!
//! `CERT_ORACLE_PAIRS` (env) scales the pair count; the default keeps the
//! suite fast, `scripts/verify.sh` drives it at 200+.

use co_cq::hom::{set_default_strategy, CandidateStrategy};
use co_cq::{Schema, Var};
use co_lang::Expr;
use co_object::par;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn schema() -> Schema {
    Schema::with_relations(&[("R", &["A", "B"]), ("S", &["C"])])
}

/// Random COQL query over the fixed schema: an outer select over R (and
/// sometimes S), a record head with an atomic field and (usually) one
/// nested select with random correlation — the same shape family the
/// workspace differential suite uses, so flat, no-empty-set, and full
/// decision paths all occur.
fn random_query(seed: u64) -> Expr {
    let mut rng = StdRng::seed_from_u64(seed);
    let x = Var::new("x");
    let y = Var::new("y");
    let z = Var::new("z");

    let outer_attr = if rng.gen_bool(0.5) { "A" } else { "B" };
    let mut bindings = vec![(x, Expr::rel("R"))];
    let mut outer_conds = Vec::new();
    if rng.gen_bool(0.3) {
        bindings.push((z, Expr::rel("S")));
        if rng.gen_bool(0.7) {
            outer_conds.push((Expr::var("z").proj("C"), Expr::var("x").proj("B")));
        }
    }
    if rng.gen_bool(0.25) {
        outer_conds.push((Expr::var("x").proj(outer_attr), Expr::int(rng.gen_range(0..3))));
    }

    let head = if rng.gen_bool(0.7) {
        let (inner_rel, inner_attr) = if rng.gen_bool(0.6) { ("R", "B") } else { ("S", "C") };
        let mut inner_conds = Vec::new();
        match rng.gen_range(0..3) {
            0 if inner_rel == "R" => {
                inner_conds.push((Expr::var("y").proj("A"), Expr::var("x").proj("A")))
            }
            1 => inner_conds.push((Expr::var("y").proj(inner_attr), Expr::var("x").proj("B"))),
            _ => {}
        }
        if rng.gen_bool(0.2) {
            inner_conds.push((Expr::var("y").proj(inner_attr), Expr::int(rng.gen_range(0..3))));
        }
        let inner = Expr::Select {
            head: Box::new(Expr::var("y").proj(inner_attr)),
            bindings: vec![(y, Expr::rel(inner_rel))],
            conds: inner_conds,
        };
        Expr::record(vec![("a", Expr::var("x").proj(outer_attr)), ("g", inner)])
    } else {
        // Flat record head: keeps the FlatClassical path (and its Mapping
        // certificates) in the mix.
        Expr::record(vec![("a", Expr::var("x").proj(outer_attr)), ("b", Expr::var("x").proj("B"))])
    };

    Expr::Select { head: Box::new(head), bindings, conds: outer_conds }
}

/// One direction of one pair under the current global configuration:
/// decide, certify, wire round-trip, re-check. Returns the verdict, or
/// None when the pair's result types are incompatible (no verdict exists
/// to certify). Panics with full context on any certificate failure.
fn certified_verdict(
    p1: &co_core::Prepared,
    p2: &co_core::Prepared,
    context: &str,
) -> Option<bool> {
    let analysis = match co_core::contained_prepared(p1, p2) {
        Ok(analysis) => analysis,
        Err(co_core::CoreError::TypeMismatch(_)) => return None,
        Err(e) => panic!("{context}: decision failed: {e}"),
    };
    let cert = co_core::certify_prepared(p1, p2, &analysis)
        .unwrap_or_else(|e| panic!("{context}: verdict holds={} but {e}", analysis.holds));
    let expect_path = co_core::cert_path(co_core::expected_path(p1, p2));
    cert.check_against(&p1.tree, &p2.tree, analysis.holds, expect_path)
        .unwrap_or_else(|e| panic!("{context}: fresh certificate rejected: {e}"));
    // The serving stack never ships the in-memory certificate — it ships
    // the wire form; the oracle must validate what a client would see.
    let reparsed = co_cert::Cert::parse(&cert.to_wire())
        .unwrap_or_else(|e| panic!("{context}: wire round-trip does not parse: {e}"));
    reparsed
        .check_against(&p1.tree, &p2.tree, analysis.holds, expect_path)
        .unwrap_or_else(|e| panic!("{context}: wire round-trip rejected: {e}"));
    Some(analysis.holds)
}

#[test]
fn every_verdict_carries_a_checkable_certificate() {
    let schema = schema();
    let pairs: u64 =
        std::env::var("CERT_ORACLE_PAIRS").ok().and_then(|v| v.parse().ok()).unwrap_or(60);
    let strategies = [
        ("indexed", CandidateStrategy::Indexed),
        ("linear-scan", CandidateStrategy::LinearScan),
        ("bitset", CandidateStrategy::Bitset),
        ("adaptive", CandidateStrategy::Adaptive),
    ];
    let mut positives = 0u64;
    let mut negatives = 0u64;
    let mut checked = 0u64;
    for seed in 0..pairs {
        let q1 = random_query(seed);
        let q2 = random_query(seed + 30_000);
        let (Ok(p1), Ok(p2)) = (co_core::prepare(&q1, &schema), co_core::prepare(&q2, &schema))
        else {
            continue;
        };
        // The verdict (and its certificate) must not depend on how the
        // kernel enumerates candidates or how many threads it uses.
        let mut baseline: Option<(Option<bool>, Option<bool>)> = None;
        for (sname, strategy) in strategies {
            set_default_strategy(strategy);
            for threads in [1usize, 2] {
                par::set_kernel_threads(threads);
                let context = format!("pair {seed} [{sname}, {threads} thread(s)]");
                let fwd = certified_verdict(&p1, &p2, &format!("{context} fwd"));
                let bwd = certified_verdict(&p2, &p1, &format!("{context} bwd"));
                match &baseline {
                    None => baseline = Some((fwd, bwd)),
                    Some(expected) => assert_eq!(
                        (fwd, bwd),
                        *expected,
                        "{context}: verdict differs from the first configuration"
                    ),
                }
                for v in [fwd, bwd].into_iter().flatten() {
                    checked += 1;
                    if v {
                        positives += 1;
                    } else {
                        negatives += 1;
                    }
                }
            }
        }
    }
    set_default_strategy(CandidateStrategy::Adaptive);
    par::set_kernel_threads(0);
    // A sweep that generated only one verdict polarity (or nothing at
    // all) would vacuously pass — demand both kinds of evidence.
    assert!(
        positives > 0 && negatives > 0,
        "degenerate workload: {checked} verdicts, {positives} positive / {negatives} negative"
    );
}
