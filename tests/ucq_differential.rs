//! The UCQ differential wall: seeded union-containment pairs decided
//! three independent ways —
//!
//! 1. the shipped per-disjunct engine (`co_core::union_contained_prepared`,
//!    indexed/bitset hom kernels, short-circuit on the first containing
//!    disjunct),
//! 2. a naive reference that expands the union and tests each CQ pair
//!    directly through the scalar `co_core::contained_in` pipeline
//!    (Sagiv–Yannakakis by hand: `∪Pⱼ ⊑ ∪Qᵢ` iff every `Pⱼ` is contained
//!    in some `Qᵢ`), and
//! 3. `UCHECK` against live in-process `coqld` servers,
//!
//! with 100% verdict agreement demanded across every
//! [`CandidateStrategy`] × {1, 2} kernel-thread configuration, and both
//! verdict polarities required in the workload.
//!
//! One `#[test]` on purpose: strategy and kernel-thread selection are
//! process-global, so concurrent test threads would race on them.
//!
//! `UCQ_DIFFERENTIAL_PAIRS` (env) scales the pair count; the default
//! meets the PR-10 floor of 200 decided pairs, `scripts/verify.sh` drives
//! it explicitly.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use co_cq::hom::{set_default_strategy, CandidateStrategy};
use co_cq::Schema;
use co_lang::Expr;
use co_object::par;
use co_service::{serve, Engine, EngineConfig, ServerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn schema() -> Schema {
    Schema::with_relations(&[("R", &["A", "B"]), ("S", &["C"])])
}

const VARS: [&str; 8] = ["x", "y", "z", "u", "v", "w", "p", "q"];

/// An abstract disjunct: one of three head classes over `R(A,B); S(C)`,
/// with optional constant filters. Disjuncts in one union share a class,
/// so every generated union is well-typed by construction.
#[derive(Clone, Copy)]
struct Disjunct {
    class: u8,
    outer: Option<u8>,
    inner: Option<u8>,
}

impl Disjunct {
    fn random(class: u8, rng: &mut StdRng) -> Disjunct {
        Disjunct {
            class,
            outer: rng.gen_bool(0.6).then(|| rng.gen_range(0..3)),
            inner: rng.gen_bool(0.4).then(|| rng.gen_range(0..3)),
        }
    }

    /// A disjunct that contains `self`: the same shape with one or both
    /// filters dropped.
    fn generalized(self, rng: &mut StdRng) -> Disjunct {
        Disjunct {
            class: self.class,
            outer: if rng.gen_bool(0.7) { None } else { self.outer },
            inner: if rng.gen_bool(0.7) { None } else { self.inner },
        }
    }

    /// One concrete COQL rendering, with fresh variable names and
    /// coin-flipped equality orientations.
    fn render(self, rng: &mut StdRng) -> String {
        let o = VARS[rng.gen_range(0..VARS.len())];
        let eq = |l: String, r: String, rng: &mut StdRng| {
            if rng.gen_bool(0.5) {
                format!("{l} = {r}")
            } else {
                format!("{r} = {l}")
            }
        };
        let outer_cond =
            self.outer.map(|k| eq(format!("{o}.A"), k.to_string(), rng));
        match self.class {
            0 => match outer_cond {
                Some(c) => format!("select {o}.B from {o} in R where {c}"),
                None => format!("select {o}.B from {o} in R"),
            },
            1 => {
                let head = format!("[a: {o}.A, b: {o}.B]");
                match outer_cond {
                    Some(c) => format!("select {head} from {o} in R where {c}"),
                    None => format!("select {head} from {o} in R"),
                }
            }
            _ => {
                let i = loop {
                    let c = VARS[rng.gen_range(0..VARS.len())];
                    if c != o {
                        break c;
                    }
                };
                let mut inner_conds = vec![eq(format!("{i}.C"), format!("{o}.A"), rng)];
                if let Some(k) = self.inner {
                    inner_conds.push(eq(format!("{i}.C"), k.to_string(), rng));
                }
                let inner = format!(
                    "(select {i}.C from {i} in S where {})",
                    inner_conds.join(" and ")
                );
                let head = format!("[a: {o}.A, g: {inner}]");
                match outer_cond {
                    Some(c) => format!("select {head} from {o} in R where {c}"),
                    None => format!("select {head} from {o} in R"),
                }
            }
        }
    }
}

/// One seeded union pair as text (`<q> [or <q>]*` per side). The right
/// side mixes generalizations/copies of left disjuncts with fresh random
/// ones, so both verdict polarities occur at useful rates.
fn union_pair(seed: u64) -> (String, String) {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e3779b97f4a7c15) ^ seed);
    let class = rng.gen_range(0..3u8);
    let left: Vec<Disjunct> =
        (0..rng.gen_range(1..=3)).map(|_| Disjunct::random(class, &mut rng)).collect();
    let right: Vec<Disjunct> = (0..rng.gen_range(1..=3))
        .map(|_| {
            if rng.gen_bool(0.55) {
                let picked = left[rng.gen_range(0..left.len())];
                if rng.gen_bool(0.5) {
                    picked.generalized(&mut rng)
                } else {
                    picked // α-renamed copy after rendering
                }
            } else {
                Disjunct::random(class, &mut rng)
            }
        })
        .collect();
    let side = |ds: &[Disjunct], rng: &mut StdRng| {
        ds.iter().map(|d| d.render(rng)).collect::<Vec<_>>().join(" or ")
    };
    (side(&left, &mut rng), side(&right, &mut rng))
}

/// The naive reference: expand both unions and test each CQ pair directly
/// through the full scalar pipeline (fresh parse → canonicalize →
/// decide), with no prepared-state reuse, no short-circuit ordering
/// tricks, and no memo.
fn naive_union_verdict(left: &[Expr], right: &[Expr], schema: &Schema) -> bool {
    left.iter().all(|p| {
        right.iter().any(|q| {
            co_core::contained_in(p, q, schema).map(|analysis| analysis.holds).unwrap_or(false)
        })
    })
}

fn start_server(kernel_threads: usize) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap();
    let engine = Arc::new(Engine::new(EngineConfig {
        cache_shards: 4,
        cache_per_shard: 256,
        workers: 2,
        kernel_threads,
        ..EngineConfig::default()
    }));
    thread::spawn(move || {
        let _ =
            serve(listener, engine, ServerConfig { max_connections: 8, ..ServerConfig::default() });
    });
    addr
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to coqld");
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        Client { reader: BufReader::new(stream.try_clone().unwrap()), writer: stream }
    }

    fn send(&mut self, line: &str) -> String {
        writeln!(self.writer, "{line}").unwrap();
        self.writer.flush().unwrap();
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read reply");
        reply.trim_end().to_string()
    }

    fn ucheck(&mut self, u1: &str, u2: &str) -> bool {
        let reply = self.send(&format!("UCHECK app {u1} ;; {u2}"));
        if let Some(rest) = reply.strip_prefix("OK holds=") {
            return rest.starts_with("true");
        }
        panic!("UCHECK {u1} ;; {u2} → {reply}");
    }
}

#[test]
fn three_way_union_verdicts_agree_across_configurations() {
    let schema = schema();
    let target: usize =
        std::env::var("UCQ_DIFFERENTIAL_PAIRS").ok().and_then(|v| v.parse().ok()).unwrap_or(200);
    let strategies = [
        ("indexed", CandidateStrategy::Indexed),
        ("linear-scan", CandidateStrategy::LinearScan),
        ("bitset", CandidateStrategy::Bitset),
        ("adaptive", CandidateStrategy::Adaptive),
    ];
    let mut clients: Vec<(usize, Client)> =
        [1usize, 2].iter().map(|&t| (t, Client::connect(start_server(t)))).collect();
    for (_, client) in &mut clients {
        assert!(client.send("SCHEMA app R(A, B); S(C)").starts_with("OK"));
    }

    let (mut decided, mut positives, mut negatives) = (0usize, 0usize, 0usize);
    let mut seed = 0u64;
    while decided < target {
        seed += 1;
        assert!(seed < 64 * target as u64, "generator starved: {decided}/{target} pairs");
        let (u1, u2) = union_pair(seed);
        let d1 = co_lang::parse_union_coql(&u1).expect("left union parses");
        let d2 = co_lang::parse_union_coql(&u2).expect("right union parses");
        let (Ok(l), Ok(r)) =
            (co_core::prepare_union(&d1, &schema), co_core::prepare_union(&d2, &schema))
        else {
            continue;
        };

        // Every kernel configuration must agree with itself, with the
        // naive expansion under the same configuration, and with the
        // first configuration's verdict.
        let mut verdict: Option<bool> = None;
        for (sname, strategy) in strategies {
            set_default_strategy(strategy);
            for threads in [1usize, 2] {
                par::set_kernel_threads(threads);
                let context = format!("pair {seed} [{sname}, {threads} thread(s)]");
                let engine_verdict = match co_core::union_contained_prepared(&l, &r) {
                    Ok(analysis) => analysis.holds,
                    Err(e) => panic!("{context}: {u1} ;; {u2}: {e}"),
                };
                let naive = naive_union_verdict(&d1, &d2, &schema);
                assert_eq!(
                    engine_verdict, naive,
                    "{context}: engine vs naive expansion disagree on {u1} ;; {u2}"
                );
                match verdict {
                    None => verdict = Some(engine_verdict),
                    Some(expected) => assert_eq!(
                        engine_verdict, expected,
                        "{context}: verdict differs from the first configuration on {u1} ;; {u2}"
                    ),
                }
            }
        }
        let expected = verdict.expect("at least one configuration decided");

        // The live servers (1 and 2 kernel threads) must answer the same
        // verdict through the wire path — first compute, then memo.
        for (threads, client) in &mut clients {
            let served = client.ucheck(&u1, &u2);
            assert_eq!(
                served, expected,
                "server[{threads} kernel thread(s)] disagrees on {u1} ;; {u2}"
            );
        }

        decided += 1;
        if expected {
            positives += 1;
        } else {
            negatives += 1;
        }
    }
    set_default_strategy(CandidateStrategy::Adaptive);
    par::set_kernel_threads(0);

    // A workload that only ever produced one polarity would vacuously
    // pass — demand real evidence of both.
    assert!(
        positives > 0 && negatives > 0,
        "degenerate workload: {decided} pairs, {positives} positive / {negatives} negative"
    );
}
