//! Depth-3 differential validation: the recursive d-simulation procedure
//! versus the reference semantics on doubly-nested random queries — the
//! regime with three quantifier alternations, beyond what the depth-1
//! cross-checks (against flat simulation) can exercise.

use co_core::{contained_in, prepare, random_database};
use co_cq::Schema;
use co_lang::Expr;
use co_object::hoare_leq;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn schema() -> Schema {
    Schema::with_relations(&[("R", &["A", "B"]), ("S", &["C"])])
}

/// A random depth-3 query:
/// `select [a: x.A, g: (select [b: y.B, h: (select z… )] from y …)] from x in R`.
fn random_deep_query(seed: u64) -> Expr {
    let mut rng = StdRng::seed_from_u64(seed);
    let x = co_cq::Var::new("x");
    let y = co_cq::Var::new("y");
    let z = co_cq::Var::new("z");

    // Innermost level: over S or R, correlated with y and/or x.
    let (rel3, col3): (&str, &str) = if rng.gen_bool(0.5) { ("S", "C") } else { ("R", "B") };
    let mut conds3 = Vec::new();
    if rng.gen_bool(0.7) {
        let outer =
            if rng.gen_bool(0.5) { Expr::var("y").proj("B") } else { Expr::var("x").proj("A") };
        conds3.push((Expr::var("z").proj(col3), outer));
    }
    if rng.gen_bool(0.2) {
        conds3.push((Expr::var("z").proj(col3), Expr::int(rng.gen_range(0..2))));
    }
    let level3 = Expr::Select {
        head: Box::new(Expr::var("z").proj(col3)),
        bindings: vec![(z, Expr::rel(rel3))],
        conds: conds3,
    };

    // Middle level: over R, correlated with x.
    let mut conds2 = Vec::new();
    if rng.gen_bool(0.8) {
        conds2.push((Expr::var("y").proj("A"), Expr::var("x").proj("A")));
    }
    let level2 = Expr::Select {
        head: Box::new(Expr::record(vec![("b", Expr::var("y").proj("B")), ("h", level3)])),
        bindings: vec![(y, Expr::rel("R"))],
        conds: conds2,
    };

    let mut conds1 = Vec::new();
    if rng.gen_bool(0.3) {
        conds1.push((Expr::var("x").proj("B"), Expr::int(rng.gen_range(0..2))));
    }
    Expr::Select {
        head: Box::new(Expr::record(vec![("a", Expr::var("x").proj("A")), ("g", level2)])),
        bindings: vec![(x, Expr::rel("R"))],
        conds: conds1,
    }
}

#[test]
fn deep_flattening_preserves_semantics() {
    let schema = schema();
    for seed in 0..120u64 {
        let q = random_deep_query(seed);
        let p = prepare(&q, &schema).unwrap_or_else(|e| panic!("{q}: {e}"));
        assert_eq!(p.ty.set_depth(), 3, "{q}");
        for db_seed in 0..4u64 {
            let db = random_database(&schema, seed * 37 + db_seed);
            let direct = co_core::evaluate_flat(&q, &schema, &db).unwrap();
            let via_tree = p.tree.evaluate(&db);
            assert_eq!(direct, via_tree, "{q}\nDB:\n{db}");
        }
    }
}

#[test]
fn deep_containment_is_sound() {
    let schema = schema();
    let mut decided_yes = 0;
    for seed in 0..200u64 {
        let q1 = random_deep_query(seed);
        let q2 = random_deep_query(seed + 50_000);
        let Ok(analysis) = contained_in(&q1, &q2, &schema) else {
            continue;
        };
        if !analysis.holds {
            continue;
        }
        decided_yes += 1;
        let p1 = prepare(&q1, &schema).unwrap();
        let p2 = prepare(&q2, &schema).unwrap();
        for db_seed in 0..8u64 {
            let db = random_database(&schema, seed * 113 + db_seed);
            let v1 = p1.tree.evaluate(&db);
            let v2 = p2.tree.evaluate(&db);
            assert!(
                hoare_leq(&v1, &v2),
                "UNSOUND at depth 3: {q1} ⊑ {q2}\n v1={v1}\n v2={v2}\nDB:\n{db}"
            );
        }
    }
    assert!(decided_yes >= 3, "workload produced only {decided_yes} positive cases");
}

#[test]
fn deep_negatives_are_refutable() {
    let schema = schema();
    let mut unrefuted = Vec::new();
    let mut negatives = 0;
    for seed in 0..40u64 {
        let q1 = random_deep_query(seed);
        let q2 = random_deep_query(seed + 70_000);
        let Ok(analysis) = contained_in(&q1, &q2, &schema) else {
            continue;
        };
        if analysis.holds {
            continue;
        }
        negatives += 1;
        if co_core::search_counterexample(&q1, &q2, &schema, 0..400).unwrap().is_none() {
            unrefuted.push(format!("{q1}  ⋢?  {q2}"));
        }
    }
    assert!(negatives >= 5, "workload produced only {negatives} negatives");
    assert!(unrefuted.is_empty(), "unrefuted depth-3 negatives:\n{}", unrefuted.join("\n"));
}

#[test]
fn deep_reflexivity_and_transitivity() {
    let schema = schema();
    let mut checked = 0;
    for seed in 0..25u64 {
        let q1 = random_deep_query(seed);
        assert!(contained_in(&q1, &q1, &schema).unwrap().holds, "reflexivity: {q1}");
        let q2 = random_deep_query(seed + 90_000);
        let q3 = random_deep_query(seed + 95_000);
        let Ok(a12) = contained_in(&q1, &q2, &schema) else { continue };
        let Ok(a23) = contained_in(&q2, &q3, &schema) else { continue };
        if a12.holds && a23.holds {
            checked += 1;
            assert!(
                contained_in(&q1, &q3, &schema).unwrap().holds,
                "transitivity: {q1} / {q2} / {q3}"
            );
        }
    }
    let _ = checked;
}

#[test]
fn deep_strong_containment_implies_hoare() {
    // For nest-style deep queries (empty-set free), strong tree containment
    // must imply ordinary containment.
    let schema = schema();
    for seed in 0..40u64 {
        let q1 = random_deep_query(seed);
        let q2 = random_deep_query(seed + 30_000);
        let (Ok(p1), Ok(p2)) = (prepare(&q1, &schema), prepare(&q2, &schema)) else {
            continue;
        };
        if p1.ty.lub(&p2.ty).is_none() {
            continue;
        }
        if co_sim::tree_strong_contained_in_no_empty_sets(&p1.tree, &p2.tree) {
            // Strong containment talks about equality of nested sets, which
            // implies Hoare domination elementwise.
            assert!(
                co_sim::tree::tree_contained_in_no_empty_sets(&p1.tree, &p2.tree),
                "{q1} strong-⊑ {q2} but not Hoare-⊑"
            );
        }
    }
}
